"""Property tests for staleness-aware admission in the writer pool.

Floods a single-worker pool past capacity with jobs carrying arbitrary cut
ticks and checks the admission invariants that bound worst-case checkpoint
age: the oldest queued cut is always the next one serviced, the pool never
records a service-order inversion, and the checkpoint-age gauge matches the
oldest undurable cut while flooded and returns to zero once drained.
"""

import tempfile
import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import StateGeometry
from repro.engine.writer import CheckpointJob
from repro.engine.writer_pool import CheckpointWriterPool
from repro.storage.checkpoint_log import CheckpointLogStore

GEOMETRY = StateGeometry(rows=8, columns=4)

cut_tick_sets = st.lists(
    st.integers(min_value=0, max_value=100_000),
    min_size=1,
    max_size=8,
    unique=True,
)


class _Blocker:
    """Payload source that parks the flushing worker until released."""

    def __init__(self) -> None:
        self.entered = threading.Event()
        self.release = threading.Event()

    def read_payloads(self, object_ids: np.ndarray) -> bytes:
        self.entered.set()
        self.release.wait(timeout=30.0)
        return b"\x00" * (object_ids.size * GEOMETRY.object_bytes)


def _full_job(source, cut_tick: int) -> CheckpointJob:
    return CheckpointJob(
        object_ids=np.arange(GEOMETRY.num_objects, dtype=np.int64),
        epoch=1,
        cut_tick=cut_tick,
        source=source,
        backup_index=None,
        is_full_dump=True,
    )


@given(cuts=cut_tick_sets)
@settings(max_examples=30, deadline=None)
def test_flooded_pool_drains_oldest_cut_first(cuts):
    service_order = []

    class RecordingSource:
        def __init__(self, index: int) -> None:
            self._index = index

        def read_payloads(self, object_ids: np.ndarray) -> bytes:
            service_order.append(self._index)
            return b"\x00" * (object_ids.size * GEOMETRY.object_bytes)

    with tempfile.TemporaryDirectory() as root:
        pool = CheckpointWriterPool(1, batch_jobs=1)
        stores = []
        try:
            blocker_store = CheckpointLogStore(f"{root}/blocker", GEOMETRY)
            stores.append(blocker_store)
            blocker_handle = pool.register(blocker_store, name="blocker")
            blocker = _Blocker()
            blocker_handle.submit(_full_job(blocker, cut_tick=0))
            assert blocker.entered.wait(timeout=10.0)

            # Worker parked: every job below queues up behind it, so the
            # pool is strictly past capacity for the whole submission wave.
            handles = []
            for index, cut in enumerate(cuts):
                store = CheckpointLogStore(f"{root}/{index}", GEOMETRY)
                stores.append(store)
                handle = pool.register(store, name=f"shard-{index}")
                handle.submit(_full_job(RecordingSource(index), cut))
                handles.append(handle)

            # While flooded, the age gauge tracks the newest undurable cut
            # (nothing has committed, so age is cut + 1 ticks of replay).
            assert pool.stats().max_checkpoint_age_ticks == max(cuts) + 1

            blocker.release.set()
            assert blocker_handle.wait_idle(timeout=10.0)
            for handle in handles:
                assert handle.wait_idle(timeout=10.0)

            # The oldest queued cut was always the next job serviced.
            expected = sorted(range(len(cuts)), key=lambda i: cuts[i])
            assert service_order == expected

            stats = pool.stats()
            # No service-order inversion ever happened...
            assert stats.max_picked_staleness_ticks == 0
            # ...and draining the backlog drove every age back to zero.
            assert stats.max_checkpoint_age_ticks == 0
            for handle in handles:
                assert handle.checkpoint_age == 0
        finally:
            pool.close()
            for store in stores:
                store.close()


@given(cuts=cut_tick_sets, lag=st.integers(min_value=1, max_value=50))
@settings(max_examples=30, deadline=None)
def test_straggler_bounded_by_one_service_under_staleness(cuts, lag):
    """A shard whose cut lags the rest by ``lag`` ticks is serviced before
    every fresher job, so its wait is bounded by the one in-flight job --
    independent of how deep the backlog is."""
    straggler_cut = min(cuts) + lag  # strictly older than no queued job...
    cuts = [cut + lag + 1 for cut in cuts]  # ...after shifting the rest up

    with tempfile.TemporaryDirectory() as root:
        pool = CheckpointWriterPool(1, batch_jobs=1)
        stores = []
        try:
            blocker_store = CheckpointLogStore(f"{root}/blocker", GEOMETRY)
            stores.append(blocker_store)
            blocker_handle = pool.register(blocker_store, name="blocker")
            blocker = _Blocker()
            blocker_handle.submit(_full_job(blocker, cut_tick=0))
            assert blocker.entered.wait(timeout=10.0)

            serviced = []

            class Probe:
                def __init__(self, label):
                    self._label = label

                def read_payloads(self, object_ids):
                    serviced.append(self._label)
                    return b"\x00" * (
                        object_ids.size * GEOMETRY.object_bytes
                    )

            handles = []
            for index, cut in enumerate(cuts):
                store = CheckpointLogStore(f"{root}/{index}", GEOMETRY)
                stores.append(store)
                handle = pool.register(store, name=f"fresh-{index}")
                handle.submit(_full_job(Probe("fresh"), cut))
                handles.append(handle)
            # Adversarial arrival: the stalest shard submits last.
            straggler_store = CheckpointLogStore(
                f"{root}/straggler", GEOMETRY
            )
            stores.append(straggler_store)
            straggler = pool.register(straggler_store, name="straggler")
            straggler.submit(_full_job(Probe("straggler"), straggler_cut))
            handles.append(straggler)

            blocker.release.set()
            for handle in handles:
                assert handle.wait_idle(timeout=10.0)

            # Despite arriving last behind an arbitrary backlog, the
            # straggler was the first job out of the queue.
            assert serviced[0] == "straggler"
            assert pool.stats().max_picked_staleness_ticks == 0
        finally:
            pool.close()
            for store in stores:
                store.close()
