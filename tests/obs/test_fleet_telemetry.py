"""Thread-backend fleet telemetry and the gateway STATS frame, end to end."""

import asyncio

import pytest

from repro.config import StateGeometry
from repro.engine.fleet import ShardFleet
from repro.frontend import FrontDoor, GatewayClient, GatewayServer
from repro.obs.dump import fetch_stats, render
from repro.obs.telemetry import FleetTelemetry

GEOMETRY = StateGeometry(rows=64, columns=8)


@pytest.fixture
def app_factory(random_walk_app):
    app_class = type(random_walk_app)
    return lambda index: app_class(GEOMETRY, updates_per_tick=16)


class TestThreadFleetTelemetry:
    def test_counters_match_the_work_done(self, app_factory, tmp_path):
        fleet = ShardFleet(app_factory, tmp_path, 2, seed=3,
                           min_checkpoint_interval_ticks=2)
        try:
            for index in range(2):
                fleet.submit_commands(index, [b"heal:1", b"heal:2"])
            fleet.run_ticks(6)
            fleet.quiesce()
            snapshot = fleet.telemetry()
            assert snapshot.backend == "thread"
            assert snapshot.num_shards == 2
            for shard in snapshot.shards:
                assert shard.alive
                assert shard.ticks_run == 6
                assert shard.commands_drained == 2
                assert shard.bytes_written > 0
                assert shard.ring_high_water_bytes > 0
            assert snapshot.tick_p99_us >= snapshot.tick_p50_us > 0
            assert snapshot.max_checkpoint_age_ticks >= 0
            # The snapshot survives the wire format unchanged.
            assert FleetTelemetry.from_json(snapshot.to_json()) == snapshot
        finally:
            fleet.close()

    def test_metrics_disabled_fleet_still_snapshots(self, app_factory,
                                                    tmp_path):
        fleet = ShardFleet(app_factory, tmp_path, 1, seed=3, metrics=False)
        try:
            fleet.run_ticks(3)
            snapshot = fleet.telemetry()
            assert snapshot.shards[0].ticks_run == 3
            assert snapshot.tick_p50_us == 0.0  # nothing published
        finally:
            fleet.close()

    def test_render_is_human_readable(self, app_factory, tmp_path):
        fleet = ShardFleet(app_factory, tmp_path, 1, seed=3)
        try:
            fleet.run_ticks(2)
            text = render(fleet.telemetry().as_dict())
            assert "thread" in text
            assert "shard  0 up" in text
        finally:
            fleet.close()


class TestStatsFrame:
    def test_stats_served_pre_hello_and_mid_session(self, app_factory,
                                                    tmp_path):
        async def scenario():
            fd = FrontDoor(ShardFleet(app_factory, tmp_path, 2, seed=3))
            async with GatewayServer(fd, tick_interval=0.002) as gateway:
                host, port = gateway.address

                # Pre-HELLO: a bare monitoring probe, no session needed.
                cold = await asyncio.to_thread(fetch_stats, host, port)
                assert cold["backend"] == "thread"
                assert cold["gateway"]["sessions"] == 0

                client = await GatewayClient.connect(host, port, "alice")
                for _ in range(4):
                    await client.send_command(b"a")
                await client.settle(timeout=10.0)

                warm = await asyncio.to_thread(fetch_stats, host, port)
                assert warm["gateway"]["sessions"] == 1
                assert warm["gateway"]["commands_applied"] == 4
                assert warm["gateway"]["ticks_driven"] > 0
                assert warm["gateway"]["queue_capacity_bytes"] > 0
                assert len(warm["shards"]) == 2
                # The frame is the plain FleetTelemetry wire format.
                assert FleetTelemetry.from_dict(warm).num_shards == 2
                await client.close()
            fd.fleet.close()

        asyncio.run(scenario())
