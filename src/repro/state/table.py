"""The in-memory game-state table.

The conceptual state of an MMO is "a table containing game objects" (paper,
Section 2.1): ``rows`` game objects with ``columns`` attributes each.  For
checkpointing, row-major runs of cells are grouped into fixed-size *atomic
objects* -- the unit of dirty tracking and disk I/O (one 512-byte disk sector
in the paper's setup).

:class:`GameStateTable` backs the table with a single contiguous numpy buffer
padded to a whole number of atomic objects, so any object can be read or
written as a raw byte slice without copying the rest of the state.
"""

from __future__ import annotations

import numpy as np

from repro.config import StateGeometry
from repro.errors import GeometryError


class GameStateTable:
    """A rows x columns cell table sliceable into atomic objects.

    Parameters
    ----------
    geometry:
        Shape of the table and the atomic-object grouping.
    dtype:
        Cell dtype; its item size must equal ``geometry.cell_bytes``.
        Integer-cell workloads use ``uint32``; the Knights and Archers game
        uses ``float32`` (positions, health, ...).
    buffer:
        Optional 1-D contiguous array of ``num_objects * cells_per_object``
        cells to back the table with instead of a freshly allocated one.
        This is how :class:`~repro.state.shared.SharedGameStateTable` places
        the live state inside a shared-memory segment so another process can
        read it without copies; the caller owns the buffer's lifetime.
    """

    def __init__(self, geometry: StateGeometry, dtype=np.uint32,
                 buffer: np.ndarray = None) -> None:
        dtype = np.dtype(dtype)
        if dtype.itemsize != geometry.cell_bytes:
            raise GeometryError(
                f"dtype {dtype} has item size {dtype.itemsize}, but the "
                f"geometry specifies {geometry.cell_bytes}-byte cells"
            )
        self._geometry = geometry
        self._dtype = dtype
        padded_cells = geometry.num_objects * geometry.cells_per_object
        if buffer is None:
            buffer = np.zeros(padded_cells, dtype=dtype)
        else:
            if buffer.dtype != dtype or buffer.ndim != 1:
                raise GeometryError(
                    f"backing buffer must be a 1-D {dtype} array, got "
                    f"{buffer.ndim}-D {buffer.dtype}"
                )
            if buffer.size != padded_cells:
                raise GeometryError(
                    f"backing buffer has {buffer.size} cells, geometry "
                    f"needs {padded_cells}"
                )
            if not buffer.flags.c_contiguous:
                raise GeometryError("backing buffer must be contiguous")
        self._buffer = buffer
        self._cells = self._buffer[: geometry.num_cells]
        self._table = self._cells.reshape(geometry.rows, geometry.columns)

    @property
    def geometry(self) -> StateGeometry:
        """The table's geometry (shape and atomic-object grouping)."""
        return self._geometry

    @property
    def dtype(self) -> np.dtype:
        """The cell dtype."""
        return self._dtype

    @property
    def cells(self) -> np.ndarray:
        """2-D (rows x columns) view of the live state.  Mutating it mutates
        the table; use :meth:`apply_updates` when dirty tracking matters."""
        return self._table

    @property
    def flat(self) -> np.ndarray:
        """1-D view of the live cells in row-major order (unpadded)."""
        return self._cells

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def apply_updates(self, rows, columns, values, validate: bool = True) -> np.ndarray:
        """Write ``values`` into cells ``(rows, columns)`` (vectorized).

        Returns the atomic-object id touched by each update, in update order
        and *with duplicates*, so the caller can feed them to a checkpointing
        algorithm's update handler.  ``validate=False`` skips the bounds
        check for trusted callers (recovery replays millions of updates that
        already passed it once on the live path).
        """
        rows = np.asarray(rows)
        columns = np.asarray(columns)
        if validate and rows.size:
            # One fused pass over both index arrays; the failure branch
            # re-derives which bound broke, off the hot path.
            bad = (
                (rows < 0)
                | (rows >= self._geometry.rows)
                | (columns < 0)
                | (columns >= self._geometry.columns)
            )
            if bad.any():
                if ((rows < 0) | (rows >= self._geometry.rows)).any():
                    raise GeometryError("row index out of range")
                raise GeometryError("column index out of range")
        self._table[rows, columns] = values
        cell_index = self._geometry.cell_index(rows, columns)
        return self._geometry.object_of_cell(cell_index)

    def apply_cell_updates(self, cell_indices, values, validate: bool = True) -> np.ndarray:
        """Write ``values`` into flat cell indices; returns touched object ids."""
        cell_indices = np.asarray(cell_indices)
        if validate and cell_indices.size:
            bad = (cell_indices < 0) | (cell_indices >= self._geometry.num_cells)
            if bad.any():
                raise GeometryError("cell index out of range")
        self._cells[cell_indices] = values
        return self._geometry.object_of_cell(cell_indices)

    # ------------------------------------------------------------------
    # Atomic-object access (for checkpointing and recovery)
    # ------------------------------------------------------------------

    def _object_matrix(self) -> np.ndarray:
        """View of the padded buffer as (num_objects, cells_per_object)."""
        return self._buffer.reshape(
            self._geometry.num_objects, self._geometry.cells_per_object
        )

    def read_objects(self, object_ids) -> np.ndarray:
        """Copy of the payload cells for ``object_ids``.

        Returns an array of shape ``(len(object_ids), cells_per_object)``.
        """
        return self._object_matrix()[object_ids].copy()

    def gather_objects_into(self, object_ids, out: np.ndarray) -> None:
        """Copy the payload cells for ``object_ids`` into ``out``.

        ``out`` must be a ``(len(object_ids), cells_per_object)`` array of
        the table dtype.  One fancy-index gather straight into the caller's
        buffer -- the single-copy variant of :meth:`read_objects` used when
        the destination (e.g. a shared-memory staging area) already exists.
        """
        np.take(self._object_matrix(), object_ids, axis=0, out=out)

    def write_objects(self, object_ids, payloads) -> None:
        """Overwrite the payloads of ``object_ids`` (used during recovery)."""
        payloads = np.asarray(payloads, dtype=self._dtype)
        self._object_matrix()[object_ids] = payloads.reshape(
            -1, self._geometry.cells_per_object
        )

    def object_bytes(self, object_ids):
        """Raw bytes of the payloads for ``object_ids``, concatenated.

        Returns a contiguous bytes-format ``memoryview`` over a fresh
        buffer: the fancy-index gather is the single copy, with no second
        ``.tobytes()`` flattening pass.  ``bytes(result)`` converts when an
        owning ``bytes`` object is genuinely needed.
        """
        rows = self._object_matrix()[object_ids]
        return rows.reshape(-1).view(np.uint8).data

    def load_object_bytes(self, object_ids, raw) -> None:
        """Inverse of :meth:`object_bytes`: install raw payload bytes.

        ``raw`` is any contiguous bytes-like buffer (``bytes``,
        ``bytearray``, ``memoryview``); it is read in place, never staged.
        """
        payloads = np.frombuffer(raw, dtype=self._dtype)
        self.write_objects(object_ids, payloads)

    def load_object_range(self, start: int, count: int, raw) -> None:
        """Install payload bytes for the id-contiguous run ``[start, start+count)``.

        The zero-copy fast path for streamed restore regions: one contiguous
        slice assignment from a ``np.frombuffer`` view of ``raw``, with no
        fancy-index scatter and no staging copy.
        """
        if start < 0 or count < 0 or start + count > self._geometry.num_objects:
            raise GeometryError(
                f"object range [{start}, {start + count}) outside "
                f"[0, {self._geometry.num_objects})"
            )
        data = np.frombuffer(raw, dtype=self._dtype)
        cells_per_object = self._geometry.cells_per_object
        if data.size != count * cells_per_object:
            raise GeometryError(
                f"payload has {data.size} cells, range expects "
                f"{count * cells_per_object}"
            )
        base = start * cells_per_object
        self._buffer[base: base + data.size] = data

    def full_image(self) -> bytes:
        """Raw bytes of the entire padded state -- one full checkpoint image."""
        return self._buffer.tobytes()

    def load_full_image(self, raw) -> None:
        """Install a full checkpoint image produced by :meth:`full_image`.

        Accepts any contiguous bytes-like buffer (``bytes``, ``bytearray``,
        ``memoryview``) without a staging copy.
        """
        data = np.frombuffer(raw, dtype=self._dtype)
        if data.size != self._buffer.size:
            raise GeometryError(
                f"image has {data.size} cells, table expects {self._buffer.size}"
            )
        self._buffer[:] = data

    # ------------------------------------------------------------------
    # Whole-table operations
    # ------------------------------------------------------------------

    def copy(self) -> "GameStateTable":
        """Deep copy of the table (an eager in-memory snapshot)."""
        clone = GameStateTable(self._geometry, dtype=self._dtype)
        clone._buffer[:] = self._buffer
        return clone

    def equals(self, other: "GameStateTable") -> bool:
        """Exact cell-for-cell equality with another table."""
        return (
            self._geometry == other._geometry
            and self._dtype == other._dtype
            and np.array_equal(self._buffer, other._buffer)
        )

    def fill_random(self, rng: np.random.Generator) -> None:
        """Fill the table with random cell values (test/benchmark helper)."""
        if np.issubdtype(self._dtype, np.integer):
            info = np.iinfo(self._dtype)
            values = rng.integers(
                info.min, info.max, size=self._cells.size, dtype=self._dtype
            )
        else:
            values = rng.random(self._cells.size).astype(self._dtype)
        self._cells[:] = values
