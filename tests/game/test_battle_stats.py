"""Tests for the battle scoreboard."""

import numpy as np
import pytest

from repro.game.columns import Column
from repro.game.knights_archers import KnightsArchersGame
from repro.game.scenario import BattleScenario
from repro.game.stats import BattleReport
from repro.state.table import GameStateTable


@pytest.fixture
def world():
    game = KnightsArchersGame(BattleScenario(num_units=512))
    table = GameStateTable(game.geometry, dtype=np.float32)
    game.initialize(table, np.random.default_rng(0))
    return table


class TestBattleReport:
    def test_unit_accounting(self, world):
        report = BattleReport.from_table(world)
        team0, team1 = report.teams
        assert team0.units + team1.units == 512
        for team in report.teams:
            assert team.knights + team.archers + team.healers == team.units

    def test_fresh_world_scoreless(self, world):
        report = BattleReport.from_table(world)
        assert all(team.total_kills == 0 for team in report.teams)
        assert all(team.mean_health == pytest.approx(100.0)
                   for team in report.teams)

    def test_leader_follows_kills(self, world):
        world.cells[1, Column.KILLS] = 5.0  # row 1 belongs to team 1
        report = BattleReport.from_table(world)
        assert report.leader == 1

    def test_leader_tie_goes_to_team0(self, world):
        assert BattleReport.from_table(world).leader == 0

    def test_describe_mentions_both_teams(self, world):
        text = BattleReport.from_table(world).describe()
        assert "team 0" in text
        assert "team 1" in text
        assert "leading team" in text
