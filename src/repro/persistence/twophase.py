"""Two-phase commit across shards: atomic cross-shard item transfers.

The paper's future work: "we plan to extend our analysis to multi-server
MMOs.  This will require synchronizing and recovering shared state between
servers." (Section 8.)  Moving an item from one shard's economy to another's
is exactly such shared state: it must leave the source and appear at the
target atomically, surviving crashes of either shard *or* the coordinator.

:class:`CrossShardCoordinator` runs classic presumed-abort 2PC over the
participants' write-ahead logs:

1. both participants validate and durably **prepare** (pinning the touched
   entities against local transactions);
2. the coordinator durably logs its **decision**;
3. participants apply/discard on **resolve** (idempotent, re-sent after any
   crash via :meth:`resolve_in_doubt`).

A transfer is therefore never half-done: the item exists on exactly one
shard at every recoverable point.
"""

from __future__ import annotations

import os
import pickle
from typing import Dict, Iterable, Union

from repro.errors import StorageError
from repro.persistence.server import (
    OP_CREATE_ITEM,
    OP_DELETE_ITEM,
    PersistenceServer,
)
from repro.persistence.store import TransactionError
from repro.storage.layout import (
    RECORD_HEADER_BYTES,
    pack_record,
    unpack_record_header,
    verify_record,
)

#: Coordinator decision-log record type.
RECORD_COORDINATOR_DECISION = 20


class CrossShardCoordinator:
    """Presumed-abort 2PC coordinator with a durable decision log."""

    FILE_NAME = "coordinator.log"

    def __init__(self, directory: Union[str, os.PathLike],
                 sync: bool = False) -> None:
        self._directory = os.fspath(directory)
        self._sync = sync
        os.makedirs(self._directory, exist_ok=True)
        self._path = os.path.join(self._directory, self.FILE_NAME)
        self._handle = open(self._path, "a+b")
        self._decisions: Dict[str, bool] = {}
        self._sequence = 0
        for global_id, commit in self._scan():
            self._decisions[global_id] = commit
            prefix, _, number = global_id.rpartition("-")
            if prefix == "xfer" and number.isdigit():
                self._sequence = max(self._sequence, int(number))
        self._crashed = False

    def close(self) -> None:
        """Close the decision log."""
        self._handle.close()

    def __enter__(self) -> "CrossShardCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def decisions(self) -> Dict[str, bool]:
        """All durably decided transactions (gid -> committed?)."""
        return dict(self._decisions)

    # ------------------------------------------------------------------
    # Decision log
    # ------------------------------------------------------------------

    def _scan(self):
        handle = self._handle
        handle.seek(0)
        while True:
            header = handle.read(RECORD_HEADER_BYTES)
            if len(header) < RECORD_HEADER_BYTES:
                return
            try:
                record_type, a, _b, length, checksum = unpack_record_header(
                    header
                )
            except Exception:
                return
            payload = handle.read(length)
            if len(payload) < length or not verify_record(header, payload,
                                                          checksum):
                return
            if record_type == RECORD_COORDINATOR_DECISION:
                yield pickle.loads(payload), bool(a)

    def _log_decision(self, global_id: str, commit: bool) -> None:
        self._handle.seek(0, os.SEEK_END)
        self._handle.write(
            pack_record(
                RECORD_COORDINATOR_DECISION, int(commit), 0,
                pickle.dumps(global_id, protocol=4),
            )
        )
        self._handle.flush()
        if self._sync:
            os.fsync(self._handle.fileno())
        self._decisions[global_id] = commit

    def _new_global_id(self) -> str:
        self._sequence += 1
        return f"xfer-{self._sequence}"

    def _check_alive(self) -> None:
        if self._crashed:
            raise StorageError("coordinator has crashed; recover it instead")

    # ------------------------------------------------------------------
    # The transfer protocol
    # ------------------------------------------------------------------

    def transfer_item(
        self,
        source: PersistenceServer,
        target: PersistenceServer,
        item_id: int,
        new_owner_id: int,
    ) -> str:
        """Atomically move ``item_id`` from ``source`` to ``target``.

        Returns the global transaction id on commit; raises
        :class:`TransactionError` (after a durable abort of any prepared
        half) when either side votes no.
        """
        self._check_alive()
        item = source.store.items.get(item_id)
        kind = item.kind if item is not None else "?"
        target_item_id = target.store.next_item_id
        global_id = self._new_global_id()

        source_operations = [(OP_DELETE_ITEM, item_id)]
        target_operations = [
            (OP_CREATE_ITEM, target_item_id, kind, new_owner_id)
        ]

        prepared = []
        source_vote = source.prepare_remote(global_id, source_operations)
        if source_vote:
            prepared.append(source)
        target_vote = target.prepare_remote(global_id, target_operations)
        if target_vote:
            prepared.append(target)

        commit = source_vote and target_vote
        self._log_decision(global_id, commit)
        for participant in prepared:
            participant.resolve_remote(global_id, commit)
        if not commit:
            raise TransactionError(
                f"cross-shard transfer {global_id} aborted "
                f"(source vote: {source_vote}, target vote: {target_vote})"
            )
        return global_id

    # ------------------------------------------------------------------
    # Failure and recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop the coordinator (decision log stays on disk)."""
        self._crashed = True
        self._handle.close()

    @classmethod
    def recover(cls, directory: Union[str, os.PathLike],
                sync: bool = False) -> "CrossShardCoordinator":
        """Reopen after a crash; follow up with :meth:`resolve_in_doubt`."""
        return cls(directory, sync=sync)

    def resolve_in_doubt(
        self, participants: Iterable[PersistenceServer]
    ) -> int:
        """Resolve every participant's in-doubt transaction.

        Prepared transactions with a logged commit decision are committed;
        everything else is **presumed abort** (the decision was never made
        durable, so no participant can have committed).  Returns the number
        of transactions resolved.
        """
        self._check_alive()
        resolved = 0
        for participant in participants:
            for global_id in list(participant.in_doubt_transactions()):
                commit = self._decisions.get(global_id, False)
                if global_id not in self._decisions:
                    # Make the presumed abort durable for future recoveries.
                    self._log_decision(global_id, False)
                if participant.resolve_remote(global_id, commit):
                    resolved += 1
        return resolved
