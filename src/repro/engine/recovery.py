"""Crash recovery: restore the newest checkpoint, replay the logical log.

"In the event of a crash, the game state can be reconstructed by reading the
most recent checkpoint and replaying the logical log." (Section 1.)

:class:`RecoveryManager` implements both restore paths:

* **double backup** -- read the full data region of the backup whose header
  carries the newest ``COMPLETE`` epoch;
* **checkpoint log** -- reconstruct the image from the newest committed
  checkpoint (bounded by the last full dump).

Replay then re-runs the deterministic application for every logged tick after
the checkpoint's cut, restoring the recorded random-generator state before
each tick.  If no checkpoint ever committed, recovery falls back to
re-initializing from the server's seed and replaying the whole log.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.engine.app import TickApplication
from repro.errors import NoConsistentCheckpointError, RecoveryError
from repro.state.table import GameStateTable
from repro.storage.action_log import ActionLog
from repro.storage.checkpoint_log import CheckpointLogStore
from repro.storage.double_backup import DoubleBackupStore


@dataclass(frozen=True)
class RecoveryReport:
    """What recovery did and what it produced."""

    table: GameStateTable
    rng: np.random.Generator
    #: Next tick the recovered server would execute (= crash-time next tick).
    next_tick: int
    #: Cut tick of the restored checkpoint (-1 when none was found).
    checkpoint_tick: int
    #: Epoch of the restored checkpoint (0 when none was found).
    checkpoint_epoch: int
    ticks_replayed: int
    used_seed_fallback: bool
    #: Measured wall time reading the checkpoint image (dT_restore).
    restore_seconds: float = 0.0
    #: Measured wall time re-running the logged ticks (dT_replay).
    replay_seconds: float = 0.0

    @property
    def recovery_seconds(self) -> float:
        """Total measured recovery time: restore + replay."""
        return self.restore_seconds + self.replay_seconds


class RecoveryManager:
    """Rebuilds a crashed :class:`~repro.engine.server.DurableGameServer`."""

    def __init__(
        self,
        app: TickApplication,
        directory: Union[str, os.PathLike],
        seed: int = 0,
    ) -> None:
        self._app = app
        self._directory = os.fspath(directory)
        self._seed = seed

    def recover(self) -> RecoveryReport:
        """Restore the checkpoint and replay the log; returns the live state."""
        geometry = self._app.geometry
        table = GameStateTable(geometry, dtype=self._app.dtype)
        restore_started = time.perf_counter()
        image, epoch, cut_tick = self._restore_checkpoint(geometry)
        used_fallback = image is None

        rng = np.random.default_rng(self._seed)
        if used_fallback:
            # No durable checkpoint: rebuild tick -1 state from the seed.
            self._app.initialize(table, rng)
            cut_tick, epoch = -1, 0
        else:
            table.load_full_image(image)
        restore_seconds = time.perf_counter() - restore_started

        replay_started = time.perf_counter()
        replayed = self._replay(table, rng, start_tick=cut_tick + 1)
        replay_seconds = time.perf_counter() - replay_started
        return RecoveryReport(
            table=table,
            rng=rng,
            next_tick=cut_tick + 1 + replayed,
            checkpoint_tick=cut_tick,
            checkpoint_epoch=epoch,
            ticks_replayed=replayed,
            used_seed_fallback=used_fallback,
            restore_seconds=restore_seconds,
            replay_seconds=replay_seconds,
        )

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------

    def _restore_checkpoint(
        self, geometry
    ) -> Tuple[Optional[bytes], int, int]:
        """Read the newest consistent image from whichever store exists."""
        double_path = os.path.join(
            self._directory, DoubleBackupStore.FILE_NAMES[0]
        )
        log_path = os.path.join(self._directory, CheckpointLogStore.FILE_NAME)
        if os.path.exists(double_path):
            with DoubleBackupStore(self._directory, geometry) as store:
                try:
                    found = store.latest_consistent()
                except NoConsistentCheckpointError:
                    return None, 0, -1
                return store.read_image(found.backup_index), found.epoch, found.tick
        if os.path.exists(log_path):
            with CheckpointLogStore(self._directory, geometry) as store:
                try:
                    return store.restore_image()
                except NoConsistentCheckpointError:
                    return None, 0, -1
        return None, 0, -1

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def _replay(
        self, table: GameStateTable, rng: np.random.Generator, start_tick: int
    ) -> int:
        """Re-run every logged tick from ``start_tick``; returns the count."""
        log_path = os.path.join(self._directory, ActionLog.FILE_NAME)
        if not os.path.exists(log_path):
            return 0
        replayed = 0
        expected = start_tick
        with ActionLog(self._directory) as log:
            for record in log.records(start_tick=start_tick):
                if record.tick != expected:
                    raise RecoveryError(
                        f"logical log skips from tick {expected} to "
                        f"{record.tick}; cannot replay"
                    )
                rng.bit_generator.state = record.rng_state
                plan = self._app.plan_tick_with_commands(
                    table, rng, record.tick, record.command_payload
                )
                table.apply_updates(plan.rows, plan.columns, plan.values)
                replayed += 1
                expected += 1
        return replayed
