"""Ring-buffered structured tracing with a no-op fast path.

``get_tracer().span("flush", shard=i, cut=n)`` brackets one unit of work;
completed spans are buffered as Chrome ``trace_event``-shaped dicts (phase
``"X"``: name, timestamp, duration, pid/tid, args) in a bounded in-process
deque.  :func:`repro.obs.export.chrome_trace` turns a drained buffer into a
Perfetto-loadable JSON document.

**Disabled is free.**  Tracing defaults to off; a disabled tracer's
``span()`` returns one preallocated no-op context manager -- a single
attribute check and return, no timestamping, no allocation -- so the tick
loops can keep their span calls unconditionally.

**Cross-process.**  The timestamp source is ``time.monotonic_ns``
(CLOCK_MONOTONIC: one epoch for every process on the machine), so spans
recorded in forked shard workers align with the parent's on a common
timeline.  A worker's tracer is given a *sink* -- a
:class:`SharedRingTraceSink` over the shard's shared-memory trace ring --
and each completed span is serialized into the ring instead of the local
buffer; the parent drains the rings (``ShardFleet.trace_events()``) and
merges them with its own buffer.  The ring is SPSC and bounded: a full
ring *drops* the span (tracing never blocks a tick loop) and counts the
drop in the global registry.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.obs.metrics import global_registry

#: Spans kept in a tracer's in-process buffer before the oldest fall off.
DEFAULT_BUFFER_EVENTS = 65536

#: Environment switch: REPRO_TRACE=1 enables tracing at import time.
TRACE_ENV = "REPRO_TRACE"


class _NoopSpan:
    """The shared do-nothing context manager a disabled tracer returns."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """One live span: stamps its duration and records itself on exit."""

    __slots__ = ("_tracer", "_name", "_args", "_start_us")

    def __init__(self, tracer: "Tracer", name: str, args: Dict) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        self._start_us = time.monotonic_ns() // 1000
        return self

    def __exit__(self, *exc_info) -> bool:
        end_us = time.monotonic_ns() // 1000
        self._tracer._record({
            "name": self._name,
            "ph": "X",
            "ts": self._start_us,
            "dur": end_us - self._start_us,
            "pid": self._tracer.pid,
            "tid": threading.get_ident() & 0xFFFFFFFF,
            "args": self._args,
        })
        return False


class Tracer:
    """A per-process span recorder with an optional cross-process sink."""

    def __init__(
        self,
        enabled: bool = False,
        buffer_events: int = DEFAULT_BUFFER_EVENTS,
    ) -> None:
        self._enabled = bool(enabled)
        self._events: deque = deque(maxlen=buffer_events)
        self._sink = None
        self.pid = os.getpid()

    @property
    def enabled(self) -> bool:
        return self._enabled

    def configure(self, enabled: bool) -> None:
        self._enabled = bool(enabled)

    def set_sink(self, sink) -> None:
        """Route completed spans to ``sink.emit(event)`` instead of the
        local buffer (the forked-worker path); None restores buffering."""
        self._sink = sink

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def span(self, name: str, **args):
        """Context manager timing one unit of work.

        Disabled tracers return a preallocated no-op -- the call costs one
        attribute check, so hot loops need no ``if`` around their spans.
        """
        if not self._enabled:
            return _NOOP_SPAN
        return _Span(self, name, args)

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker (queue events, stalls)."""
        if not self._enabled:
            return
        self._record({
            "name": name,
            "ph": "i",
            "ts": time.monotonic_ns() // 1000,
            "pid": self.pid,
            "tid": threading.get_ident() & 0xFFFFFFFF,
            "s": "t",
            "args": args,
        })

    def _record(self, event: Dict) -> None:
        sink = self._sink
        if sink is not None:
            sink.emit(event)
        else:
            self._events.append(event)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def drain(self) -> List[Dict]:
        """Pop and return every buffered event (oldest first)."""
        events: List[Dict] = []
        while True:
            try:
                events.append(self._events.popleft())
            except IndexError:
                return events

    def peek(self) -> List[Dict]:
        """Buffered events without consuming them."""
        return list(self._events)


class SharedRingTraceSink:
    """Serializes span events into a shard's shared-memory trace ring.

    The worker is the ring's single producer; the fleet parent is the
    single consumer (:func:`drain_ring_events`).  Events are compact JSON
    -- the encode cost exists only while tracing is enabled.  A full ring
    drops the event and bumps the ``trace_events_dropped`` counter: a slow
    scraper can lose spans, never stall a tick.
    """

    def __init__(self, ring) -> None:
        self._ring = ring
        self._dropped = global_registry().counter("trace_events_dropped")

    def emit(self, event: Dict) -> None:
        blob = json.dumps(event, separators=(",", ":")).encode("utf-8")
        if not self._ring.try_push(blob):
            self._dropped.inc()


def drain_ring_events(ring) -> List[Dict]:
    """Parent-side drain of one worker's trace ring into event dicts."""
    events: List[Dict] = []
    for blob in ring.drain():
        try:
            events.append(json.loads(blob.decode("utf-8")))
        except (ValueError, UnicodeDecodeError):
            continue  # a torn or garbage record is dropped, not fatal
    return events


# ----------------------------------------------------------------------
# The process-global tracer
# ----------------------------------------------------------------------

_tracer: Optional[Tracer] = None
_tracer_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer every instrumented module shares.

    Forked children inherit the parent's enabled flag (the fleet relies on
    this: enable tracing *before* constructing a process-backend fleet and
    the workers trace too, through their shared rings).
    """
    global _tracer
    if _tracer is None:
        with _tracer_lock:
            if _tracer is None:
                tracer = Tracer(
                    enabled=os.environ.get(TRACE_ENV, "") not in ("", "0")
                )
                _tracer = tracer
    return _tracer


def configure_tracing(enabled: bool) -> Tracer:
    """Enable or disable the process-global tracer; returns it."""
    tracer = get_tracer()
    tracer.configure(enabled)
    return tracer


def tracing_enabled() -> bool:
    return get_tracer().enabled
