"""Tests for the Section 8 recommendation advisor."""

from dataclasses import replace

from repro.advisor import recommend
from repro.config import PAPER_CONFIG, PAPER_HARDWARE
from repro.simulation.simulator import PrecomputedObjectTrace
from repro.workloads.zipf import ZipfTrace


def paper_trace(updates_per_tick, num_ticks=120):
    return PrecomputedObjectTrace(
        ZipfTrace(
            PAPER_CONFIG.geometry,
            updates_per_tick=updates_per_tick,
            skew=0.8,
            num_ticks=num_ticks,
            seed=0,
        )
    )


class TestRecommendations:
    def test_paper_default_workload_selects_copy_on_update(self):
        """Recommendation 4: "The best method in terms of both latency and
        recovery time is Copy-on-Update" -- at the default 64k updates/tick
        the advisor reproduces the paper's verdict."""
        config = replace(PAPER_CONFIG, warmup_ticks=25)
        verdict = recommend(paper_trace(64_000), config)
        assert verdict.best.algorithm_key == "copy-on-update"
        assert verdict.best.fits_latency_limit
        assert not verdict.requires_latency_masking
        assert not verdict.low_confidence

    def test_low_rate_prefers_a_copy_on_update_variant(self):
        """Per-workload at 1,000 updates/tick the model genuinely favors
        the log variant (its recovery is *lower* there, Figure 2(c) at
        1k: ~0.9 s vs ~1.3 s); the paper's blanket recommendation trades
        that away for robustness across rates."""
        config = replace(PAPER_CONFIG, warmup_ticks=25)
        verdict = recommend(paper_trace(1_000), config)
        assert verdict.best.algorithm_key in (
            "copy-on-update", "cou-partial-redo"
        )
        assert verdict.best.fits_latency_limit

    def test_eager_methods_never_win_at_64k(self):
        config = replace(PAPER_CONFIG, warmup_ticks=25)
        verdict = recommend(paper_trace(64_000), config)
        assert verdict.best.algorithm_key not in (
            "naive-snapshot", "atomic-copy", "partial-redo"
        )
        # And the partial-redo pair loses on recovery at this rate.
        ranks = {a.algorithm_key: a.rank for a in verdict.ranking}
        assert ranks["partial-redo"] > ranks["copy-on-update"]
        assert ranks["cou-partial-redo"] > ranks["copy-on-update"]

    def test_extreme_regime_flags_latency_masking(self):
        """At 240 Hz the half-tick limit is ~2 ms: nothing fits, and the
        advisor says so (recommendation 2's regime)."""
        hardware = PAPER_HARDWARE.with_tick_frequency(240.0)
        config = replace(PAPER_CONFIG, hardware=hardware, warmup_ticks=25)
        # Long enough for >= 2 checkpoints after warmup at 240 Hz (a
        # checkpoint spans ~160 ticks there).
        verdict = recommend(paper_trace(64_000, num_ticks=400), config)
        assert verdict.requires_latency_masking
        assert not verdict.best.fits_latency_limit
        assert "masking" in verdict.best.rationale

    def test_short_trace_flags_low_confidence(self):
        hardware = PAPER_HARDWARE.with_tick_frequency(240.0)
        config = replace(PAPER_CONFIG, hardware=hardware, warmup_ticks=25)
        verdict = recommend(paper_trace(64_000, num_ticks=80), config)
        assert verdict.low_confidence
        assert "extend the trace" in verdict.describe()

    def test_ranking_is_complete_and_ordered(self):
        config = replace(PAPER_CONFIG, warmup_ticks=25)
        verdict = recommend(paper_trace(8_000), config)
        assert len(verdict.ranking) == 6
        assert [a.rank for a in verdict.ranking] == [1, 2, 3, 4, 5, 6]
        fitters = [a for a in verdict.ranking if a.fits_latency_limit]
        violators = [a for a in verdict.ranking if not a.fits_latency_limit]
        if fitters and violators:
            assert max(a.rank for a in fitters) < min(
                a.rank for a in violators
            )

    def test_describe_mentions_best(self):
        config = replace(PAPER_CONFIG, warmup_ticks=25)
        verdict = recommend(paper_trace(64_000), config)
        text = verdict.describe()
        assert "recommended: Copy-on-Update" in text
        assert "1." in text and "6." in text
