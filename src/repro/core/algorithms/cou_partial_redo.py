"""Copy-on-Update-Partial-Redo: copy-on-update with a log organization.

"This algorithm is similar to Copy-on-Update, but uses a log-based disk
organization to transform sorted writes into sequential writes.  As with
Partial-Redo, we periodically run Dribble-and-Copy-on-Update to limit the
portion of the log that we must access during recovery." (Section 3.2.)

Regular checkpoints append only the objects dirtied since the previous
checkpoint; every ``full_dump_period``-th checkpoint flushes the whole state.
Old values are saved on the first update of any object in the active write
set (all objects, during a full dump).
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import CheckpointPlan, DiskLayout, UpdateEffects, empty_ids
from repro.core.policy import CheckpointPolicy
from repro.state.dirty import EpochSet, PolarityBitmap


class CopyOnUpdatePartialRedo(CheckpointPolicy):
    """Copy-on-update of dirty objects; log disk organization with full dumps."""

    key = "cou-partial-redo"
    name = "Copy-on-Update-Partial-Redo"
    eager_copy = False
    copies_dirty_only = True
    layout = DiskLayout.LOG
    SUBROUTINES = {
        "Copy-To-Memory": "No-op",
        "Write-Copies-To-Stable-Storage": "No-op",
        "Handle-Update": "First touched, dirty",
        "Write-Objects-To-Stable-Storage": "Dirty objects, log",
    }

    def __init__(self, num_objects: int, full_dump_period: int = 9) -> None:
        super().__init__(num_objects, full_dump_period)
        self._dirty = PolarityBitmap(num_objects, fill=True)
        self._touched = EpochSet(num_objects)
        self._write_mask = np.zeros(num_objects, dtype=bool)
        self._writing_everything = False

    def _begin(self, checkpoint_index: int) -> CheckpointPlan:
        self._touched.reset()
        if self._is_full_dump(checkpoint_index):
            self._writing_everything = True
            self._dirty.clear_all()
            return CheckpointPlan(
                checkpoint_index=checkpoint_index,
                eager_copy_ids=empty_ids(),
                write_ids=None,
                layout=self.layout,
                is_full_dump=True,
            )
        self._writing_everything = False
        write_set = self._dirty.set_ids()
        self._dirty.clear(write_set)
        self._write_mask.fill(False)
        self._write_mask[write_set] = True
        return CheckpointPlan(
            checkpoint_index=checkpoint_index,
            eager_copy_ids=empty_ids(),
            write_ids=write_set,
            layout=self.layout,
        )

    def _handle(self, unique_objects: np.ndarray, update_count: int) -> UpdateEffects:
        self._dirty.set(unique_objects)
        if not self.checkpoint_active:
            return UpdateEffects(
                bit_tests=update_count,
                first_touch_ids=empty_ids(),
                copy_ids=empty_ids(),
            )
        fresh = self._touched.add_new(unique_objects)
        if self._writing_everything:
            copies = fresh
        else:
            copies = fresh[self._write_mask[fresh]]
        return UpdateEffects(
            bit_tests=update_count, first_touch_ids=fresh, copy_ids=copies
        )
