"""Tests for trace persistence."""

import numpy as np
import pytest

from repro.config import StateGeometry
from repro.errors import TraceError
from repro.workloads.base import MaterializedTrace
from repro.workloads.trace_file import load_trace, save_trace
from repro.workloads.uniform import UniformTrace


@pytest.fixture
def geometry():
    return StateGeometry(rows=50, columns=4)


class TestRoundTrip:
    def test_materialized_round_trip(self, geometry, tmp_path):
        ticks = [
            np.array([0, 0, 7]),
            np.array([], dtype=np.int64),
            np.array([199, 3]),
        ]
        trace = MaterializedTrace(geometry, ticks)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.geometry == geometry
        assert loaded.num_ticks == 3
        for original, restored in zip(trace.ticks(), loaded.ticks()):
            assert np.array_equal(original, restored)

    def test_generated_trace_round_trip(self, geometry, tmp_path):
        trace = UniformTrace(geometry, updates_per_tick=9, num_ticks=5, seed=2)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        for original, restored in zip(trace.ticks(), loaded.ticks()):
            assert np.array_equal(original, restored)

    def test_empty_trace(self, geometry, tmp_path):
        trace = MaterializedTrace(geometry, [])
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.num_ticks == 0

    def test_update_order_and_duplicates_preserved(self, geometry, tmp_path):
        ticks = [np.array([5, 3, 5, 5, 1])]
        path = tmp_path / "trace.npz"
        save_trace(MaterializedTrace(geometry, ticks), path)
        assert load_trace(path).tick(0).tolist() == [5, 3, 5, 5, 1]


class TestErrorHandling:
    def test_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, hello=np.array([1]))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_wrong_version_rejected(self, geometry, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(MaterializedTrace(geometry, [np.array([1])]), path)
        with np.load(path) as archive:
            data = dict(archive)
        data["version"] = np.int64(99)
        np.savez(path, **data)
        with pytest.raises(TraceError):
            load_trace(path)

    def test_inconsistent_offsets_rejected(self, geometry, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(MaterializedTrace(geometry, [np.array([1, 2])]), path)
        with np.load(path) as archive:
            data = dict(archive)
        data["offsets"] = np.array([0, 5], dtype=np.int64)  # claims 5 updates
        np.savez(path, **data)
        with pytest.raises(TraceError):
            load_trace(path)
