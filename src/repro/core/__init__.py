"""The paper's primary contribution: consistent checkpointing for MMOs.

This package contains the Checkpointing Algorithmic Framework of Section 4.1
and the six algorithms of Table 1/Table 2:

========================== ============== ============== =============
Algorithm                  in-memory copy objects copied disk layout
========================== ============== ============== =============
Naive-Snapshot             eager          all            double backup
Dribble-and-Copy-on-Update copy-on-update all            log
Atomic-Copy-Dirty-Objects  eager          dirty          double backup
Partial-Redo               eager          dirty          log
Copy-on-Update             copy-on-update dirty          double backup
Copy-on-Update-Partial-Redo copy-on-update dirty         log
========================== ============== ============== =============

Each algorithm is a :class:`~repro.core.policy.CheckpointPolicy`: pure
decision logic over dirty bitmaps that says *which* atomic objects each
framework subroutine acts on.  The same policy objects drive both the
analytic simulator (:mod:`repro.simulation`) and the real durable engine
(:mod:`repro.engine`), which plug different
:class:`~repro.core.framework.SubroutineExecutor` implementations into the
shared :class:`~repro.core.framework.CheckpointFramework`.
"""

from repro.core.framework import CheckpointFramework, SubroutineExecutor, TickBoundary
from repro.core.plan import CheckpointPlan, DiskLayout, UpdateEffects
from repro.core.policy import CheckpointPolicy
from repro.core.registry import (
    ALGORITHM_KEYS,
    algorithm_class,
    all_algorithm_classes,
    make_policy,
)

__all__ = [
    "ALGORITHM_KEYS",
    "CheckpointFramework",
    "CheckpointPlan",
    "CheckpointPolicy",
    "DiskLayout",
    "SubroutineExecutor",
    "TickBoundary",
    "UpdateEffects",
    "algorithm_class",
    "all_algorithm_classes",
    "make_policy",
]
