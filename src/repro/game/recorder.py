"""Instrumented game runs: turn a battle into an update trace.

"We have instrumented this game to log every update to a trace file, which we
then use as input to our checkpoint simulator." (Section 4.4.)
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.engine.app import TickApplication
from repro.state.table import GameStateTable
from repro.workloads.base import MaterializedTrace


def record_trace(
    app: TickApplication,
    num_ticks: int,
    seed: int = 0,
    table: Optional[GameStateTable] = None,
) -> MaterializedTrace:
    """Run ``app`` standalone for ``num_ticks`` and log every cell update.

    The returned trace is exactly what the checkpoint simulator consumes: one
    array of flat cell indices per tick, in update order with duplicates.
    Pass a ``table`` to keep the final game state (e.g. to also report battle
    statistics); otherwise a fresh one is created and discarded.
    """
    geometry = app.geometry
    if table is None:
        table = GameStateTable(geometry, dtype=app.dtype)
    rng = np.random.default_rng(seed)
    app.initialize(table, rng)

    tick_updates: List[np.ndarray] = []
    for tick in range(num_ticks):
        plan = app.plan_tick(table, rng, tick)
        cell_index = geometry.cell_index(
            np.asarray(plan.rows), np.asarray(plan.columns)
        )
        tick_updates.append(np.asarray(cell_index, dtype=np.int64))
        table.apply_updates(plan.rows, plan.columns, plan.values)
    return MaterializedTrace(geometry, tick_updates)
