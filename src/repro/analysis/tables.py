"""Aligned text tables for experiment output.

The experiment drivers print "the same rows/series the paper reports"; this
module renders them as monospaced tables with a title and footnotes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


class TextTable:
    """A title, a header row, data rows, and footnotes, rendered aligned."""

    def __init__(
        self,
        title: str,
        columns: Sequence[str],
        align_right: Optional[Sequence[bool]] = None,
    ) -> None:
        self._title = title
        self._columns = [str(column) for column in columns]
        if align_right is None:
            # First column (labels) left, everything else right.
            align_right = [False] + [True] * (len(self._columns) - 1)
        if len(align_right) != len(self._columns):
            raise ValueError(
                f"align_right has {len(align_right)} entries for "
                f"{len(self._columns)} columns"
            )
        self._align_right = list(align_right)
        self._rows: List[List[str]] = []
        self._notes: List[str] = []

    @property
    def title(self) -> str:
        """The table's title line."""
        return self._title

    @property
    def columns(self) -> List[str]:
        """Header labels."""
        return list(self._columns)

    @property
    def rows(self) -> List[List[str]]:
        """Stringified data rows added so far."""
        return [list(row) for row in self._rows]

    def add_row(self, cells: Iterable) -> None:
        """Append one data row (cells are stringified)."""
        row = [str(cell) for cell in cells]
        if len(row) != len(self._columns):
            raise ValueError(
                f"row has {len(row)} cells for {len(self._columns)} columns"
            )
        self._rows.append(row)

    def add_note(self, note: str) -> None:
        """Append a footnote printed under the table."""
        self._notes.append(note)

    def render(self) -> str:
        """Render the table as aligned monospaced text."""
        widths = [len(column) for column in self._columns]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def format_row(cells: Sequence[str]) -> str:
            parts = []
            for index, cell in enumerate(cells):
                if self._align_right[index]:
                    parts.append(cell.rjust(widths[index]))
                else:
                    parts.append(cell.ljust(widths[index]))
            return "  ".join(parts).rstrip()

        lines = [self._title, "=" * len(self._title)]
        lines.append(format_row(self._columns))
        lines.append(format_row(["-" * width for width in widths]))
        lines.extend(format_row(row) for row in self._rows)
        for note in self._notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
