"""A single-producer single-consumer command ring in shared memory.

The serving path hands each shard worker *one batch of client commands per
tick* instead of one pipe write per command.  The transport is a classic
SPSC byte ring living in the shard's :class:`~repro.state.shared.SharedArena`:

* a ``uint8`` data slot of ``capacity`` bytes holding length-prefixed
  records (``u32 little-endian length`` + payload), wrapping byte-wise at
  the end of the slot;
* an ``int64`` control slot with seqlock-style monotonically increasing
  **head** (consumer) and **tail** (producer) byte counters, plus lifetime
  push/drain record counters.

Each control field has exactly one writing side -- the producer (the fleet
parent / gateway tick driver) owns ``tail`` and ``pushed``, the consumer
(the shard worker's tick loop) owns ``head`` and ``drained`` -- so plain
aligned int64 stores are race-free on every platform the fork backend runs
on (the same argument the shard control row relies on).  Publication order
is the seqlock discipline: the producer copies record bytes *first* and
publishes ``tail`` last; the consumer reads ``tail`` first and the bytes
after, so it can never observe a record before its bytes are in place.

Occupancy is ``tail - head`` (both only grow; offsets are taken modulo the
capacity).  A push that does not fit raises
:class:`~repro.errors.BackpressureError` -- the ring never grows and never
overwrites unconsumed records, which is the backpressure contract the
gateway's bounded queues surface to clients.

Durability note: the ring is *volatile* hand-off memory, not a log.  A
command becomes durable only when the consuming worker's tick appends it to
the shard's logical log.  If a worker dies mid-drain, drained-but-unlogged
commands are simply lost (a real client would retry); recovery replays from
the last durable cut and can never apply a command twice.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import BackpressureError, StateError
from repro.state.shared import SharedArena, SlotSpec

#: Control-slot fields (int64 each; single writer per field).
R_TAIL = 0      # producer: total bytes ever written
R_HEAD = 1      # consumer: total bytes ever consumed
R_PUSHED = 2    # producer: total records ever pushed
R_DRAINED = 3   # consumer: total records ever drained
NUM_RING_FIELDS = 4

#: Bytes of framing per record (little-endian u32 length prefix).
RECORD_HEADER_BYTES = 4

#: Default per-shard ring capacity: comfortably thousands of short commands.
DEFAULT_RING_BYTES = 1 << 20


def ring_slots(capacity: int, prefix: str = "cmd") -> List[SlotSpec]:
    """Arena slot specs for one ring: ``<prefix>_ring`` + ``<prefix>_ctrl``."""
    if capacity < RECORD_HEADER_BYTES + 1:
        raise StateError(f"ring capacity {capacity} is too small")
    return [
        (f"{prefix}_ring", (int(capacity),), np.dtype(np.uint8)),
        (f"{prefix}_ctrl", (NUM_RING_FIELDS,), np.dtype(np.int64)),
    ]


class SharedCommandRing:
    """SPSC length-prefixed byte ring over two arena slots.

    Exactly one process (or thread) may push and exactly one may drain; the
    two sides need no lock.  Both sides construct the same view over the
    same arena -- the roles differ only in which methods they call.
    """

    def __init__(self, arena: SharedArena, prefix: str = "cmd") -> None:
        self._data = arena.array(f"{prefix}_ring")
        self._ctrl = arena.array(f"{prefix}_ctrl")
        self._capacity = int(self._data.size)
        self._prefix = prefix

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Usable ring size in bytes (framing included)."""
        return self._capacity

    @property
    def pending_bytes(self) -> int:
        """Bytes currently sitting in the ring (framing included)."""
        return int(self._ctrl[R_TAIL]) - int(self._ctrl[R_HEAD])

    @property
    def pending_records(self) -> int:
        """Records pushed but not yet drained."""
        return int(self._ctrl[R_PUSHED]) - int(self._ctrl[R_DRAINED])

    @property
    def total_pushed(self) -> int:
        """Lifetime count of records pushed."""
        return int(self._ctrl[R_PUSHED])

    @property
    def total_drained(self) -> int:
        """Lifetime count of records drained."""
        return int(self._ctrl[R_DRAINED])

    @staticmethod
    def record_bytes(payload: bytes) -> int:
        """Ring bytes one payload occupies (framing included)."""
        return RECORD_HEADER_BYTES + len(payload)

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def _copy_in(self, offset: int, blob: bytes) -> None:
        """Copy ``blob`` into the ring at byte ``offset`` (may wrap once)."""
        view = np.frombuffer(blob, dtype=np.uint8)
        first = min(len(blob), self._capacity - offset)
        self._data[offset:offset + first] = view[:first]
        if first < len(blob):
            self._data[: len(blob) - first] = view[first:]

    def try_push(self, payload: bytes) -> bool:
        """Append one record; False (nothing written) when it does not fit."""
        need = self.record_bytes(payload)
        if need > self._capacity:
            raise StateError(
                f"command of {len(payload)} bytes can never fit a "
                f"{self._capacity}-byte ring"
            )
        tail = int(self._ctrl[R_TAIL])
        free = self._capacity - (tail - int(self._ctrl[R_HEAD]))
        if need > free:
            return False
        blob = len(payload).to_bytes(RECORD_HEADER_BYTES, "little") + payload
        self._copy_in(tail % self._capacity, blob)
        # Publish last: the consumer reads tail before the bytes, so it can
        # never see a record whose bytes are not in place yet.
        self._ctrl[R_PUSHED] += 1
        self._ctrl[R_TAIL] = tail + need
        return True

    def push(self, payload: bytes) -> None:
        """Append one record or raise a typed :class:`BackpressureError`."""
        if not self.try_push(payload):
            raise BackpressureError(
                f"command ring {self._prefix!r} is full "
                f"({self.pending_bytes}/{self._capacity} bytes, "
                f"{self.pending_records} records pending)",
                queue=f"ring:{self._prefix}",
                depth=self.pending_bytes,
                capacity=self._capacity,
            )

    def push_batch(self, payloads: Sequence[bytes]) -> int:
        """Append records until one does not fit; returns how many landed."""
        accepted = 0
        for payload in payloads:
            if not self.try_push(payload):
                break
            accepted += 1
        return accepted

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    def _copy_out(self, offset: int, count: int) -> bytes:
        """Read ``count`` bytes starting at ``offset`` (may wrap once)."""
        first = min(count, self._capacity - offset)
        if first == count:
            return self._data[offset:offset + count].tobytes()
        return (
            self._data[offset:].tobytes()
            + self._data[: count - first].tobytes()
        )

    def drain(self, max_records: Optional[int] = None) -> List[bytes]:
        """Consume every record currently visible (the per-tick batch).

        Reads ``tail`` once -- records pushed after the snapshot wait for
        the next drain, which is exactly the per-tick batch boundary.
        """
        tail = int(self._ctrl[R_TAIL])
        head = int(self._ctrl[R_HEAD])
        drained: List[bytes] = []
        while head < tail:
            if max_records is not None and len(drained) >= max_records:
                break
            header = self._copy_out(head % self._capacity, RECORD_HEADER_BYTES)
            length = int.from_bytes(header, "little")
            if RECORD_HEADER_BYTES + length > tail - head:
                raise StateError(
                    f"torn ring record: header claims {length} bytes but "
                    f"only {tail - head - RECORD_HEADER_BYTES} are pending"
                )
            drained.append(
                self._copy_out(
                    (head + RECORD_HEADER_BYTES) % self._capacity, length
                )
            )
            head += RECORD_HEADER_BYTES + length
        if drained:
            self._ctrl[R_DRAINED] += len(drained)
            self._ctrl[R_HEAD] = head
        return drained
