"""Regenerate Figure 4: effect of update skew at 64,000 updates per tick."""

import pytest
from conftest import run_once

from repro.experiments import fig4


@pytest.fixture(scope="module")
def shared():
    return {}


def _sweep(bench_scale):
    # Always include the extremes the paper's Section 5.3 narrates.
    scale = bench_scale
    if 0.99 not in scale.skew_sweep or 0.0 not in scale.skew_sweep:
        scale = scale.with_overrides(
            skew_sweep=tuple(sorted(set(scale.skew_sweep) | {0.0, 0.99}))
        )
    return fig4.run(scale)


def test_fig4a(benchmark, bench_scale, report_sink, shared):
    """Figure 4(a): skew vs average overhead time."""
    result = run_once(benchmark, _sweep, bench_scale)
    shared["result"] = result
    report_sink("fig4a", result.tables[0].render() + "\n\n" + result.charts[0])
    raw = result.raw
    # Naive-Snapshot is skew-blind; copy-on-update benefits from skew.
    assert raw[0.99]["naive-snapshot"]["avg_overhead_s"] == pytest.approx(
        raw[0.0]["naive-snapshot"]["avg_overhead_s"], rel=0.05
    )
    assert (
        raw[0.99]["copy-on-update"]["avg_overhead_s"]
        < raw[0.0]["copy-on-update"]["avg_overhead_s"]
    )


def test_fig4b(benchmark, bench_scale, report_sink, shared):
    """Figure 4(b): skew vs time to checkpoint."""
    if "result" in shared:
        result = shared["result"]
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    else:
        result = run_once(benchmark, _sweep, bench_scale)
        shared["result"] = result
    report_sink("fig4b", result.tables[1].render())
    raw = result.raw
    # Partial-Redo's checkpoint shrinks with skew (fewer dirty objects).
    assert (
        raw[0.99]["partial-redo"]["avg_checkpoint_s"]
        < raw[0.0]["partial-redo"]["avg_checkpoint_s"]
    )


def test_fig4c(benchmark, bench_scale, report_sink, shared):
    """Figure 4(c): skew vs recovery time (paper: 7.3 s down to ~6.3 s)."""
    if "result" in shared:
        result = shared["result"]
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    else:
        result = run_once(benchmark, _sweep, bench_scale)
        shared["result"] = result
    report_sink("fig4c", result.tables[2].render() + "\n\n" + result.charts[1])
    raw = result.raw
    high = raw[0.0]["partial-redo"]["recovery_s"]
    low = raw[0.99]["partial-redo"]["recovery_s"]
    assert low < high
    assert low > 3 * raw[0.99]["naive-snapshot"]["recovery_s"]
