"""Client sessions and admission control, shared by every front-end tier.

Both front doors -- the in-process :class:`ConnectionServer` (one shard)
and the TCP :class:`~repro.frontend.gateway.GatewayServer` (a whole fleet)
-- admit clients into *sessions* and meter their command flow the same way:

* a **per-tick command budget** models flood control (a client may not
  issue more than ``commands_per_tick_limit`` commands between two tick
  boundaries);
* a **pending bound** caps how many admitted-but-not-yet-applied commands
  one session may accumulate, so a stalled tick loop cannot let a single
  client buffer unbounded work.

Both violations raise :class:`CommandOverflowError`, a typed
:class:`SessionError` carrying the offending session and the limit hit --
the gateway maps it onto a client-visible REJECT frame, the legacy server
lets it propagate to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ReproError


class SessionError(ReproError):
    """A client session was missing, closed, or over its command budget."""


class CommandOverflowError(SessionError):
    """A session hit its per-tick budget or its pending-command bound."""

    def __init__(self, message: str, *, session_id: int = 0,
                 limit: int = 0) -> None:
        super().__init__(message)
        self.session_id = session_id
        self.limit = limit


@dataclass
class ClientSession:
    """One connected client."""

    session_id: int
    player_name: str
    connected_at_tick: int
    #: Fleet shard currently serving this session (0 for single-shard).
    shard_index: int = 0
    commands_sent: int = 0
    trades_requested: int = 0
    #: Commands forwarded during the current tick window (rate limiting).
    commands_this_tick: int = 0
    #: Commands admitted but not yet applied by a tick (pending bound).
    commands_pending: int = 0
    #: Next seq for server-stamped commands (seq 0 is reserved for
    #: session-level rejections, so stamping starts at 1).
    next_seq: int = 1


class SessionRegistry:
    """Session lifecycle + admission control, front-end agnostic.

    Not thread-safe by itself -- the gateway serializes access under its
    own lock, the legacy connection server is single-threaded.
    """

    def __init__(self, commands_per_tick_limit: int = 16,
                 max_pending_commands: Optional[int] = 256) -> None:
        if commands_per_tick_limit < 1:
            raise SessionError(
                f"commands_per_tick_limit must be >= 1, got "
                f"{commands_per_tick_limit}"
            )
        if max_pending_commands is not None and max_pending_commands < 1:
            raise SessionError(
                f"max_pending_commands must be >= 1 or None, got "
                f"{max_pending_commands}"
            )
        self._limit = commands_per_tick_limit
        self._max_pending = max_pending_commands
        self._sessions: Dict[int, ClientSession] = {}
        self._next_session_id = 1

    @property
    def commands_per_tick_limit(self) -> int:
        return self._limit

    @property
    def count(self) -> int:
        """Number of currently connected sessions."""
        return len(self._sessions)

    def sessions(self):
        """Live sessions (a view; do not mutate while iterating)."""
        return self._sessions.values()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def connect(self, player_name: str, tick: int,
                shard_index: int = 0) -> ClientSession:
        """Open a session at the given tick, served by ``shard_index``."""
        if not player_name:
            raise SessionError("player_name must be non-empty")
        session_id = self._next_session_id
        self._next_session_id += 1
        session = ClientSession(
            session_id=session_id,
            player_name=player_name,
            connected_at_tick=tick,
            shard_index=shard_index,
        )
        self._sessions[session_id] = session
        return session

    def disconnect(self, session_id: int) -> ClientSession:
        """Close a session; its queued commands still execute."""
        return self._sessions.pop(self.get(session_id).session_id)

    def get(self, session_id: int) -> ClientSession:
        """Look up a session or raise :class:`SessionError`."""
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"no such session {session_id}")
        return session

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------

    def admit(self, session_id: int) -> ClientSession:
        """Charge one command against the session's budgets.

        Raises :class:`CommandOverflowError` when the per-tick budget or
        the pending bound is exhausted; on success the session's counters
        are already updated (the caller must actually forward the command).
        """
        session = self.get(session_id)
        if session.commands_this_tick >= self._limit:
            raise CommandOverflowError(
                f"session {session_id} exceeded {self._limit} commands/tick",
                session_id=session_id, limit=self._limit,
            )
        if (self._max_pending is not None
                and session.commands_pending >= self._max_pending):
            raise CommandOverflowError(
                f"session {session_id} has {session.commands_pending} "
                f"unapplied commands queued (bound {self._max_pending})",
                session_id=session_id, limit=self._max_pending,
            )
        session.commands_this_tick += 1
        session.commands_pending += 1
        session.commands_sent += 1
        return session

    def end_tick(self) -> None:
        """Reset every session's per-tick budget at a tick boundary.

        Pending counts are *not* reset here -- they drop when the caller
        acknowledges application via :meth:`mark_applied` (gateway) or all
        at once via :meth:`mark_all_applied` (legacy server, where every
        pending command is applied by the very next tick).
        """
        for session in self._sessions.values():
            session.commands_this_tick = 0

    def mark_applied(self, session_id: int, count: int) -> None:
        """Credit ``count`` of this session's pending commands as applied."""
        session = self.get(session_id)
        session.commands_pending = max(0, session.commands_pending - count)

    def mark_all_applied(self) -> None:
        """Credit every session's pending commands (single-shard tick)."""
        for session in self._sessions.values():
            session.commands_pending = 0
