"""A real, threaded implementation of Naive-Snapshot and Copy-on-Update.

This is the Python analogue of the paper's Section 6 C++ validation setup:

* a **mutator** executes each tick in three phases -- *query* (random lookups
  standing in for game logic), *update* (applying the trace's cell updates
  with dirty-bit maintenance and copy-on-update old-value saves), and *sleep*
  (filling the remainder so the game ticks at the configured rate);
* the shared :class:`~repro.engine.writer.AsyncCheckpointWriter` thread --
  the same one the durable engine runs -- flushes consistent checkpoints to
  a real :class:`~repro.storage.DoubleBackupStore` on disk, reading shared
  state under striped locks for Copy-on-Update and reading the private
  snapshot buffer for Naive-Snapshot.  Passing ``writer_pool`` swaps the
  private thread for a handle on a shared
  :class:`~repro.engine.writer_pool.CheckpointWriterPool`, so many
  validation servers (one per measured algorithm/rate point) share K
  workers exactly like a shard fleet does.

Thread-safety protocol (the paper's Write-Objects-To-Stable-Storage "must be
thread-safe"): before the mutator writes any object's cells it saves the old
value into the snapshot buffer and sets the object's saved-mask bit *under
that object's stripe lock* (:class:`~repro.state.dirty.StripeLockSet`); the
writer reads the mask and then either the snapshot or the live cells under
the same lock, so it always observes the checkpoint-cut value.

Everything is measured with wall-clock timers: per-tick overhead (the time
the tick spent on checkpoint work), checkpoint durations (begin to commit),
and the restore time of an actual sequential read of the final image.
"""

from __future__ import annotations

import os
import tempfile
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.config import StateGeometry
from repro.engine.writer import AsyncCheckpointWriter, CheckpointJob
from repro.errors import CheckpointWriterError, ValidationError
from repro.state.dirty import DoubleBackupBits, EpochSet, StripeLockSet
from repro.storage.double_backup import DoubleBackupStore
from repro.workloads.zipf import ZipfTrace

#: Default validation scale: 2M cells = 8 MB of state, 16,384 atomic objects.
#: Small enough for Python to tick at game rates, large enough that memory
#: copies and disk writes dominate the measured costs (see DESIGN.md).
VALIDATION_GEOMETRY = StateGeometry(rows=262_144, columns=8)


class _SnapshotSource:
    """Payload source reading the private snapshot buffer (Naive-Snapshot).

    The snapshot is written only while the writer is idle (the eager copy at
    checkpoint begin), so no locking is needed.
    """

    def __init__(self, server: "RealCheckpointServer") -> None:
        self._server = server

    def read_payloads(self, object_ids: np.ndarray) -> bytes:
        return self._server._snapshot[object_ids].tobytes()


class _ConsistentSource:
    """Payload source reading snapshot-or-live under stripes (Copy-on-Update)."""

    def __init__(self, server: "RealCheckpointServer") -> None:
        self._server = server

    def read_payloads(self, object_ids: np.ndarray) -> bytes:
        return self._server._read_consistent(object_ids)


@dataclass
class ValidationRunResult:
    """Measurements from one real run of one algorithm."""

    algorithm_key: str
    algorithm_name: str
    updates_per_tick: int
    ticks: int
    state_bytes: int
    tick_overhead: np.ndarray
    checkpoint_durations: List[float]
    restore_seconds: float

    @property
    def avg_overhead(self) -> float:
        """Mean measured per-tick overhead in seconds."""
        return float(self.tick_overhead.mean()) if self.tick_overhead.size else 0.0

    @property
    def max_overhead(self) -> float:
        """Largest measured single-tick overhead in seconds."""
        return float(self.tick_overhead.max()) if self.tick_overhead.size else 0.0

    @property
    def avg_checkpoint_time(self) -> float:
        """Mean measured checkpoint duration (begin to commit) in seconds."""
        if not self.checkpoint_durations:
            return 0.0
        return float(np.mean(self.checkpoint_durations))

    @property
    def recovery_time(self) -> float:
        """Measured restore plus one checkpoint period of replay."""
        return self.restore_seconds + self.avg_checkpoint_time

    def summary(self) -> dict:
        """Flat dictionary of the headline metrics."""
        return {
            "algorithm": self.algorithm_name,
            "updates_per_tick": self.updates_per_tick,
            "ticks": self.ticks,
            "avg_overhead_s": self.avg_overhead,
            "max_overhead_s": self.max_overhead,
            "avg_checkpoint_s": self.avg_checkpoint_time,
            "checkpoints_completed": len(self.checkpoint_durations),
            "restore_s": self.restore_seconds,
            "recovery_s": self.recovery_time,
        }


class RealCheckpointServer:
    """Mutator + asynchronous-writer implementation of NS and COU."""

    SUPPORTED = ("naive-snapshot", "copy-on-update")

    def __init__(
        self,
        algorithm: str,
        geometry: StateGeometry = VALIDATION_GEOMETRY,
        directory: Optional[str] = None,
        tick_period: float = 0.0,
        query_reads: int = 1_000,
        num_stripes: int = 64,
        writer_chunk_objects: int = 512,
        seed: int = 0,
        verify_consistency: bool = False,
        writer_pool=None,
    ) -> None:
        if algorithm not in self.SUPPORTED:
            raise ValidationError(
                f"real implementation covers {self.SUPPORTED}, got {algorithm!r}"
            )
        self._algorithm = algorithm
        self._geometry = geometry
        self._tick_period = tick_period
        self._query_reads = query_reads
        self._seed = seed
        self._own_directory = directory is None
        self._directory = directory or tempfile.mkdtemp(prefix="repro-validate-")

        num_objects = geometry.num_objects
        cells_per_object = geometry.cells_per_object
        self._state = np.zeros(num_objects * cells_per_object, dtype=np.uint32)
        self._objects_view = self._state.reshape(num_objects, cells_per_object)
        self._snapshot = np.zeros_like(self._objects_view)
        self._saved_mask = np.zeros(num_objects, dtype=bool)
        self._bits = DoubleBackupBits(num_objects)
        self._touched = EpochSet(num_objects)
        self._write_mask = np.zeros(num_objects, dtype=bool)
        self._locks = StripeLockSet(num_objects, num_stripes)
        self._store = DoubleBackupStore(self._directory, geometry)
        if writer_pool is not None:
            # A handle on the shared pool duck-types the private writer's
            # whole mutator-side surface, so nothing below cares which.
            self._writer = writer_pool.register(
                self._store, name=f"validate-{algorithm}"
            )
        else:
            self._writer = AsyncCheckpointWriter(
                self._store, chunk_objects=writer_chunk_objects,
                name="repro-writer",
            )
        self._snapshot_source = _SnapshotSource(self)
        self._consistent_source = _ConsistentSource(self)
        # Optional cut-consistency auditing: CRC of the whole state at each
        # checkpoint's cut, compared against the on-disk image afterwards.
        self._verify_consistency = verify_consistency
        self._cut_checksums: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Writer-thread payload reads
    # ------------------------------------------------------------------

    def _read_consistent(self, chunk: np.ndarray) -> bytes:
        """Read cut-consistent payloads for ``chunk`` under stripe locks."""
        with self._locks.locked(chunk):
            payload = self._objects_view[chunk].copy()
            saved = self._saved_mask[chunk]
            if saved.any():
                payload[saved] = self._snapshot[chunk[saved]]
        return payload.tobytes()

    # ------------------------------------------------------------------
    # Mutator
    # ------------------------------------------------------------------

    def run(self, updates_per_tick: int, num_ticks: int,
            skew: float = 0.8) -> ValidationRunResult:
        """Run the threaded server for ``num_ticks`` and return measurements."""
        geometry = self._geometry
        rng = np.random.default_rng(self._seed)
        self._state[: geometry.num_cells] = rng.integers(
            0, 2**32, size=geometry.num_cells, dtype=np.uint32
        )
        trace = ZipfTrace(
            geometry,
            updates_per_tick=updates_per_tick,
            skew=skew,
            num_ticks=num_ticks,
            seed=self._seed,
        )

        overheads = np.zeros(num_ticks)
        checkpoint_count = 0
        value_source = rng.integers(0, 2**32, size=1 << 16, dtype=np.uint32)
        try:
            for tick, cells in enumerate(trace.ticks()):
                tick_started = time.perf_counter()
                self._check_writer()

                # --- Query phase: random lookups stand in for game logic.
                if self._query_reads:
                    lookup = rng.integers(
                        0, geometry.num_cells, size=self._query_reads
                    )
                    float(self._state[lookup].sum())  # force the reads

                # --- Update phase.
                overheads[tick] = self._apply_updates(cells, value_source)

                # --- Tick boundary: start a checkpoint when the writer is idle.
                if self._writer.idle:
                    overheads[tick] += self._begin_checkpoint(
                        checkpoint_count, cut_tick=tick
                    )
                    checkpoint_count += 1

                # --- Sleep phase: fill the tick to the configured rate.
                if self._tick_period > 0.0:
                    remaining = self._tick_period - (
                        time.perf_counter() - tick_started
                    )
                    if remaining > 0:
                        time.sleep(remaining)
        except CheckpointWriterError as error:
            # submit() re-raises a writer-thread failure directly; present
            # it under this harness's error type like every other path.
            raise ValidationError(str(error)) from error
        finally:
            # A writer that cannot drain its last checkpoint within the
            # timeout is a wedged thread, and must raise -- never be shrugged
            # off with a timed-out join.
            if not self._writer.wait_idle(timeout=30.0, check=False):
                error = self._writer.error
                message = (
                    "asynchronous writer did not finish within 30.0s"
                )
                if error is not None:
                    message += f" (pending writer error: {error!r})"
                raise ValidationError(message) from error
        self._check_writer()

        restore_seconds = self._measure_restore()
        return ValidationRunResult(
            algorithm_key=self._algorithm,
            algorithm_name=(
                "Naive-Snapshot"
                if self._algorithm == "naive-snapshot"
                else "Copy-on-Update"
            ),
            updates_per_tick=updates_per_tick,
            ticks=num_ticks,
            state_bytes=geometry.state_bytes,
            tick_overhead=overheads,
            checkpoint_durations=self._writer.stats().durations,
            restore_seconds=restore_seconds,
        )

    def _check_writer(self) -> None:
        try:
            self._writer.check()
        except CheckpointWriterError as error:
            raise ValidationError(str(error)) from error

    def _apply_updates(self, cells: np.ndarray, value_source: np.ndarray) -> float:
        """Update phase; returns the measured checkpoint-related overhead."""
        overhead = 0.0
        objects = None
        if self._algorithm == "copy-on-update":
            started = time.perf_counter()
            objects = np.unique(self._geometry.object_of_cell(cells))
            self._bits.mark_updated(objects)
            fresh = self._touched.add_new(objects)
            copy_ids = fresh[self._write_mask[fresh]]
            if copy_ids.size and not self._writer.idle:
                self._save_old_values(copy_ids)
            overhead = time.perf_counter() - started
        # Apply the updates (game work, not checkpoint overhead).
        values = value_source[cells % value_source.size]
        self._state[cells] = values
        return overhead

    def _save_old_values(self, copy_ids: np.ndarray) -> None:
        with self._locks.locked(copy_ids):
            unsaved = copy_ids[~self._saved_mask[copy_ids]]
            if unsaved.size:
                self._snapshot[unsaved] = self._objects_view[unsaved]
                self._saved_mask[unsaved] = True

    def _begin_checkpoint(self, index: int, cut_tick: int) -> float:
        """Start checkpoint ``index``; returns the synchronous pause."""
        if self._verify_consistency:
            # The writer is idle here (checked by the caller), so an
            # unsynchronized full read *is* the cut state.
            self._cut_checksums[index + 1] = zlib.crc32(self._state.tobytes())
        started = time.perf_counter()
        backup_index = index % 2
        if self._algorithm == "naive-snapshot":
            np.copyto(self._snapshot, self._objects_view)  # the eager copy
            write_ids = np.arange(self._geometry.num_objects, dtype=np.int64)
            from_snapshot_only = True
        else:
            write_ids = self._bits.begin_checkpoint()
            self._bits.finish_checkpoint()  # alternate for the next round
            self._write_mask.fill(False)
            self._write_mask[write_ids] = True
            self._saved_mask.fill(False)
            self._touched.reset()
            from_snapshot_only = False
        pause = time.perf_counter() - started
        self._writer.submit(
            CheckpointJob(
                object_ids=write_ids,
                epoch=index + 1,
                cut_tick=cut_tick,
                source=(
                    self._snapshot_source
                    if from_snapshot_only
                    else self._consistent_source
                ),
                backup_index=backup_index,
            )
        )
        return pause

    # ------------------------------------------------------------------
    # Recovery measurement
    # ------------------------------------------------------------------

    def _measure_restore(self) -> float:
        """Time an actual sequential read of the newest consistent image."""
        try:
            found = self._store.latest_consistent()
        except Exception:
            return 0.0
        started = time.perf_counter()
        image = self._store.read_image(found.backup_index)
        elapsed = time.perf_counter() - started
        if len(image) != self._geometry.checkpoint_bytes:
            raise ValidationError("restore read returned a truncated image")
        return elapsed

    def verify_last_checkpoint(self) -> bool:
        """Audit cut-consistency of the newest durable checkpoint.

        Requires ``verify_consistency=True`` at construction.  Reads the
        latest committed image and compares its CRC against the CRC of the
        in-memory state captured at that checkpoint's cut -- the writer must
        have produced exactly the cut state despite racing the mutator.
        """
        if not self._verify_consistency:
            raise ValidationError(
                "construct the server with verify_consistency=True"
            )
        self._writer.wait_idle(timeout=30.0, check=False)
        found = self._store.latest_consistent()
        expected = self._cut_checksums.get(found.epoch)
        if expected is None:
            raise ValidationError(
                f"no cut checksum recorded for epoch {found.epoch}"
            )
        image = self._store.read_image(found.backup_index)
        # The image covers whole padded objects; our state array is exactly
        # object-aligned at this geometry, so bytes compare directly.
        return zlib.crc32(image) == expected

    def close(self) -> None:
        """Stop the writer, close the store, and remove temp files."""
        try:
            self._writer.close(timeout=30.0, wait=False)
        except CheckpointWriterError as error:
            raise ValidationError(str(error)) from error
        finally:
            self._store.close()
        if self._own_directory:
            for name in DoubleBackupStore.FILE_NAMES:
                path = os.path.join(self._directory, name)
                if os.path.exists(path):
                    os.unlink(path)
            try:
                os.rmdir(self._directory)
            except OSError:
                pass

    def __enter__(self) -> "RealCheckpointServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
