"""Tests for the statistical game-trace model."""

import numpy as np
import pytest

from repro.config import GAME_GEOMETRY, StateGeometry
from repro.errors import TraceError
from repro.workloads.gamelike import (
    COLUMN_HEALTH,
    COLUMN_STATE,
    COLUMN_X,
    COLUMN_Y,
    GameLikeTrace,
)


@pytest.fixture
def small_trace():
    geometry = StateGeometry(rows=10_000, columns=13)
    return GameLikeTrace(geometry, num_ticks=150, seed=7)


class TestStatistics:
    def test_paper_scale_update_rate(self):
        """Full-scale model averages ~35,590 updates/tick (Table 5)."""
        trace = GameLikeTrace(num_ticks=60, seed=0)
        sizes = [cells.size for cells in trace.ticks()]
        average = float(np.mean(sizes))
        assert average == pytest.approx(35_590, rel=0.05)

    def test_expected_updates_property_matches(self):
        trace = GameLikeTrace(num_ticks=1)
        assert trace.expected_updates_per_tick == pytest.approx(35_590, rel=0.05)

    def test_only_active_fraction_touched_per_tick(self, small_trace):
        geometry = small_trace.geometry
        for cells in small_trace.ticks():
            rows = np.unique(cells // geometry.columns)
            # At most ~active_fraction of rows plus churn partners.
            assert rows.size <= 0.15 * geometry.rows
            break

    def test_positions_dominate(self, small_trace):
        geometry = small_trace.geometry
        counts = np.zeros(geometry.columns, dtype=np.int64)
        for cells in small_trace.ticks():
            counts += np.bincount(
                cells % geometry.columns, minlength=geometry.columns
            )
        position_share = (counts[COLUMN_X] + counts[COLUMN_Y]) / counts.sum()
        assert position_share > 0.6
        assert counts[COLUMN_HEALTH] < counts[COLUMN_X]

    def test_active_set_renews(self):
        """Most of the population is eventually touched ("completely renewed
        every 100 ticks with high probability")."""
        geometry = StateGeometry(rows=5_000, columns=13)
        trace = GameLikeTrace(geometry, num_ticks=200, seed=1)
        seen_rows = np.zeros(geometry.rows, dtype=bool)
        for cells in trace.ticks():
            seen_rows[cells // geometry.columns] = True
        assert seen_rows.mean() > 0.5

    def test_churn_touches_state_column(self, small_trace):
        geometry = small_trace.geometry
        state_updates = 0
        for cells in small_trace.ticks():
            state_updates += int((cells % geometry.columns == COLUMN_STATE).sum())
        assert state_updates > 0


class TestDeterminism:
    def test_replay_identical(self):
        geometry = StateGeometry(rows=3_000, columns=13)
        trace = GameLikeTrace(geometry, num_ticks=20, seed=5)
        first = [cells.copy() for cells in trace.ticks()]
        second = list(trace.ticks())
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)


class TestValidation:
    def test_rejects_too_few_columns(self):
        with pytest.raises(TraceError):
            GameLikeTrace(StateGeometry(rows=100, columns=3))

    def test_rejects_bad_fraction(self):
        with pytest.raises(TraceError):
            GameLikeTrace(GAME_GEOMETRY, active_fraction=1.5)
        with pytest.raises(TraceError):
            GameLikeTrace(GAME_GEOMETRY, move_probability=-0.1)
