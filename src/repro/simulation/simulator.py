"""The checkpoint simulator: the paper's Java simulator, in Python.

:class:`CheckpointSimulator` feeds an update trace through one checkpointing
algorithm, driving the :class:`~repro.core.framework.CheckpointFramework`
with a :class:`SimulatedExecutor` that prices every subroutine with the
Section 4.2 cost model instead of doing real work.  Virtual time advances by
the nominal tick length plus whatever overhead the algorithm introduces, and
the asynchronous checkpoint write drains concurrently in virtual time.

To amortize workload generation across the six algorithms, a trace can be
pre-reduced once with :class:`PrecomputedObjectTrace` (per-tick unique atomic
objects plus raw update counts -- all any policy can observe) and reused for
every run.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple, Union

import numpy as np

from repro.config import SimulationConfig
from repro.core.framework import CheckpointFramework, SubroutineExecutor
from repro.core.plan import CheckpointPlan, DiskLayout, UpdateEffects
from repro.core.policy import CheckpointPolicy
from repro.core.registry import make_policy
from repro.errors import SimulationError
from repro.simulation.costmodel import CostModel
from repro.simulation.disk import DiskWriteScheduler
from repro.simulation.recovery import estimate_recovery
from repro.simulation.results import CheckpointRecord, SimulationResult
from repro.workloads.base import UpdateTrace

# The reduction lives with the workloads (it is a pure function of the trace
# and the unit of persistent caching); re-exported here for compatibility.
from repro.workloads.reduced import PrecomputedObjectTrace

TraceLike = Union[UpdateTrace, PrecomputedObjectTrace]


def _object_tick_stream(trace: TraceLike) -> Iterable[Tuple[np.ndarray, int]]:
    if isinstance(trace, PrecomputedObjectTrace):
        return trace.object_ticks()
    geometry = trace.geometry
    return (
        (np.unique(geometry.object_of_cell(cells)), int(cells.size))
        for cells in trace.ticks()
    )


class SimulatedExecutor(SubroutineExecutor):
    """Prices the four framework subroutines and tracks virtual time."""

    def __init__(self, cost_model: CostModel) -> None:
        self._cost_model = cost_model
        self._scheduler = DiskWriteScheduler()
        self.now = 0.0
        self._last_effects: UpdateEffects = UpdateEffects.none()
        self._last_job_duration = 0.0

    @property
    def cost_model(self) -> CostModel:
        """The cost model pricing the subroutines."""
        return self._cost_model

    @property
    def last_effects(self) -> UpdateEffects:
        """Effects of the most recent :meth:`handle_updates` call."""
        return self._last_effects

    @property
    def last_job_duration(self) -> float:
        """Asynchronous duration of the most recently started write."""
        return self._last_job_duration

    def advance(self, seconds: float) -> None:
        """Advance virtual time (the simulator adds the nominal tick length)."""
        if seconds < 0:
            raise SimulationError(f"cannot advance time by {seconds}")
        self.now += seconds

    # -- SubroutineExecutor interface ----------------------------------

    def copy_to_memory(self, plan: CheckpointPlan) -> float:
        pause = self._cost_model.sync_copy_time(plan.eager_copy_ids)
        self.now += pause
        return pause

    def begin_stable_write(self, plan: CheckpointPlan) -> None:
        if not self._scheduler.finished(self.now):
            raise SimulationError(
                "framework started a checkpoint while the previous write "
                "was still in flight"
            )
        if self._scheduler.active_job is not None:
            self._scheduler.retire(self.now)
        write_count = plan.write_count(self._cost_model.geometry.num_objects)
        if plan.layout is DiskLayout.LOG:
            duration = self._cost_model.log_write_time(write_count)
        else:
            duration = self._cost_model.double_backup_write_time(write_count)
        self._last_job_duration = duration
        self._scheduler.begin(self.now, duration)

    def stable_write_finished(self) -> bool:
        return self._scheduler.finished(self.now)

    def handle_updates(self, effects: UpdateEffects) -> float:
        self._last_effects = effects
        overhead = self._cost_model.update_overhead(effects)
        self.now += overhead
        return overhead


class CheckpointSimulator:
    """Runs checkpointing algorithms over update traces in virtual time."""

    def __init__(self, config: SimulationConfig) -> None:
        self._config = config
        self._cost_model = CostModel(config.hardware, config.geometry)

    @property
    def config(self) -> SimulationConfig:
        """The configuration this simulator runs with."""
        return self._config

    @property
    def cost_model(self) -> CostModel:
        """The cost model derived from the configuration."""
        return self._cost_model

    def run(
        self,
        algorithm: Union[str, CheckpointPolicy],
        trace: TraceLike,
    ) -> SimulationResult:
        """Simulate one algorithm over one trace and return its result."""
        geometry = self._config.geometry
        if trace.geometry != geometry:
            raise SimulationError(
                f"trace geometry {trace.geometry} does not match simulator "
                f"geometry {geometry}"
            )
        if isinstance(algorithm, str):
            policy = make_policy(
                algorithm,
                geometry.num_objects,
                full_dump_period=self._config.full_dump_period,
            )
        else:
            policy = algorithm
            if policy.checkpoints_started:
                raise SimulationError(
                    "policy instances cannot be reused across runs; "
                    "pass the algorithm key to get a fresh one"
                )
            if policy.num_objects != geometry.num_objects:
                raise SimulationError(
                    f"policy tracks {policy.num_objects} objects but the "
                    f"geometry has {geometry.num_objects}"
                )

        executor = SimulatedExecutor(self._cost_model)
        framework = CheckpointFramework(policy, executor)
        base = self._config.hardware.tick_duration
        cost = self._cost_model

        # Per-tick series are preallocated (the trace knows its length) and
        # hold raw event counts; the cost multiplications happen once,
        # vectorized, after the loop.
        num_ticks = trace.num_ticks
        tick_updates = np.zeros(num_ticks, dtype=np.int64)
        update_overheads = np.zeros(num_ticks, dtype=np.float64)
        bit_counts = np.zeros(num_ticks, dtype=np.int64)
        lock_counts = np.zeros(num_ticks, dtype=np.int64)
        copy_counts = np.zeros(num_ticks, dtype=np.int64)
        pause_time = np.zeros(num_ticks, dtype=np.float64)
        records: List[CheckpointRecord] = []

        min_interval = self._config.min_checkpoint_interval_ticks
        last_start_tick: int = -min_interval  # first checkpoint is immediate

        for tick, (unique_objects, update_count) in enumerate(
            _object_tick_stream(trace)
        ):
            if tick >= num_ticks:
                raise SimulationError(
                    f"trace yielded more than its declared {num_ticks} ticks"
                )
            executor.advance(base)
            update_overhead = framework.process_updates(unique_objects,
                                                        update_count)
            effects = executor.last_effects
            allow_start = tick - last_start_tick >= min_interval
            boundary = framework.end_of_tick(allow_start=allow_start)
            if boundary.started is not None:
                last_start_tick = tick

            if boundary.finished is not None:
                records[boundary.finished.checkpoint_index].finished_tick = tick
            if boundary.started is not None:
                plan = boundary.started
                records.append(
                    CheckpointRecord(
                        index=plan.checkpoint_index,
                        start_tick=tick,
                        start_time=executor.now,
                        sync_pause=boundary.sync_pause,
                        write_count=plan.write_count(geometry.num_objects),
                        async_duration=executor.last_job_duration,
                        layout=plan.layout,
                        is_full_dump=plan.is_full_dump,
                    )
                )

            tick_updates[tick] = update_count
            update_overheads[tick] = update_overhead
            bit_counts[tick] = effects.bit_tests
            lock_counts[tick] = effects.lock_count
            copy_counts[tick] = effects.copy_count
            pause_time[tick] = boundary.sync_pause

        overhead_array = update_overheads + pause_time
        result = SimulationResult(
            algorithm_key=policy.key,
            algorithm_name=policy.name,
            config=self._config,
            base_tick_length=base,
            tick_updates=tick_updates,
            tick_overhead=overhead_array,
            tick_length=base + overhead_array,
            bit_time=bit_counts * cost.hardware.bit_test_overhead,
            lock_time=lock_counts * cost.hardware.lock_overhead,
            copy_time=copy_counts * cost.single_object_copy_time(),
            pause_time=pause_time,
            checkpoints=records,
        )
        result.recovery = estimate_recovery(
            type(policy),
            result.measured_checkpoints(),
            cost,
            self._config.full_dump_period,
            min_interval_seconds=(
                (self._config.min_checkpoint_interval_ticks - 1) * base
            ),
        )
        return result

    def run_all(
        self,
        trace: TraceLike,
        algorithms: Iterable[str] = None,
    ) -> List[SimulationResult]:
        """Run several algorithms (default: all six) over one trace."""
        from repro.core.registry import ALGORITHM_KEYS

        keys = list(algorithms) if algorithms is not None else list(ALGORITHM_KEYS)
        if not isinstance(trace, PrecomputedObjectTrace):
            trace = PrecomputedObjectTrace(trace)
        return [self.run(key, trace) for key in keys]
