"""Tests for the shared checkpoint writer pool."""

import threading
import time

import numpy as np
import pytest

from repro.config import StateGeometry
from repro.engine.fleet import ShardFleet
from repro.engine.server import DurableGameServer
from repro.engine.writer import CheckpointJob
from repro.engine.writer_pool import CheckpointWriterPool
from repro.errors import CheckpointWriterError, StorageError
from repro.storage.checkpoint_log import CheckpointLogStore
from repro.storage.double_backup import DoubleBackupStore
from repro.storage.layout import STATE_EMPTY

GEOMETRY = StateGeometry(rows=400, columns=10)


class ArraySource:
    """Payload source backed by a fixed array (no mutator races)."""

    def __init__(self, objects: np.ndarray) -> None:
        self._objects = objects

    def read_payloads(self, object_ids: np.ndarray) -> bytes:
        return self._objects[object_ids].tobytes()


class BlockingSource(ArraySource):
    """Payload source that parks the flushing worker until released."""

    def __init__(self, objects: np.ndarray) -> None:
        super().__init__(objects)
        self.entered = threading.Event()
        self.release = threading.Event()

    def read_payloads(self, object_ids: np.ndarray) -> bytes:
        self.entered.set()
        self.release.wait(timeout=30.0)
        return super().read_payloads(object_ids)


def make_objects(seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(
        (GEOMETRY.num_objects, GEOMETRY.cells_per_object)
    ).astype(np.float32)


def full_job(source, epoch=1, cut_tick=5, backup_index=0, is_full_dump=False):
    return CheckpointJob(
        object_ids=np.arange(GEOMETRY.num_objects, dtype=np.int64),
        epoch=epoch,
        cut_tick=cut_tick,
        source=source,
        backup_index=backup_index,
        is_full_dump=is_full_dump,
    )


@pytest.fixture
def app_factory(random_walk_app):
    app_class = type(random_walk_app)
    return lambda index: app_class(GEOMETRY)


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_workers": 0},
            {"num_workers": 2, "max_pending": 0},
            {"num_workers": 2, "batch_jobs": 0},
            {"num_workers": 2, "chunk_objects": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(CheckpointWriterError):
            CheckpointWriterPool(**kwargs)

    def test_register_after_close_rejected(self, tmp_path):
        pool = CheckpointWriterPool(1)
        pool.close()
        with DoubleBackupStore(tmp_path, GEOMETRY) as store:
            with pytest.raises(CheckpointWriterError):
                pool.register(store)


class TestRoundTrip:
    def test_many_shards_few_workers(self, tmp_path):
        """5 stores of both types flushed correctly by 2 worker threads."""
        with CheckpointWriterPool(2, batch_jobs=4, chunk_objects=8) as pool:
            stores, handles, arrays = [], [], []
            for index in range(5):
                if index % 2 == 0:
                    store = DoubleBackupStore(tmp_path / str(index), GEOMETRY)
                else:
                    store = CheckpointLogStore(tmp_path / str(index), GEOMETRY)
                stores.append(store)
                handles.append(pool.register(store))
                arrays.append(make_objects(index))
            for index, handle in enumerate(handles):
                handle.submit(
                    full_job(
                        ArraySource(arrays[index]),
                        cut_tick=7,
                        backup_index=0 if index % 2 == 0 else None,
                        is_full_dump=index % 2 == 1,
                    )
                )
            for handle in handles:
                assert handle.wait_idle(timeout=10.0)
            for index, store in enumerate(stores):
                if index % 2 == 0:
                    found = store.latest_consistent()
                    assert (found.epoch, found.tick) == (1, 7)
                    image = store.read_image(found.backup_index)
                else:
                    image, epoch, tick = store.restore_image()
                    assert (epoch, tick) == (1, 7)
                assert image == arrays[index].tobytes()
            stats = pool.stats()
            assert stats.jobs_completed == 5
            assert stats.jobs_submitted == 5
            assert stats.jobs_batched == 5
            assert sum(
                size * count
                for size, count in stats.batch_size_histogram.items()
            ) == 5
            assert stats.coalesced_jobs == 5
            for store in stores:
                store.close()

    def test_thread_count_is_pool_sized(self, tmp_path):
        """10 registered shards never spawn more than num_workers threads."""
        pool = CheckpointWriterPool(2, name="repro-pool-count")
        handles = []
        stores = []
        for index in range(10):
            store = DoubleBackupStore(tmp_path / str(index), GEOMETRY)
            stores.append(store)
            handles.append(pool.register(store))
        for index, handle in enumerate(handles):
            handle.submit(full_job(ArraySource(make_objects(index))))
        for handle in handles:
            assert handle.wait_idle(timeout=10.0)
        pool_threads = [
            thread for thread in threading.enumerate()
            if thread.name.startswith("repro-pool-count")
        ]
        assert len(pool_threads) == 2
        pool.close()
        for store in stores:
            store.close()

    def test_per_handle_stats_are_isolated(self, tmp_path):
        with CheckpointWriterPool(1) as pool:
            store_a = DoubleBackupStore(tmp_path / "a", GEOMETRY)
            store_b = DoubleBackupStore(tmp_path / "b", GEOMETRY)
            handle_a = pool.register(store_a, name="a")
            handle_b = pool.register(store_b, name="b")
            handle_a.submit(full_job(ArraySource(make_objects(1))))
            assert handle_a.wait_idle(timeout=10.0)
            handle_a.submit(full_job(
                ArraySource(make_objects(1)), epoch=2, cut_tick=9,
                backup_index=1,
            ))
            assert handle_a.wait_idle(timeout=10.0)
            handle_b.submit(full_job(ArraySource(make_objects(2))))
            assert handle_b.wait_idle(timeout=10.0)
            assert handle_a.stats().jobs_completed == 2
            assert handle_a.last_committed == (2, 9)
            assert handle_b.stats().jobs_completed == 1
            assert handle_b.last_committed == (1, 5)
            store_a.close()
            store_b.close()


class TestFailureIsolation:
    def test_one_shards_fault_does_not_wedge_others(self, tmp_path):
        """A store raising mid-flush poisons only its own handle."""
        with CheckpointWriterPool(1, chunk_objects=8) as pool:
            bad_store = DoubleBackupStore(tmp_path / "bad", GEOMETRY)
            good_store = DoubleBackupStore(tmp_path / "good", GEOMETRY)

            calls = {"count": 0}

            def explode():
                calls["count"] += 1
                if calls["count"] > 1:  # die on the second chunk
                    raise StorageError("injected mid-flush fault")

            bad_store.write_fault_hook = explode
            bad = pool.register(bad_store, name="bad")
            good = pool.register(good_store, name="good")
            objects = make_objects(7)
            bad.submit(full_job(ArraySource(make_objects(3))))
            good.submit(full_job(ArraySource(objects)))
            assert bad.wait_idle(timeout=10.0, check=False)
            assert good.wait_idle(timeout=10.0)

            # The failed shard's handle carries the error...
            assert isinstance(bad.error, StorageError)
            with pytest.raises(CheckpointWriterError):
                bad.check()
            with pytest.raises(CheckpointWriterError):
                bad.submit(full_job(ArraySource(make_objects(3)), epoch=2))
            # ...its store is left with no committed checkpoint...
            with pytest.raises(Exception):
                bad_store.latest_consistent()
            # ...while the other shard committed intact bytes and can keep
            # checkpointing through the same (still healthy) pool.
            assert good_store.read_image(0) == objects.tobytes()
            good.submit(full_job(
                ArraySource(objects), epoch=2, cut_tick=11, backup_index=1,
            ))
            assert good.wait_idle(timeout=10.0)
            assert good.last_committed == (2, 11)
            bad.kill()  # retire the failed shard before the orderly close
            bad_store.close()
            good_store.close()

    def test_orderly_pool_close_reraises_handle_error(self, tmp_path):
        pool = CheckpointWriterPool(1)
        store = DoubleBackupStore(tmp_path, GEOMETRY)

        def explode():
            raise StorageError("injected fault")

        store.write_fault_hook = explode
        handle = pool.register(store)
        handle.submit(full_job(ArraySource(make_objects())))
        handle.wait_idle(timeout=10.0, check=False)
        with pytest.raises(CheckpointWriterError):
            pool.close()
        store.close()


class TestAdmissionControl:
    def test_submit_while_busy_rejected(self, tmp_path):
        with CheckpointWriterPool(1) as pool:
            store = DoubleBackupStore(tmp_path, GEOMETRY)
            handle = pool.register(store)
            source = BlockingSource(make_objects())
            handle.submit(full_job(source))
            assert source.entered.wait(timeout=10.0)
            with pytest.raises(CheckpointWriterError):
                handle.submit(full_job(source, epoch=2, backup_index=1))
            source.release.set()
            assert handle.wait_idle(timeout=10.0)
            store.close()

    def test_saturated_queue_times_out_with_backpressure(self, tmp_path):
        """max_pending bounds the queue; a full pool pushes back on submit."""
        pool = CheckpointWriterPool(
            1, max_pending=1, admission_timeout=0.2
        )
        blocker = BlockingSource(make_objects())
        stores, handles = [], []
        for index in range(3):
            store = DoubleBackupStore(tmp_path / str(index), GEOMETRY)
            stores.append(store)
            handles.append(pool.register(store))
        # Job 0 occupies the single worker; job 1 fills the queue slot.
        handles[0].submit(full_job(blocker))
        assert blocker.entered.wait(timeout=10.0)
        handles[1].submit(full_job(ArraySource(make_objects(1))))
        started = time.perf_counter()
        with pytest.raises(CheckpointWriterError, match="admission queue"):
            handles[2].submit(full_job(ArraySource(make_objects(2))))
        assert time.perf_counter() - started >= 0.2
        blocker.release.set()
        for handle in handles[:2]:
            assert handle.wait_idle(timeout=10.0)
        pool.close()
        for store in stores:
            store.close()

    def test_queue_drains_fifo_over_shards(self, tmp_path):
        """Round-robin fairness: queued shards commit in submission order."""
        pool = CheckpointWriterPool(1, batch_jobs=1)
        blocker = BlockingSource(make_objects())
        stores, handles = [], []
        for index in range(4):
            store = DoubleBackupStore(tmp_path / str(index), GEOMETRY)
            stores.append(store)
            handles.append(pool.register(store))
        commit_order = []

        class RecordingSource(ArraySource):
            def __init__(self, objects, index):
                super().__init__(objects)
                self._index = index

            def read_payloads(self, object_ids):
                if self._index not in commit_order:
                    commit_order.append(self._index)
                return super().read_payloads(object_ids)

        handles[0].submit(full_job(blocker))
        assert blocker.entered.wait(timeout=10.0)
        for index in (1, 2, 3):
            handles[index].submit(
                full_job(RecordingSource(make_objects(index), index))
            )
        blocker.release.set()
        for handle in handles:
            assert handle.wait_idle(timeout=10.0)
        assert commit_order == [1, 2, 3]
        pool.close()
        for store in stores:
            store.close()


class TestShutdown:
    def test_kill_abandons_queued_job_without_touching_store(self, tmp_path):
        pool = CheckpointWriterPool(1)
        blocker = BlockingSource(make_objects())
        store_a = DoubleBackupStore(tmp_path / "a", GEOMETRY)
        store_b = DoubleBackupStore(tmp_path / "b", GEOMETRY)
        handle_a = pool.register(store_a)
        handle_b = pool.register(store_b)
        handle_a.submit(full_job(blocker))
        assert blocker.entered.wait(timeout=10.0)
        handle_b.submit(full_job(ArraySource(make_objects(1))))
        # Kill the queued handle: its job is dropped before any write.
        handle_b.kill(timeout=10.0)
        assert handle_b.stats().jobs_abandoned == 1
        assert store_b.header(0).state == STATE_EMPTY  # never touched
        blocker.release.set()
        assert handle_a.wait_idle(timeout=10.0)
        pool.close()
        store_a.close()
        store_b.close()

    def test_orderly_close_drains_queued_jobs(self, tmp_path):
        pool = CheckpointWriterPool(1, batch_jobs=1)
        stores, handles, arrays = [], [], []
        for index in range(3):
            store = DoubleBackupStore(tmp_path / str(index), GEOMETRY)
            stores.append(store)
            handles.append(pool.register(store))
            arrays.append(make_objects(index))
            handles[index].submit(full_job(ArraySource(arrays[index])))
        pool.close(wait=True)  # drains all three to commit
        for index, store in enumerate(stores):
            assert store.read_image(0) == arrays[index].tobytes()
            store.close()

    def test_submit_after_close_rejected(self, tmp_path):
        pool = CheckpointWriterPool(1)
        store = DoubleBackupStore(tmp_path, GEOMETRY)
        handle = pool.register(store)
        pool.close()
        with pytest.raises(CheckpointWriterError):
            handle.submit(full_job(ArraySource(make_objects())))
        store.close()


class TestEngineIntegration:
    def test_two_servers_share_one_pool(self, random_walk_app, tmp_path):
        app_class = type(random_walk_app)
        with CheckpointWriterPool(1) as pool:
            servers = [
                DurableGameServer(
                    app_class(GEOMETRY), tmp_path / str(index),
                    algorithm="copy-on-update", seed=index,
                    writer_pool=pool, writer_name=f"server-{index}",
                )
                for index in range(2)
            ]
            for server in servers:
                assert server.async_writer
                server.run_ticks(40)
            live = [server.table.cells.copy() for server in servers]
            for server in servers:
                server.crash()
            from repro.engine.recovery import RecoveryManager
            for index in range(2):
                report = RecoveryManager(
                    app_class(GEOMETRY), tmp_path / str(index), seed=index
                ).recover()
                assert np.array_equal(report.table.cells, live[index])

    def test_pooled_fleet_matches_per_shard_writer_fleet(
        self, app_factory, tmp_path
    ):
        """pool_size=K is a pure I/O-scheduling change: same game states."""
        cells = {}
        for label, kwargs in (
            ("pool", {"pool_size": 2}),
            ("own", {"async_writer": True}),
        ):
            fleet = ShardFleet(
                app_factory, tmp_path / label, num_shards=3, seed=5, **kwargs
            )
            with fleet:
                fleet.run_ticks(20, parallel=True)
                cells[label] = [
                    shard.game.table.cells.copy() for shard in fleet.shards
                ]
        for pooled, own in zip(cells["pool"], cells["own"]):
            assert np.array_equal(pooled, own)

    def test_pooled_fleet_crash_recovers_bit_exact(self, app_factory, tmp_path):
        fleet = ShardFleet(
            app_factory, tmp_path, num_shards=3, seed=5, pool_size=2
        )
        fleet.run_ticks(25, parallel=True)
        assert fleet.writer_threads == 2
        live = [shard.game.table.cells.copy() for shard in fleet.shards]
        fleet.crash()
        reports = ShardFleet.recover(app_factory, tmp_path, 3, seed=5)
        for recovered, expected in zip(reports, live):
            assert np.array_equal(recovered.game.table.cells, expected)
            recovered.persistence.close()

    def test_pool_fault_on_one_shard_leaves_others_recoverable(
        self, app_factory, tmp_path
    ):
        """Mid-flush fault on shard 0 must not corrupt shards 1 and 2."""
        fleet = ShardFleet(
            app_factory, tmp_path, num_shards=3, seed=5, pool_size=1,
        )
        calls = {"count": 0}

        def explode():
            calls["count"] += 1
            if calls["count"] > 1:
                raise StorageError("injected mid-flush fault")

        fleet.shards[0].game._store.write_fault_hook = explode
        with pytest.raises(CheckpointWriterError):
            for _ in range(500):
                for shard in fleet.shards:
                    shard.run_tick()
        assert calls["count"] > 1, "fault hook never fired mid-flush"
        # The healthy shards keep ticking through the same pool.
        for shard in fleet.shards[1:]:
            shard.run_ticks(20)
        live = [shard.game.table.cells.copy() for shard in fleet.shards]
        fleet.crash()
        reports = ShardFleet.recover(app_factory, tmp_path, 3, seed=5)
        for recovered, expected in zip(reports, live):
            assert np.array_equal(recovered.game.table.cells, expected)
            recovered.persistence.close()


class TestStalenessAdmission:
    def _flood(self, tmp_path, admission, cuts):
        """Park the worker, queue one job per cut, return the service order.

        Returns ``(service_order, stats)`` where ``service_order`` lists the
        submission indices in the order the worker flushed them.
        """
        service_order = []

        class RecordingSource(ArraySource):
            def __init__(self, objects, index):
                super().__init__(objects)
                self._index = index

            def read_payloads(self, object_ids):
                if self._index not in service_order:
                    service_order.append(self._index)
                return super().read_payloads(object_ids)

        pool = CheckpointWriterPool(1, batch_jobs=1, admission=admission)
        blocker = BlockingSource(make_objects())
        stores, handles = [], []
        try:
            for index in range(len(cuts) + 1):
                store = CheckpointLogStore(tmp_path / str(index), GEOMETRY)
                stores.append(store)
                handles.append(pool.register(store))
            handles[0].submit(full_job(blocker, cut_tick=0, backup_index=None,
                                       is_full_dump=True))
            assert blocker.entered.wait(timeout=10.0)
            for index, cut in enumerate(cuts, start=1):
                handles[index].submit(full_job(
                    RecordingSource(make_objects(index), index),
                    cut_tick=cut, backup_index=None, is_full_dump=True,
                ))
            blocker.release.set()
            for handle in handles:
                assert handle.wait_idle(timeout=10.0)
            return service_order, pool.stats()
        finally:
            pool.close()
            for store in stores:
                store.close()

    def test_oldest_cut_serviced_first(self, tmp_path):
        """Cuts submitted newest-first drain oldest-first under staleness."""
        order, stats = self._flood(tmp_path, "staleness", cuts=[30, 20, 10])
        assert order == [3, 2, 1]
        assert stats.max_picked_staleness_ticks == 0

    def test_fifo_services_arrival_order_and_records_inversion(
        self, tmp_path
    ):
        order, stats = self._flood(tmp_path, "fifo", cuts=[30, 20, 10])
        assert order == [1, 2, 3]
        # The worker picked the cut-30 job while the cut-10 job was queued.
        assert stats.max_picked_staleness_ticks == 20

    def test_invalid_admission_rejected(self):
        with pytest.raises(CheckpointWriterError):
            CheckpointWriterPool(1, admission="lifo")
        with pytest.raises(CheckpointWriterError):
            CheckpointWriterPool(1, max_gather_bytes=0)

    def test_oversize_job_falls_back_to_chunked_flush(self, tmp_path):
        """Jobs past max_gather_bytes land chunked instead of staged."""
        with CheckpointWriterPool(1, max_gather_bytes=1) as pool:
            store = DoubleBackupStore(tmp_path, GEOMETRY)
            handle = pool.register(store)
            objects = make_objects()
            handle.submit(full_job(ArraySource(objects)))
            assert handle.wait_idle(timeout=10.0)
            stats = pool.stats()
            assert stats.chunked_jobs == 1
            assert stats.coalesced_jobs == 0
            assert store.read_image(0) == objects.tobytes()
            store.close()

    def test_checkpoint_age_gauge_tracks_undurable_cut(self, tmp_path):
        with CheckpointWriterPool(1) as pool:
            store = DoubleBackupStore(tmp_path, GEOMETRY)
            handle = pool.register(store)
            assert handle.checkpoint_age == 0  # nothing submitted yet
            source = BlockingSource(make_objects())
            handle.submit(full_job(source, cut_tick=9))
            assert source.entered.wait(timeout=10.0)
            # Cut 9 handed over, nothing durable yet: 10 ticks of replay.
            assert handle.checkpoint_age == 10
            assert pool.stats().max_checkpoint_age_ticks == 10
            source.release.set()
            assert handle.wait_idle(timeout=10.0)
            assert handle.checkpoint_age == 0
            assert pool.stats().max_checkpoint_age_ticks == 0
            store.close()


class TestCoalescedCrashSemantics:
    def test_fault_mid_batch_leaves_every_handle_recoverable(self, tmp_path):
        """A crash-mid-gathered-write fault on one handle of a coalesced
        batch must not tear any other handle's commit marker."""
        with CheckpointWriterPool(1, batch_jobs=8, chunk_objects=8) as pool:
            blocker_store = CheckpointLogStore(tmp_path / "blocker", GEOMETRY)
            stores = [
                CheckpointLogStore(tmp_path / str(index), GEOMETRY)
                for index in range(3)
            ]
            blocker_handle = pool.register(blocker_store, name="blocker")
            handles = [
                pool.register(store, name=f"shard-{index}")
                for index, store in enumerate(stores)
            ]
            arrays = [make_objects(index) for index in range(3)]
            # Round 1: every shard commits epoch 1 normally.
            for index, handle in enumerate(handles):
                handle.submit(full_job(
                    ArraySource(arrays[index]), epoch=1, cut_tick=5,
                    backup_index=None, is_full_dump=True,
                ))
                assert handle.wait_idle(timeout=10.0)
            # Round 2: all three queue behind a parked worker so they flush
            # as one coalesced batch; the middle store dies mid-write.
            blocker = BlockingSource(make_objects(9))
            blocker_handle.submit(full_job(
                blocker, epoch=1, cut_tick=6, backup_index=None,
                is_full_dump=True,
            ))
            assert blocker.entered.wait(timeout=10.0)

            def explode():
                raise StorageError("injected mid-gathered-write fault")

            stores[1].write_fault_hook = explode
            fresh = [make_objects(10 + index) for index in range(3)]
            for index, handle in enumerate(handles):
                handle.submit(full_job(
                    ArraySource(fresh[index]), epoch=2, cut_tick=11,
                    backup_index=None, is_full_dump=True,
                ))
            blocker.release.set()
            for handle in handles:
                assert handle.wait_idle(timeout=10.0, check=False)
            stats = pool.stats()
            assert stats.batch_size_histogram.get(3) == 1
            # The faulted shard: poisoned handle, epoch 1 still restorable.
            assert isinstance(handles[1].error, StorageError)
            image, epoch, tick = stores[1].restore_image()
            assert (epoch, tick) == (1, 5)
            assert image == arrays[1].tobytes()
            # Its batch-mates committed epoch 2 intact.
            for index in (0, 2):
                handles[index].check()
                image, epoch, tick = stores[index].restore_image()
                assert (epoch, tick) == (2, 11)
                assert image == fresh[index].tobytes()
            handles[1].kill()
            blocker_store.close()
            for store in stores:
                store.close()
