"""Tests for the telemetry snapshot dataclasses and assembly."""

from repro.engine.writer_pool import PoolStats
from repro.obs.metrics import (
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from repro.obs.telemetry import (
    SHARD_METRICS_LAYOUT,
    SHARD_METRICS_SLOT,
    FleetTelemetry,
    PoolTelemetry,
    ShardTelemetry,
    assemble_fleet_telemetry,
    recovery_counters,
    shard_metrics_slot_spec,
)


def make_shard(index, **overrides):
    base = dict(
        index=index, alive=True, ticks_run=10, tick_p50_us=100.0,
        tick_p99_us=400.0, tick_mean_us=150.0, commands_drained=5,
        staging_us=30, cut_lag_ticks=1, checkpoint_age_ticks=2,
        bytes_written=4096, ring_pending_bytes=0,
        ring_capacity_bytes=65536, ring_high_water_bytes=80,
    )
    base.update(overrides)
    return ShardTelemetry(**base)


class TestShardSchema:
    def test_slot_spec_is_one_row(self):
        name, shape, _ = shard_metrics_slot_spec()
        assert name == SHARD_METRICS_SLOT
        assert shape == (1, SHARD_METRICS_LAYOUT.num_fields)

    def test_layout_has_the_published_fields(self):
        names = [spec.name for spec in SHARD_METRICS_LAYOUT.specs]
        assert names == ["tick_us", "commands_drained", "staging_us",
                         "cut_lag_ticks", "ring_high_water_bytes"]


class TestPoolTelemetry:
    def test_from_stats_copies_every_field(self):
        stats = PoolStats(
            jobs_submitted=9, jobs_completed=8, jobs_abandoned=1,
            bytes_written=1 << 20, busy_seconds=0.25, batches_flushed=4,
            jobs_batched=8, queue_depth=2, max_queue_depth=5,
            coalesced_jobs=7, chunked_jobs=1, max_checkpoint_age_ticks=6,
        )
        pool = PoolTelemetry.from_stats(stats, num_workers=3)
        assert pool.num_workers == 3
        assert pool.jobs_submitted == 9
        assert pool.jobs_completed == 8
        assert pool.queue_depth == 2
        assert pool.max_queue_depth == 5
        assert pool.mean_batch_size == stats.mean_batch_size
        assert pool.max_checkpoint_age_ticks == 6


class TestAssembly:
    def test_merges_histograms_and_maxes(self):
        reset_global_registry()
        registry = MetricsRegistry(SHARD_METRICS_LAYOUT, rows=2)
        registry.row(0).histogram("tick_us").observe(100)
        registry.row(1).histogram("tick_us").observe(10_000)
        shards = [
            make_shard(0, checkpoint_age_ticks=2, ring_high_water_bytes=10),
            make_shard(1, checkpoint_age_ticks=7, ring_high_water_bytes=99),
        ]
        snapshot = assemble_fleet_telemetry(
            "thread", shards,
            [registry.row(i).histogram("tick_us").snapshot()
             for i in range(2)],
        )
        assert snapshot.num_shards == 2
        assert snapshot.max_checkpoint_age_ticks == 7
        assert snapshot.ring_high_water_bytes == 99
        # One 100us sample, one 10ms sample: the p99 sits in the top bucket.
        assert snapshot.tick_p99_us > snapshot.tick_p50_us
        assert snapshot.tick_mean_us > 0

    def test_empty_fleet_is_all_zeroes(self):
        reset_global_registry()
        snapshot = assemble_fleet_telemetry("thread", [], [])
        assert snapshot.tick_p99_us == 0.0
        assert snapshot.max_checkpoint_age_ticks == 0

    def test_recovery_counters_flow_through(self):
        reset_global_registry()
        global_registry().counter("recoveries_completed").inc(2)
        global_registry().counter("recovery_replay_ticks").inc(40)
        snapshot = assemble_fleet_telemetry("thread", [], [])
        assert snapshot.recovery["recoveries_completed"] == 2
        assert snapshot.recovery["recovery_replay_ticks"] == 40
        assert recovery_counters()["recovery_stalls"] == 0


class TestSerialization:
    def test_json_round_trip(self):
        reset_global_registry()
        original = assemble_fleet_telemetry(
            "process", [make_shard(0), make_shard(1, alive=False)], [],
            pool=PoolTelemetry.from_stats(PoolStats(jobs_submitted=3), 2),
            gateway={"sessions": 4, "commands_applied": 12},
        )
        restored = FleetTelemetry.from_json(original.to_json())
        assert restored == original
        assert restored.shards[1].alive is False
        assert restored.pool.num_workers == 2
        assert restored.gateway == {"sessions": 4, "commands_applied": 12}

    def test_round_trip_without_pool_or_gateway(self):
        reset_global_registry()
        original = assemble_fleet_telemetry("thread", [make_shard(0)], [])
        restored = FleetTelemetry.from_json(original.to_json())
        assert restored == original
        assert restored.pool is None
        assert restored.gateway is None
