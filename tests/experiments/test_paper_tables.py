"""Tests for the Table 1-5 drivers."""

import pytest

from repro.config import PAPER_HARDWARE
from repro.experiments.common import QUICK_SCALE
from repro.experiments.paper_tables import (
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)


class TestTable1:
    def test_six_rows(self):
        result = run_table1(QUICK_SCALE)
        assert len(result.tables[0].rows) == 6

    def test_copy_on_update_cell(self):
        result = run_table1(QUICK_SCALE)
        assert result.raw["copy-on-update"] == {
            "eager": False, "dirty_only": True, "layout": "double-backup",
        }


class TestTable2:
    def test_matches_paper_text(self):
        result = run_table2(QUICK_SCALE)
        raw = result.raw
        assert raw["naive-snapshot"]["Copy-To-Memory"] == "All objects"
        assert raw["dribble"]["Handle-Update"] == "First touched, all"
        assert raw["copy-on-update"]["Write-Objects-To-Stable-Storage"] == (
            "Dirty objects, double backup"
        )
        assert raw["partial-redo"]["Write-Copies-To-Stable-Storage"] == (
            "Dirty objects, log"
        )


class TestTable3:
    def test_paper_settings_rendered(self):
        result = run_table3(QUICK_SCALE)
        text = result.render()
        assert "30 Hz" in text
        assert "512 bytes" in text
        assert "2.20 GB/s" in text
        assert "60.00 MB/s" in text
        assert "145.0 ns" in text

    def test_with_measured_column(self):
        result = run_table3(QUICK_SCALE, measured=PAPER_HARDWARE)
        assert "this host" in result.tables[0].columns


class TestTable4:
    def test_sweeps_rendered(self):
        result = run_table4(QUICK_SCALE)
        text = result.render()
        assert "10,000,000" in text
        assert "256,000" in text
        assert "0.99" in text


class TestTable5:
    def test_update_rate_near_paper(self):
        result = run_table5(QUICK_SCALE.with_overrides(num_ticks=40))
        measured = result.raw["avg_updates_per_tick"]
        assert measured == pytest.approx(35_590, rel=0.06)

    def test_render_includes_paper_column(self):
        result = run_table5(QUICK_SCALE.with_overrides(num_ticks=20))
        assert "400,128" in result.render()
