"""Tests for cross-shard 2PC transfers: atomicity under every crash point."""

import pytest

from repro.errors import StorageError
from repro.persistence.server import OP_DELETE_ITEM, PersistenceServer
from repro.persistence.store import TransactionError
from repro.persistence.twophase import CrossShardCoordinator


@pytest.fixture
def world(tmp_path):
    """Two shards with seeded economies plus a coordinator."""
    source = PersistenceServer(tmp_path / "shard-a")
    target = PersistenceServer(tmp_path / "shard-b")
    coordinator = CrossShardCoordinator(tmp_path / "coordinator")
    alice = source.create_character("alice", gold=100)
    bob = target.create_character("bob", gold=100)
    sword = source.grant_item(alice, "sword")
    yield tmp_path, source, target, coordinator, alice, bob, sword
    source.close()
    target.close()
    coordinator.close()


def count_sword_copies(source, target):
    """How many shards hold a 'sword' item (must always be exactly one)."""
    count = 0
    for server in (source, target):
        count += sum(
            1 for item in server.store.items.values() if item.kind == "sword"
        )
    return count


class TestHappyPath:
    def test_transfer_moves_the_item(self, world):
        _path, source, target, coordinator, _alice, bob, sword = world
        coordinator.transfer_item(source, target, sword, new_owner_id=bob)
        assert sword not in source.store.items
        owned = target.store.items_of(bob)
        assert [item.kind for item in owned] == ["sword"]
        assert count_sword_copies(source, target) == 1

    def test_no_in_doubt_left_behind(self, world):
        _path, source, target, coordinator, _alice, bob, sword = world
        coordinator.transfer_item(source, target, sword, new_owner_id=bob)
        assert not source.in_doubt_transactions()
        assert not target.in_doubt_transactions()

    def test_global_ids_are_unique(self, world):
        _path, source, target, coordinator, alice, bob, sword = world
        first = coordinator.transfer_item(source, target, sword, bob)
        shield = source.grant_item(alice, "shield")
        second = coordinator.transfer_item(source, target, shield, bob)
        assert first != second


class TestVoteNo:
    def test_unknown_item_aborts_cleanly(self, world):
        _path, source, target, coordinator, _alice, bob, _sword = world
        with pytest.raises(TransactionError):
            coordinator.transfer_item(source, target, 999, new_owner_id=bob)
        assert not source.in_doubt_transactions()
        assert not target.in_doubt_transactions()

    def test_unknown_target_owner_aborts_and_releases_source(self, world):
        _path, source, target, coordinator, alice, _bob, sword = world
        with pytest.raises(TransactionError):
            coordinator.transfer_item(source, target, sword, new_owner_id=777)
        # The sword stays with alice and is tradeable again.
        assert source.store.items[sword].owner_id == alice
        assert not source.in_doubt_transactions()
        carol = target.create_character("carol", gold=0)
        coordinator.transfer_item(source, target, sword, new_owner_id=carol)
        assert count_sword_copies(source, target) == 1


class TestLocking:
    def test_prepared_entities_block_local_transactions(self, world):
        _path, source, target, _coordinator, alice, bob, sword = world
        assert source.prepare_remote("gid-1", [(OP_DELETE_ITEM, sword)])
        # The sword is pinned: a local trade touching it must fail...
        dave = source.create_character("dave", gold=500)
        with pytest.raises(TransactionError):
            source.trade_item(sword, alice, dave, 10)
        # ...until the decision arrives.
        source.resolve_remote("gid-1", False)
        source.trade_item(sword, alice, dave, 10)

    def test_conflicting_prepare_votes_no(self, world):
        _path, source, _target, _coordinator, _alice, _bob, sword = world
        assert source.prepare_remote("gid-1", [(OP_DELETE_ITEM, sword)])
        assert not source.prepare_remote("gid-2", [(OP_DELETE_ITEM, sword)])

    def test_duplicate_prepare_rejected(self, world):
        _path, source, _target, _coordinator, _alice, _bob, sword = world
        assert source.prepare_remote("gid-1", [(OP_DELETE_ITEM, sword)])
        with pytest.raises(TransactionError):
            source.prepare_remote("gid-1", [(OP_DELETE_ITEM, sword)])

    def test_resolve_is_idempotent(self, world):
        _path, source, _target, _coordinator, _alice, _bob, sword = world
        source.prepare_remote("gid-1", [(OP_DELETE_ITEM, sword)])
        assert source.resolve_remote("gid-1", True)
        assert not source.resolve_remote("gid-1", True)
        assert not source.resolve_remote("never-prepared", True)


class TestCrashMatrix:
    """The item exists on exactly one shard at every recoverable point."""

    def _drive_until(self, tmp_path, crash_point):
        """Run the protocol by hand, crashing everything at ``crash_point``.

        Points: 0 = after source prepare; 1 = after both prepares;
        2 = after the coordinator's commit decision; 3 = after source
        resolved; 4 = fully done.
        """
        source = PersistenceServer(tmp_path / "a")
        target = PersistenceServer(tmp_path / "b")
        coordinator = CrossShardCoordinator(tmp_path / "c")
        alice = source.create_character("alice", gold=0)
        bob = target.create_character("bob", gold=0)
        sword = source.grant_item(alice, "sword")
        target_item_id = target.store.next_item_id
        gid = "xfer-1"

        steps = [
            lambda: source.prepare_remote(gid, [(OP_DELETE_ITEM, sword)]),
            lambda: target.prepare_remote(
                gid, [("create_item", target_item_id, "sword", bob)]
            ),
            lambda: coordinator._log_decision(gid, True),
            lambda: source.resolve_remote(gid, True),
            lambda: target.resolve_remote(gid, True),
        ]
        for step in steps[: crash_point + 1]:
            assert step() is not False
        source.crash()
        target.crash()
        coordinator.crash()
        return sword

    @pytest.mark.parametrize("crash_point", [0, 1, 2, 3, 4])
    def test_exactly_one_sword_after_recovery(self, tmp_path, crash_point):
        self._drive_until(tmp_path, crash_point)

        source = PersistenceServer.recover(tmp_path / "a")
        target = PersistenceServer.recover(tmp_path / "b")
        coordinator = CrossShardCoordinator.recover(tmp_path / "c")
        coordinator.resolve_in_doubt([source, target])

        assert count_sword_copies(source, target) == 1
        assert not source.in_doubt_transactions()
        assert not target.in_doubt_transactions()
        # Decisions logged (commit) take effect; undediced prepares abort.
        if crash_point >= 2:
            swords_at_target = [
                item for item in target.store.items.values()
                if item.kind == "sword"
            ]
            assert len(swords_at_target) == 1, "commit decision must win"
        else:
            assert any(
                item.kind == "sword" for item in source.store.items.values()
            ), "presumed abort keeps the item at the source"
        for server in (source, target):
            server.close()
        coordinator.close()

    def test_recovery_is_stable_across_repeated_resolution(self, tmp_path):
        self._drive_until(tmp_path, crash_point=2)
        for _round in range(3):
            source = PersistenceServer.recover(tmp_path / "a")
            target = PersistenceServer.recover(tmp_path / "b")
            coordinator = CrossShardCoordinator.recover(tmp_path / "c")
            coordinator.resolve_in_doubt([source, target])
            assert count_sword_copies(source, target) == 1
            source.crash()
            target.crash()
            coordinator.crash()

    def test_coordinator_crash_before_decision_presumes_abort(self, tmp_path):
        self._drive_until(tmp_path, crash_point=1)
        source = PersistenceServer.recover(tmp_path / "a")
        target = PersistenceServer.recover(tmp_path / "b")
        coordinator = CrossShardCoordinator.recover(tmp_path / "c")
        resolved = coordinator.resolve_in_doubt([source, target])
        assert resolved == 2
        assert any(
            item.kind == "sword" for item in source.store.items.values()
        )
        assert not any(
            item.kind == "sword" for item in target.store.items.values()
        )
        source.close()
        target.close()
        coordinator.close()


class TestCoordinatorLifecycle:
    def test_crashed_coordinator_rejects_transfers(self, world):
        _path, source, target, coordinator, _alice, bob, sword = world
        coordinator.crash()
        with pytest.raises(StorageError):
            coordinator.transfer_item(source, target, sword, bob)

    def test_sequence_continues_after_recovery(self, tmp_path, world):
        path, source, target, coordinator, alice, bob, sword = world
        first = coordinator.transfer_item(source, target, sword, bob)
        coordinator.crash()
        recovered = CrossShardCoordinator.recover(path / "coordinator")
        shield = source.grant_item(alice, "shield")
        second = recovered.transfer_item(source, target, shield, bob)
        assert second != first
        recovered.close()
