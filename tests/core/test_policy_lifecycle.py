"""Tests for the shared policy lifecycle (begin/finish/handle discipline)."""

import numpy as np
import pytest

from repro.core.registry import ALGORITHM_KEYS, make_policy
from repro.errors import ConfigurationError


@pytest.fixture(params=ALGORITHM_KEYS)
def policy(request):
    return make_policy(request.param, num_objects=32)


class TestLifecycle:
    def test_begin_twice_rejected(self, policy):
        policy.begin_checkpoint()
        with pytest.raises(ConfigurationError):
            policy.begin_checkpoint()

    def test_finish_without_begin_rejected(self, policy):
        with pytest.raises(ConfigurationError):
            policy.finish_checkpoint()

    def test_begin_finish_cycles(self, policy):
        for index in range(5):
            plan = policy.begin_checkpoint()
            assert plan.checkpoint_index == index
            assert policy.checkpoint_active
            policy.finish_checkpoint()
            assert not policy.checkpoint_active
        assert policy.checkpoints_started == 5

    def test_layout_consistent_with_class(self, policy):
        plan = policy.begin_checkpoint()
        assert plan.layout is type(policy).layout

    def test_update_count_smaller_than_uniques_rejected(self, policy):
        with pytest.raises(ConfigurationError):
            policy.handle_updates(np.array([1, 2, 3]), 2)

    def test_rejects_bad_construction(self):
        for key in ALGORITHM_KEYS:
            with pytest.raises(ConfigurationError):
                make_policy(key, num_objects=0)
            with pytest.raises(ConfigurationError):
                make_policy(key, num_objects=4, full_dump_period=0)

    def test_repr_mentions_progress(self, policy):
        policy.begin_checkpoint()
        assert "checkpoints=1" in repr(policy)


class TestFirstCheckpointWritesEverything:
    """Nothing is on disk initially, so checkpoint 0 must cover the state."""

    def test_first_write_set_is_full(self, policy):
        plan = policy.begin_checkpoint()
        assert plan.write_count(32) == 32
