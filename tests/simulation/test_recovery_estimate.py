"""Tests for the recovery-time estimator."""

import pytest

from repro.config import PAPER_GEOMETRY, PAPER_HARDWARE
from repro.core.algorithms import (
    CopyOnUpdate,
    CopyOnUpdatePartialRedo,
    DribbleAndCopyOnUpdate,
    NaiveSnapshot,
    PartialRedo,
)
from repro.core.plan import DiskLayout
from repro.simulation.costmodel import CostModel
from repro.simulation.recovery import (
    RecoveryEstimate,
    estimate_recovery,
    reads_log_tail,
)
from repro.simulation.results import CheckpointRecord


@pytest.fixture
def cost_model():
    return CostModel(PAPER_HARDWARE, PAPER_GEOMETRY)


def record(duration, write_count, is_full_dump=False):
    return CheckpointRecord(
        index=0, start_tick=0, start_time=0.0, sync_pause=0.0,
        write_count=write_count, async_duration=duration,
        layout=DiskLayout.LOG, is_full_dump=is_full_dump, finished_tick=1,
    )


class TestClassification:
    def test_only_partial_redo_pair_reads_log_tail(self):
        assert reads_log_tail(PartialRedo)
        assert reads_log_tail(CopyOnUpdatePartialRedo)
        assert not reads_log_tail(NaiveSnapshot)
        assert not reads_log_tail(CopyOnUpdate)
        # Dribble writes full images to its log: restore reads one image.
        assert not reads_log_tail(DribbleAndCopyOnUpdate)


class TestEstimates:
    def test_full_image_methods(self, cost_model):
        estimate = estimate_recovery(
            CopyOnUpdate, [record(0.6, 1000)], cost_model, 9
        )
        assert estimate.restore_time == pytest.approx(
            cost_model.restore_time_full_image()
        )
        assert estimate.replay_time == pytest.approx(0.6)
        assert estimate.total == pytest.approx(
            estimate.restore_time + estimate.replay_time
        )

    def test_replay_is_mean_duration(self, cost_model):
        estimate = estimate_recovery(
            NaiveSnapshot, [record(0.4, 10), record(0.8, 10)], cost_model, 9
        )
        assert estimate.replay_time == pytest.approx(0.6)

    def test_log_methods_use_partial_k_only(self, cost_model):
        records = [
            record(0.1, 1_000),
            record(0.7, PAPER_GEOMETRY.num_objects, is_full_dump=True),
            record(0.1, 3_000),
        ]
        estimate = estimate_recovery(PartialRedo, records, cost_model, 9)
        assert estimate.restore_time == pytest.approx(
            cost_model.restore_time_log(2_000, 9)
        )

    def test_log_methods_all_full_dumps(self, cost_model):
        records = [record(0.7, PAPER_GEOMETRY.num_objects, is_full_dump=True)]
        estimate = estimate_recovery(PartialRedo, records, cost_model, 1)
        assert estimate.restore_time == pytest.approx(
            cost_model.restore_time_full_image()
        )

    def test_no_checkpoints(self, cost_model):
        estimate = estimate_recovery(NaiveSnapshot, [], cost_model, 9)
        assert estimate.replay_time == 0.0
        assert estimate.restore_time > 0.0

    def test_estimate_total(self):
        estimate = RecoveryEstimate(restore_time=2.0, replay_time=0.5)
        assert estimate.total == 2.5
