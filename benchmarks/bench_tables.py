"""Regenerate Tables 1-5 of the paper."""

from conftest import run_once

from repro.experiments import paper_tables


def test_table1(benchmark, bench_scale, report_sink):
    """Table 1: the checkpointing design space."""
    result = run_once(benchmark, paper_tables.run_table1, bench_scale)
    report_sink("table1", result.render())
    assert len(result.tables[0].rows) == 6


def test_table2(benchmark, bench_scale, report_sink):
    """Table 2: subroutine implementations per algorithm."""
    result = run_once(benchmark, paper_tables.run_table2, bench_scale)
    report_sink("table2", result.render())
    assert result.raw["copy-on-update"]["Handle-Update"] == (
        "First touched, dirty"
    )


def test_table3(benchmark, bench_scale, report_sink):
    """Table 3: cost-estimation parameters."""
    result = run_once(benchmark, paper_tables.run_table3, bench_scale)
    report_sink("table3", result.render())
    assert "Bdisk" in result.render()


def test_table4(benchmark, bench_scale, report_sink):
    """Table 4: Zipfian trace parameters."""
    result = run_once(benchmark, paper_tables.run_table4, bench_scale)
    report_sink("table4", result.render())
    assert "64,000" in result.render()


def test_table5(benchmark, bench_scale, report_sink):
    """Table 5: game-trace characteristics (paper: 35,590 updates/tick)."""
    result = run_once(benchmark, paper_tables.run_table5, bench_scale)
    report_sink("table5", result.render())
    measured = result.raw["avg_updates_per_tick"]
    assert abs(measured - 35_590) / 35_590 < 0.08
