"""Figure 4: effect of update skew at 64,000 updates per tick.

"The primary effect of increasing the skew is to decrease the number of dirty
objects."  Naive-Snapshot is unaffected; copy-on-update methods benefit most
(fewer locks and old-value copies); the Partial-Redo pair's checkpoint and
recovery times shrink with the dirty set but stay far above the rest.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.analysis.ascii_chart import line_chart
from repro.analysis.tables import TextTable
from repro.config import PAPER_CONFIG, SimulationConfig
from repro.core.registry import ALGORITHM_KEYS, algorithm_class
from repro.experiments.common import (
    DEFAULT_UPDATES_PER_TICK,
    ExperimentScale,
    FigureResult,
    FULL_SCALE,
    format_seconds,
)
from repro.simulation.sweep import SweepEngine, SweepTask
from repro.workloads.spec import TraceSpec


def sweep_results(
    scale: ExperimentScale,
    config: SimulationConfig = PAPER_CONFIG,
    updates_per_tick: int = DEFAULT_UPDATES_PER_TICK,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> Dict[float, List]:
    """Run all six algorithms at every skew; returns skew -> results."""
    config = replace(config, warmup_ticks=scale.warmup_ticks)
    engine = engine if engine is not None else SweepEngine(jobs=1)
    tasks = [
        SweepTask(
            key=skew,
            config=config,
            spec=TraceSpec.create(
                "zipf",
                config.geometry,
                updates_per_tick=updates_per_tick,
                skew=skew,
                num_ticks=scale.num_ticks,
                seed=seed,
            ),
        )
        for skew in scale.skew_sweep
    ]
    return engine.run(tasks)


def _panel_table(title: str, results: Dict[float, List], metric) -> TextTable:
    skews = sorted(results)
    table = TextTable(title, ["algorithm"] + [f"{skew:g}" for skew in skews])
    for index, key in enumerate(ALGORITHM_KEYS):
        row = [algorithm_class(key).name]
        for skew in skews:
            row.append(format_seconds(metric(results[skew][index])))
        table.add_row(row)
    return table


def _panel_chart(title: str, results: Dict[float, List], metric) -> str:
    skews = sorted(results)
    series = {}
    for index, key in enumerate(ALGORITHM_KEYS):
        series[algorithm_class(key).name] = [
            max(metric(results[skew][index]), 1e-7) for skew in skews
        ]
    return line_chart(skews, series, title=title, y_label="sec")


def run(
    scale: ExperimentScale = FULL_SCALE,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> FigureResult:
    """Reproduce Figure 4 (all three panels)."""
    engine = engine if engine is not None else SweepEngine(jobs=1)
    results = sweep_results(scale, seed=seed, engine=engine)

    overhead_table = _panel_table(
        "Figure 4(a): skew vs avg overhead time", results,
        lambda r: r.avg_overhead,
    )
    overhead_table.add_note(
        "paper: Naive-Snapshot lowest and flat; other methods within 2.5x; "
        "copy-on-update methods benefit most from skew"
    )
    checkpoint_table = _panel_table(
        "Figure 4(b): skew vs avg time to checkpoint", results,
        lambda r: r.avg_checkpoint_time,
    )
    checkpoint_table.add_note(
        "paper: most methods similar; Partial-Redo pair's checkpoint time "
        "decreases with skew (fewer dirty objects in the log)"
    )
    recovery_table = _panel_table(
        "Figure 4(c): skew vs estimated recovery time", results,
        lambda r: r.recovery_time,
    )
    recovery_table.add_note(
        "paper: Partial-Redo pair decreases from ~7.3 s to ~6.3 s; all other "
        "methods similar and far lower"
    )

    figure = FigureResult(
        experiment_id="fig4",
        description=(
            "Overhead, checkpoint, and recovery times when varying the skew "
            "(64,000 updates per tick)"
        ),
        tables=[overhead_table, checkpoint_table, recovery_table],
        charts=[
            _panel_chart("Figure 4(a) overhead [s]", results,
                         lambda r: r.avg_overhead),
            _panel_chart("Figure 4(c) recovery [s]", results,
                         lambda r: r.recovery_time),
        ],
    )
    figure.raw = {
        skew: {r.algorithm_key: r.summary() for r in runs}
        for skew, runs in results.items()
    }
    figure.perf = engine.stats.as_dict()
    return figure
