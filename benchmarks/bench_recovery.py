"""Benchmarks of the real durable engine: measured crash recovery."""

from conftest import run_once

from repro.experiments import engine_recovery


def test_engine_recovery(benchmark, bench_scale, report_sink):
    """Crash + recover the real engine under all six algorithms."""
    result = run_once(benchmark, engine_recovery.run, bench_scale)
    report_sink("engine_recovery", result.render())
    raw = result.raw
    for key, metrics in raw.items():
        assert metrics["exact"], f"{key} did not recover bit-exactly"
        assert metrics["recovery_s"] > 0
    # The log-organized methods really do scan their log at restore; the
    # double-backup pair of the paper's recommendation reads one image.
    assert raw["copy-on-update"]["restore_s"] > 0
