"""Tests for the virtual-time disk-write scheduler."""

import pytest

from repro.errors import SimulationError
from repro.simulation.disk import DiskWriteScheduler, WriteJob


class TestWriteJob:
    def test_finish_time(self):
        job = WriteJob(start_time=1.0, duration=0.5)
        assert job.finish_time == 1.5

    def test_finished(self):
        job = WriteJob(start_time=0.0, duration=1.0)
        assert not job.finished(0.5)
        assert job.finished(1.0)
        assert job.finished(2.0)

    def test_progress(self):
        job = WriteJob(start_time=0.0, duration=2.0)
        assert job.progress(-1.0) == 0.0
        assert job.progress(1.0) == 0.5
        assert job.progress(5.0) == 1.0

    def test_zero_duration_completes_immediately(self):
        job = WriteJob(start_time=3.0, duration=0.0)
        assert job.finished(3.0)
        assert job.progress(3.0) == 1.0

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            WriteJob(start_time=0.0, duration=-1.0)


class TestScheduler:
    def test_initially_finished(self):
        scheduler = DiskWriteScheduler()
        assert scheduler.finished(0.0)
        assert scheduler.active_job is None

    def test_begin_and_retire(self):
        scheduler = DiskWriteScheduler()
        scheduler.begin(0.0, 1.0)
        assert not scheduler.finished(0.5)
        assert scheduler.finished(1.0)
        job = scheduler.retire(1.0)
        assert job.duration == 1.0
        assert scheduler.active_job is None

    def test_double_begin_rejected(self):
        scheduler = DiskWriteScheduler()
        scheduler.begin(0.0, 1.0)
        with pytest.raises(SimulationError):
            scheduler.begin(2.0, 1.0)

    def test_retire_too_early_rejected(self):
        scheduler = DiskWriteScheduler()
        scheduler.begin(0.0, 1.0)
        with pytest.raises(SimulationError):
            scheduler.retire(0.5)

    def test_retire_without_job_rejected(self):
        scheduler = DiskWriteScheduler()
        with pytest.raises(SimulationError):
            scheduler.retire(0.0)
