"""Tests for the logical action log."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.action_log import ActionLog, TickRecord


def rng_state(seed):
    return np.random.default_rng(seed).bit_generator.state


class TestAppendAndRead:
    def test_round_trip(self, tmp_path):
        with ActionLog(tmp_path) as log:
            log.append(TickRecord(tick=0, rng_state=rng_state(1)))
            log.append(TickRecord(tick=1, rng_state=rng_state(2), command_payload=b"x"))
            records = list(log.records())
        assert [r.tick for r in records] == [0, 1]
        assert records[1].command_payload == b"x"

    def test_rng_state_usable(self, tmp_path):
        with ActionLog(tmp_path) as log:
            log.append(TickRecord(tick=0, rng_state=rng_state(7)))
            record = next(log.records())
        restored = np.random.default_rng()
        restored.bit_generator.state = record.rng_state
        expected = np.random.default_rng(7)
        assert restored.random() == expected.random()

    def test_start_tick_filter(self, tmp_path):
        with ActionLog(tmp_path) as log:
            for tick in range(5):
                log.append(TickRecord(tick=tick, rng_state=rng_state(tick)))
            records = list(log.records(start_tick=3))
        assert [r.tick for r in records] == [3, 4]

    def test_last_tick(self, tmp_path):
        with ActionLog(tmp_path) as log:
            assert log.last_tick is None
            log.append(TickRecord(tick=0, rng_state=rng_state(0)))
            assert log.last_tick == 0

    def test_non_consecutive_rejected(self, tmp_path):
        with ActionLog(tmp_path) as log:
            log.append(TickRecord(tick=0, rng_state=rng_state(0)))
            with pytest.raises(StorageError):
                log.append(TickRecord(tick=2, rng_state=rng_state(0)))

    def test_negative_first_tick_rejected(self, tmp_path):
        with ActionLog(tmp_path) as log:
            with pytest.raises(StorageError):
                log.append(TickRecord(tick=-1, rng_state=rng_state(0)))


class TestFsyncPolicy:
    def test_legacy_sync_flag_maps_to_policy(self, tmp_path):
        assert ActionLog(tmp_path / "a").fsync_policy == "never"
        assert ActionLog(tmp_path / "b", sync=True).fsync_policy == "always"

    def test_explicit_policy_wins_over_sync_flag(self, tmp_path):
        log = ActionLog(tmp_path, sync=True, fsync_policy="never")
        assert log.fsync_policy == "never"

    def test_invalid_policy_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            ActionLog(tmp_path, fsync_policy="sometimes")

    @pytest.mark.parametrize("policy", ["never", "commit", "always"])
    def test_appends_fsync_per_policy(self, tmp_path, policy, monkeypatch):
        """Every append is a commit point, so commit == always for the log."""
        import repro.storage.action_log as module

        calls = []
        real_fsync = module.os.fsync
        monkeypatch.setattr(
            module.os, "fsync",
            lambda fd: (calls.append(fd), real_fsync(fd))[1],
        )
        with ActionLog(tmp_path, fsync_policy=policy) as log:
            log.append(TickRecord(tick=0, rng_state=rng_state(0)))
            log.append(TickRecord(tick=1, rng_state=rng_state(1)))
        expected = 0 if policy == "never" else 2
        assert len(calls) == expected


class TestDurability:
    def test_reopen_continues(self, tmp_path):
        with ActionLog(tmp_path) as log:
            log.append(TickRecord(tick=0, rng_state=rng_state(0)))
        with ActionLog(tmp_path) as log:
            assert log.last_tick == 0
            log.append(TickRecord(tick=1, rng_state=rng_state(1)))
            assert [r.tick for r in log.records()] == [0, 1]

    def test_torn_tail_dropped(self, tmp_path):
        with ActionLog(tmp_path) as log:
            log.append(TickRecord(tick=0, rng_state=rng_state(0)))
            log.append(TickRecord(tick=1, rng_state=rng_state(1)))
            path = log.path
        with open(path, "r+b") as handle:
            handle.seek(-7, 2)
            handle.truncate()
        with ActionLog(tmp_path) as log:
            assert [r.tick for r in log.records()] == [0]
            assert log.last_tick == 0
            # Appending continues from the surviving prefix.
            log.append(TickRecord(tick=1, rng_state=rng_state(9)))

    def test_truncate(self, tmp_path):
        with ActionLog(tmp_path) as log:
            log.append(TickRecord(tick=0, rng_state=rng_state(0)))
            log.truncate()
            assert log.last_tick is None
            assert list(log.records()) == []
