"""A fleet of MMO shards ticking concurrently, one writer thread each.

The paper's deployment unit is the shard: "the game world is partitioned
into mostly-independent areas" each served by its own game server (Section
1).  :class:`ShardFleet` runs ``N`` :class:`~repro.engine.shard.MMOShard`
instances against one root directory, each shard with its own durable state,
its own deterministic seed, and -- with ``async_writer=True`` -- its own
:class:`~repro.engine.writer.AsyncCheckpointWriter` thread, so a fleet of
``N`` shards runs up to ``2 N`` threads with checkpoint I/O overlapping game
ticks in every one of them.

The fleet is the unit the throughput benchmark drives
(``benchmarks/bench_engine.py``): :meth:`run_ticks` advances every shard by
the same number of ticks, either on one thread (``parallel=False``, the
deterministic baseline) or on a thread per shard, and reports aggregate
ticks/second.  Crash and recovery also operate fleet-wide, shard by shard.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from repro.engine.app import TickApplication
from repro.engine.server import ServerStats
from repro.engine.shard import MMOShard, ShardRecovery
from repro.errors import EngineError

#: Subdirectory name of shard ``i`` under the fleet root.
SHARD_DIRECTORY_FORMAT = "shard-{index:02d}"


def shard_directory(root: Union[str, os.PathLike], index: int) -> str:
    """Directory of shard ``index`` under the fleet root."""
    return os.path.join(os.fspath(root), SHARD_DIRECTORY_FORMAT.format(index=index))


@dataclass(frozen=True)
class FleetRunReport:
    """Aggregate outcome of one :meth:`ShardFleet.run_ticks` call."""

    num_shards: int
    ticks_per_shard: int
    wall_seconds: float
    #: Sum of ticks executed across all shards divided by wall time.
    ticks_per_second: float
    #: Each shard's lifetime stats, snapshotted after the run.
    shard_stats: List[ServerStats]


class ShardFleet:
    """Runs N shards of the same game concurrently under one root."""

    def __init__(
        self,
        app_factory: Callable[[int], TickApplication],
        directory: Union[str, os.PathLike],
        num_shards: int,
        algorithm: str = "copy-on-update",
        seed: int = 0,
        **shard_kwargs,
    ) -> None:
        if num_shards <= 0:
            raise EngineError(f"num_shards must be positive, got {num_shards}")
        self._directory = os.fspath(directory)
        self._num_shards = num_shards
        self._shards: List[MMOShard] = []
        try:
            for index in range(num_shards):
                self._shards.append(
                    MMOShard(
                        app_factory(index),
                        shard_directory(self._directory, index),
                        algorithm=algorithm,
                        seed=seed + index,
                        **shard_kwargs,
                    )
                )
        except BaseException:
            for shard in self._shards:
                shard.close()
            raise
        self._crashed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def directory(self) -> str:
        """Root directory holding one subdirectory per shard."""
        return self._directory

    @property
    def num_shards(self) -> int:
        """Number of shards in the fleet."""
        return self._num_shards

    @property
    def shards(self) -> List[MMOShard]:
        """The live shards, in index order."""
        return list(self._shards)

    # ------------------------------------------------------------------
    # Driving the fleet
    # ------------------------------------------------------------------

    def run_ticks(self, count: int, parallel: bool = True) -> FleetRunReport:
        """Advance every shard by ``count`` ticks.

        With ``parallel=True`` each shard runs on its own thread (the fleet's
        deployment shape); otherwise the shards run one after another on the
        calling thread.  The first shard failure is re-raised after all
        threads have stopped.
        """
        if count < 0:
            raise EngineError(f"count must be non-negative, got {count}")
        started = time.perf_counter()
        if parallel and self._num_shards > 1:
            errors: List[Optional[BaseException]] = [None] * self._num_shards

            def drive(index: int, shard: MMOShard) -> None:
                try:
                    shard.run_ticks(count)
                except BaseException as error:
                    errors[index] = error

            threads = [
                threading.Thread(
                    target=drive,
                    args=(index, shard),
                    name=f"repro-shard-{index:02d}",
                )
                for index, shard in enumerate(self._shards)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for error in errors:
                if error is not None:
                    raise error
        else:
            for shard in self._shards:
                shard.run_ticks(count)
        wall = time.perf_counter() - started
        total_ticks = count * self._num_shards
        return FleetRunReport(
            num_shards=self._num_shards,
            ticks_per_shard=count,
            wall_seconds=wall,
            ticks_per_second=total_ticks / wall if wall > 0 else 0.0,
            shard_stats=[shard.game.stats for shard in self._shards],
        )

    # ------------------------------------------------------------------
    # Failure and shutdown
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop every shard (writers abandoned, files closed)."""
        if self._crashed:
            raise EngineError("fleet has crashed; recover it instead")
        self._crashed = True
        for shard in self._shards:
            shard.crash()

    def close(self) -> None:
        """Orderly shutdown of every shard."""
        if not self._crashed:
            for shard in self._shards:
                shard.close()

    def __enter__(self) -> "ShardFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def recover(
        cls,
        app_factory: Callable[[int], TickApplication],
        directory: Union[str, os.PathLike],
        num_shards: int,
        seed: int = 0,
    ) -> List[ShardRecovery]:
        """Recover every shard of a crashed fleet, in index order."""
        return [
            MMOShard.recover(
                app_factory(index),
                shard_directory(directory, index),
                seed=seed + index,
            )
            for index in range(num_shards)
        ]
