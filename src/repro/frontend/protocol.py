"""Wire protocol of the gateway front door.

Clients speak length-prefixed binary frames over TCP: a little-endian
``u32`` frame length followed by a one-byte frame type and a fixed
``struct``-packed body.  The shapes mirror the shard-side command framing
(:mod:`repro.state.ring` uses the same u32-length-prefix idiom), so a
command's bytes flow client -> gateway -> shared ring -> logical log
without re-encoding.

Frame types
-----------

* ``HELLO`` (client) -- open a session; body is the utf-8 player name.
* ``WELCOME`` (server) -- session granted (or re-placed after its shard
  died): session id + the shard now serving it.
* ``COMMAND`` (client) -- one game command; the client stamps a per-session
  monotonically increasing ``seq`` so acks can be batched as ranges.
* ``APPLIED`` (server) -- a *contiguous* range of this session's command
  seqs was applied (and durably logged) by the given tick.  One frame acks
  a whole tick's worth of commands.
* ``REJECT`` (server) -- a typed rejection: backpressure (bounded queue
  full), rate limit (per-tick budget), shard down (commands lost to a
  crash; re-send after the new ``WELCOME``), or bad request.
* ``STATS`` (client) -- ask for the fleet telemetry snapshot; no body.
  Allowed before HELLO, so monitoring tools need no session.
* ``STATS_REPLY`` (server) -- the snapshot as a utf-8 JSON body (the
  :meth:`~repro.obs.telemetry.FleetTelemetry.as_dict` shape).

There is no goodbye frame -- closing the TCP connection closes the
session, exactly like a real game client dropping.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.errors import ReproError


class ProtocolError(ReproError):
    """A malformed or out-of-order gateway frame."""


#: Frame length prefix (little-endian u32, excluding itself).
FRAME_HEADER_BYTES = 4

#: Upper bound on one frame's body; a peer claiming more is malformed.
MAX_FRAME_BYTES = 1 << 16

# Frame types (u8).
T_HELLO = 1
T_WELCOME = 2
T_COMMAND = 3
T_APPLIED = 4
T_REJECT = 5
T_STATS = 6
T_STATS_REPLY = 7

# REJECT codes (u8).
REJECT_BACKPRESSURE = 1   # bounded command queue or ring is full
REJECT_RATE_LIMIT = 2     # session exceeded its per-tick command budget
REJECT_SHARD_DOWN = 3     # the serving shard crashed; command was lost
REJECT_BAD_REQUEST = 4    # malformed or out-of-order frame

_WELCOME = struct.Struct("<BIH")     # type, session_id, shard_index
_COMMAND = struct.Struct("<BI")      # type, seq (payload follows)
_APPLIED = struct.Struct("<BIIQ")    # type, first_seq, last_seq, tick
_REJECT = struct.Struct("<BBI")      # type, code, seq (message follows)


def frame(body: bytes) -> bytes:
    """Wrap a frame body in its length prefix."""
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} cap"
        )
    return len(body).to_bytes(FRAME_HEADER_BYTES, "little") + body


def encode_hello(player_name: str) -> bytes:
    """Client -> server: open a session."""
    if not player_name:
        raise ProtocolError("player_name must be non-empty")
    return frame(bytes([T_HELLO]) + player_name.encode("utf-8"))


def encode_welcome(session_id: int, shard_index: int) -> bytes:
    """Server -> client: session granted / re-placed onto ``shard_index``."""
    return frame(_WELCOME.pack(T_WELCOME, session_id, shard_index))


def encode_command(seq: int, payload: bytes) -> bytes:
    """Client -> server: one game command stamped with a session seq."""
    return frame(_COMMAND.pack(T_COMMAND, seq) + payload)


def encode_applied(first_seq: int, last_seq: int, tick: int) -> bytes:
    """Server -> client: seqs ``first..last`` applied by ``tick``."""
    return frame(_APPLIED.pack(T_APPLIED, first_seq, last_seq, tick))


def encode_reject(code: int, seq: int, message: str = "") -> bytes:
    """Server -> client: typed rejection of command ``seq`` (0 = session)."""
    return frame(_REJECT.pack(T_REJECT, code, seq)
                 + message.encode("utf-8"))


def encode_stats() -> bytes:
    """Client -> server: request the fleet telemetry snapshot."""
    return frame(bytes([T_STATS]))


def encode_stats_reply(payload: str) -> bytes:
    """Server -> client: the telemetry snapshot as utf-8 JSON."""
    return frame(bytes([T_STATS_REPLY]) + payload.encode("utf-8"))


def decode(body: bytes) -> Tuple:
    """Decode one frame body into a ``(kind, ...)`` tuple.

    Returns ``("hello", name)``, ``("welcome", session_id, shard_index)``,
    ``("command", seq, payload)``, ``("applied", first, last, tick)``,
    ``("reject", code, seq, message)``, ``("stats",)`` or
    ``("stats_reply", json_text)``.
    """
    if not body:
        raise ProtocolError("empty frame")
    kind = body[0]
    if kind == T_HELLO:
        try:
            name = body[1:].decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"bad HELLO name: {error}") from None
        return ("hello", name)
    if kind == T_WELCOME:
        if len(body) != _WELCOME.size:
            raise ProtocolError(f"bad WELCOME length {len(body)}")
        _, session_id, shard_index = _WELCOME.unpack(body)
        return ("welcome", session_id, shard_index)
    if kind == T_COMMAND:
        if len(body) < _COMMAND.size:
            raise ProtocolError(f"bad COMMAND length {len(body)}")
        _, seq = _COMMAND.unpack_from(body)
        return ("command", seq, body[_COMMAND.size:])
    if kind == T_APPLIED:
        if len(body) != _APPLIED.size:
            raise ProtocolError(f"bad APPLIED length {len(body)}")
        _, first, last, tick = _APPLIED.unpack(body)
        return ("applied", first, last, tick)
    if kind == T_REJECT:
        if len(body) < _REJECT.size:
            raise ProtocolError(f"bad REJECT length {len(body)}")
        _, code, seq = _REJECT.unpack_from(body)
        try:
            message = body[_REJECT.size:].decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"bad REJECT message: {error}") from None
        return ("reject", code, seq, message)
    if kind == T_STATS:
        if len(body) != 1:
            raise ProtocolError(f"bad STATS length {len(body)}")
        return ("stats",)
    if kind == T_STATS_REPLY:
        try:
            payload = body[1:].decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"bad STATS_REPLY body: {error}") from None
        return ("stats_reply", payload)
    raise ProtocolError(f"unknown frame type {kind}")


async def read_frame(reader) -> Optional[Tuple]:
    """Read and decode one frame from an ``asyncio.StreamReader``.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`ProtocolError` on a truncated or malformed frame.
    """
    import asyncio

    try:
        header = await reader.readexactly(FRAME_HEADER_BYTES)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection died mid frame header") from None
    length = int.from_bytes(header, "little")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection died mid frame body") from None
    return decode(body)
