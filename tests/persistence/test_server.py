"""Tests for the transactional persistence server (ACID + crash recovery)."""

import pytest

from repro.errors import EngineError
from repro.persistence.server import PersistenceServer
from repro.persistence.store import TransactionError
from repro.persistence.wal import WriteAheadLog


@pytest.fixture
def server(tmp_path):
    with PersistenceServer(tmp_path) as opened:
        yield opened


def seed_world(server):
    alice = server.create_character("alice", gold=100)
    bob = server.create_character("bob", gold=50)
    sword = server.grant_item(alice, "sword")
    return alice, bob, sword


class TestTransactions:
    def test_trade_moves_item_and_gold(self, server):
        alice, bob, sword = seed_world(server)
        result = server.trade_item(sword, seller_id=alice, buyer_id=bob,
                                   price=40)
        assert result.price == 40
        assert server.store.items[sword].owner_id == bob
        assert server.store.characters[alice].gold == 140
        assert server.store.characters[bob].gold == 10

    def test_failed_trade_changes_nothing(self, server):
        """Atomicity: the buyer cannot afford it -> no partial effects."""
        alice, bob, sword = seed_world(server)
        with pytest.raises(TransactionError):
            server.trade_item(sword, seller_id=alice, buyer_id=bob, price=51)
        assert server.store.items[sword].owner_id == alice
        assert server.store.characters[alice].gold == 100
        assert server.store.characters[bob].gold == 50

    def test_failed_trade_not_logged(self, server, tmp_path):
        alice, bob, sword = seed_world(server)
        before = server.last_transaction_id
        with pytest.raises(TransactionError):
            server.trade_item(sword, seller_id=bob, buyer_id=alice, price=1)
        assert server.last_transaction_id == before

    def test_transaction_ids_increase(self, server):
        alice, bob, sword = seed_world(server)
        first = server.trade_item(sword, alice, bob, 10).transaction_id
        second = server.trade_item(sword, bob, alice, 10).transaction_id
        assert second == first + 1

    def test_deposit_and_destroy(self, server):
        alice, _bob, sword = seed_world(server)
        server.deposit_gold(alice, 7)
        assert server.store.characters[alice].gold == 107
        server.destroy_item(sword)
        assert sword not in server.store.items

    def test_deposit_validation(self, server):
        alice, *_ = seed_world(server)
        with pytest.raises(TransactionError):
            server.deposit_gold(alice, 0)
        with pytest.raises(TransactionError):
            server.deposit_gold(999, 5)

    def test_gold_conservation_across_trades(self, server):
        alice, bob, sword = seed_world(server)
        before = server.store.total_gold()
        server.trade_item(sword, alice, bob, 25)
        server.trade_item(sword, bob, alice, 25)
        assert server.store.total_gold() == before


class TestCrashRecovery:
    def test_committed_trades_survive(self, tmp_path):
        server = PersistenceServer(tmp_path)
        alice, bob, sword = seed_world(server)
        server.trade_item(sword, alice, bob, 30)
        from repro.persistence.store import ItemStore

        expected = ItemStore.from_snapshot_bytes(server.store.snapshot_bytes())
        server.crash()

        recovered = PersistenceServer.recover(tmp_path)
        assert recovered.store.equals(expected)
        assert recovered.store.items[sword].owner_id == bob
        recovered.close()

    def test_recovery_after_clean_close(self, tmp_path):
        server = PersistenceServer(tmp_path)
        alice, bob, sword = seed_world(server)
        server.close()
        recovered = PersistenceServer(tmp_path)
        assert recovered.store.items[sword].owner_id == alice
        # And it can keep committing.
        recovered.trade_item(sword, alice, bob, 10)
        recovered.close()

    def test_crashed_server_rejects_commits(self, tmp_path):
        server = PersistenceServer(tmp_path)
        seed_world(server)
        server.crash()
        with pytest.raises(EngineError):
            server.create_character("late", 0)

    def test_torn_wal_tail_loses_only_last_transaction(self, tmp_path):
        server = PersistenceServer(tmp_path)
        alice, bob, sword = seed_world(server)
        server.trade_item(sword, alice, bob, 30)   # survives
        server.trade_item(sword, bob, alice, 30)   # will be torn
        server.crash()
        wal_path = tmp_path / WriteAheadLog.FILE_NAME
        with open(wal_path, "r+b") as handle:
            handle.seek(-5, 2)
            handle.truncate()
        recovered = PersistenceServer.recover(tmp_path)
        assert recovered.store.items[sword].owner_id == bob
        recovered.close()

    def test_snapshots_bound_redo(self, tmp_path):
        server = PersistenceServer(tmp_path, snapshot_every=5)
        alice = server.create_character("alice", gold=1_000)
        bob = server.create_character("bob", gold=1_000)
        for _ in range(20):
            server.deposit_gold(alice, 1)
        expected_gold = server.store.characters[alice].gold
        server.crash()
        recovered = PersistenceServer.recover(tmp_path)
        assert recovered.store.characters[alice].gold == expected_gold
        assert recovered.store.characters[bob].gold == 1_000
        recovered.close()

    def test_recovered_server_continues_transaction_ids(self, tmp_path):
        server = PersistenceServer(tmp_path)
        seed_world(server)
        last = server.last_transaction_id
        server.crash()
        recovered = PersistenceServer.recover(tmp_path)
        assert recovered.last_transaction_id == last
        recovered.create_character("carol", 0)
        assert recovered.last_transaction_id == last + 1
        recovered.close()


class TestConfiguration:
    def test_bad_snapshot_cadence_rejected(self, tmp_path):
        with pytest.raises(EngineError):
            PersistenceServer(tmp_path, snapshot_every=0)


class TestWalCompaction:
    def test_compaction_reclaims_and_preserves_state(self, tmp_path):
        from repro.persistence.store import ItemStore

        server = PersistenceServer(tmp_path, snapshot_every=10_000)
        alice, bob, sword = seed_world(server)
        for _ in range(30):
            server.deposit_gold(alice, 1)
        expected = ItemStore.from_snapshot_bytes(server.store.snapshot_bytes())
        reclaimed = server.compact_wal()
        assert reclaimed > 0
        # State intact live...
        assert server.store.equals(expected)
        server.crash()
        # ...and through recovery.
        recovered = PersistenceServer.recover(tmp_path)
        assert recovered.store.equals(expected)
        # The id counter survives compaction (the snapshot record carries
        # the watermark), so global monotonicity holds across restarts.
        assert recovered.last_transaction_id == server.last_transaction_id
        recovered.deposit_gold(alice, 1)
        assert recovered.last_transaction_id == server.last_transaction_id + 1
        recovered.close()

    def test_compaction_without_snapshot_after_noop(self, tmp_path):
        from repro.persistence.wal import WriteAheadLog

        with WriteAheadLog(tmp_path) as wal:
            wal.log_transaction(1, [("noop",)])
            assert wal.compact() == 0  # no snapshot yet

    def test_compaction_preserves_in_doubt_prepares(self, tmp_path):
        from repro.persistence.server import OP_DELETE_ITEM

        server = PersistenceServer(tmp_path, snapshot_every=10_000)
        alice, bob, sword = seed_world(server)
        assert server.prepare_remote("gid-7", [(OP_DELETE_ITEM, sword)])
        for _ in range(10):
            server.deposit_gold(alice, 1)
        server.compact_wal()
        server.crash()
        recovered = PersistenceServer.recover(tmp_path)
        assert "gid-7" in recovered.in_doubt_transactions()
        # The decision can still land after compaction + crash.
        assert recovered.resolve_remote("gid-7", True)
        assert sword not in recovered.store.items
        recovered.close()
