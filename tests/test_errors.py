"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            value = getattr(errors, name)
            if isinstance(value, type) and issubclass(value, Exception):
                assert issubclass(value, errors.ReproError), name

    def test_storage_specializations(self):
        assert issubclass(errors.CorruptCheckpointError, errors.StorageError)
        assert issubclass(
            errors.NoConsistentCheckpointError, errors.StorageError
        )
        assert issubclass(errors.GeometryError, errors.ConfigurationError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.SimulationError("boom")

    def test_transaction_error_in_hierarchy(self):
        from repro.persistence.store import TransactionError

        assert issubclass(TransactionError, errors.ReproError)

    def test_session_error_in_hierarchy(self):
        from repro.frontend.connection import SessionError

        assert issubclass(SessionError, errors.ReproError)
