"""The connection-server tier of the paper's Figure 1 architecture.

"Clients join the virtual world through a connection server that connects
them to a single shard."  This package models that tier twice over:

* :class:`~repro.frontend.connection.ConnectionServer` -- the in-process
  single-shard front end: sessions, command routing into the shard's
  durable command path, typed rate limiting, trade routing;
* :class:`~repro.frontend.gateway.FrontDoor` /
  :class:`~repro.frontend.gateway.GatewayServer` -- the fleet-wide front
  door: least-loaded placement, bounded per-shard command queues feeding
  the shared-memory command rings, and an asyncio TCP gateway speaking the
  length-prefixed frames of :mod:`repro.frontend.protocol`;
* :class:`~repro.frontend.client.GatewayClient` /
  :class:`~repro.frontend.client.LoadGenerator` -- latency-measuring TCP
  clients for the front-door benchmark;
* :class:`~repro.frontend.clients.BotClient` /
  :class:`~repro.frontend.clients.BotSwarm` -- a deterministic client-load
  driver running against either front end.

Session bookkeeping and admission control are shared: both front ends
admit through :class:`~repro.frontend.sessions.SessionRegistry`, so there
is exactly one command-admission path however a client arrives.
"""

from repro.frontend.clients import BotClient, BotSwarm
from repro.frontend.client import ClientError, GatewayClient, LoadGenerator
from repro.frontend.connection import ConnectionServer
from repro.frontend.gateway import (
    FrontDoor,
    GatewayError,
    GatewayServer,
    ShardPlacement,
)
from repro.frontend.sessions import (
    ClientSession,
    CommandOverflowError,
    SessionError,
    SessionRegistry,
)

__all__ = [
    "BotClient",
    "BotSwarm",
    "ClientError",
    "ClientSession",
    "CommandOverflowError",
    "ConnectionServer",
    "FrontDoor",
    "GatewayClient",
    "GatewayError",
    "GatewayServer",
    "LoadGenerator",
    "SessionError",
    "SessionRegistry",
    "ShardPlacement",
]
