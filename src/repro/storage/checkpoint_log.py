"""Append-only checkpoint log for the Partial-Redo methods.

"Partial-Redo writes dirty objects to a simple log [9].  Note that while the
log organization allows us to use a sequential write pattern, we may have to
read more of the log in order to find all objects necessary to reconstruct a
full consistent checkpoint." (Section 3.2.)

The log is a sequence of framed records::

    CHECKPOINT_BEGIN  (epoch, is_full_dump)
    OBJECTS           (epoch, first_object_id_count) + [ids][payloads]
    CHECKPOINT_COMMIT (epoch, cut_tick)

Recovery finds the last committed epoch, then reconstructs the image from the
latest committed version of every object at or before that epoch.  Because a
full dump is appended every ``C`` checkpoints, the scan never needs to reach
further back than ``C`` checkpoints -- the ``(k*C + n)`` restore cost the
simulator charges.  :meth:`restore_scan_bytes` reports how many log bytes a
backwards scan would touch, which the validation experiments compare against
the model.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.config import StateGeometry
from repro.errors import NoConsistentCheckpointError, StorageError
from repro.obs.trace import get_tracer
from repro.storage.double_backup import (
    RESTORE_REGION_OBJECTS,
    StreamingRestore,
    resolve_fsync_policy,
)
from repro.storage.layout import (
    RECORD_CHECKPOINT_BEGIN,
    RECORD_CHECKPOINT_COMMIT,
    RECORD_HEADER_BYTES,
    RECORD_OBJECTS,
    pack_geometry,
    pack_record,
    pack_record_parts,
    pread_into,
    unpack_geometry,
    unpack_record_header,
    verify_record,
    write_all,
)

_GEOMETRY_RECORD = 0  # pseudo-epoch used by the leading geometry record


@dataclass
class _LogCheckpoint:
    """Parsed view of one checkpoint's records in the log."""

    epoch: int
    is_full_dump: bool
    committed: bool
    cut_tick: int
    #: (file offset of ids, object count) for each OBJECTS record.
    object_runs: List[Tuple[int, int]]
    begin_offset: int
    end_offset: int


class CheckpointLogStore:
    """A simple sequential checkpoint log with periodic full dumps."""

    FILE_NAME = "checkpoints.log"

    #: Default streaming granularity for :meth:`compact` rewrites.
    COMPACT_CHUNK_BYTES = 1 << 20

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        geometry: StateGeometry,
        sync: bool = False,
        fsync_policy: Optional[str] = None,
    ) -> None:
        self._directory = os.fspath(directory)
        self._geometry = geometry
        self._fsync = resolve_fsync_policy(sync, fsync_policy)
        #: Test hook: called before every object append; raising from it
        #: emulates a writer killed mid-flush (fault injection).
        self.write_fault_hook: Optional[Callable[[], None]] = None
        os.makedirs(self._directory, exist_ok=True)
        self._path = os.path.join(self._directory, self.FILE_NAME)
        fresh = not os.path.exists(self._path) or os.path.getsize(self._path) == 0
        self._handle = open(self._path, "a+b")
        if fresh:
            self._append(
                pack_record(
                    RECORD_CHECKPOINT_BEGIN,
                    _GEOMETRY_RECORD,
                    0,
                    pack_geometry(geometry),
                )
            )
        else:
            self._verify_geometry()
        self._writing_epoch: Optional[int] = None

    def close(self) -> None:
        """Close the log file."""
        self._handle.close()

    def __enter__(self) -> "CheckpointLogStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def geometry(self) -> StateGeometry:
        """Geometry the log was created with."""
        return self._geometry

    @property
    def path(self) -> str:
        """Path of the log file."""
        return self._path

    @property
    def fsync_policy(self) -> str:
        """Active durability policy (``never`` / ``commit`` / ``always``)."""
        return self._fsync

    def _append(self, data: bytes, committing: bool = False) -> None:
        self._handle.seek(0, os.SEEK_END)
        self._handle.write(data)
        self._handle.flush()
        if self._fsync == "always" or (committing and self._fsync == "commit"):
            os.fsync(self._handle.fileno())

    def _append_parts(self, parts: List, committing: bool = False) -> None:
        """Gathered append of framed records without concatenating them.

        The handle is opened in append mode, so after a flush the raw fd
        lands all parts at the end of the file in one ``writev``.  A
        ``committing`` append carries a commit marker, so it must reach
        stable storage under the ``commit`` policy as well as ``always`` --
        the same discipline as :meth:`_append`.
        """
        self._handle.flush()
        write_all(self._handle.fileno(), parts)
        if self._fsync == "always" or (committing and self._fsync == "commit"):
            os.fsync(self._handle.fileno())

    def _verify_geometry(self) -> None:
        self._handle.seek(0)
        header = self._handle.read(RECORD_HEADER_BYTES)
        record_type, a, _b, length, checksum = unpack_record_header(header)
        payload = self._handle.read(length)
        if (
            record_type != RECORD_CHECKPOINT_BEGIN
            or a != _GEOMETRY_RECORD
            or not verify_record(header, payload, checksum)
        ):
            raise StorageError(f"{self._path} does not start with a geometry record")
        on_disk = unpack_geometry(payload)
        if on_disk != self._geometry:
            raise StorageError(
                f"log was written with geometry {on_disk}, "
                f"store opened with {self._geometry}"
            )

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------

    def begin_checkpoint(self, epoch: int, is_full_dump: bool) -> None:
        """Append the begin record of checkpoint ``epoch``."""
        if self._writing_epoch is not None:
            raise StorageError(
                f"checkpoint {self._writing_epoch} already in progress"
            )
        if epoch <= 0:
            raise StorageError(f"epoch must be positive, got {epoch}")
        self._append(
            pack_record(RECORD_CHECKPOINT_BEGIN, epoch, int(is_full_dump), b"")
        )
        self._writing_epoch = epoch

    def _validated_run(self, object_ids: np.ndarray, payloads):
        """Fault-hook, id-range, and length checks shared by both append
        paths; returns ``(ids, payload_view)`` (``None`` for an empty run)."""
        if self.write_fault_hook is not None:
            self.write_fault_hook()
        object_ids = np.ascontiguousarray(object_ids, dtype=np.int64)
        object_bytes = self._geometry.object_bytes
        payload_view = memoryview(payloads).cast("B")
        if payload_view.nbytes != object_ids.size * object_bytes:
            raise StorageError(
                f"payload length {payload_view.nbytes} does not match "
                f"{object_ids.size} objects of {object_bytes} bytes"
            )
        if object_ids.size == 0:
            return None
        if object_ids.min() < 0 or object_ids.max() >= self._geometry.num_objects:
            raise StorageError("object id out of range")
        return object_ids, payload_view

    def append_objects(self, object_ids: np.ndarray, payloads) -> None:
        """Append one run of object versions to the in-progress checkpoint.

        ``payloads`` is any contiguous bytes-like buffer holding
        ``len(object_ids)`` back-to-back object images.  Header, ids, and
        payload go down in one gathered write -- the record is never
        assembled in memory.
        """
        if self._writing_epoch is None:
            raise StorageError("append_objects outside begin/commit")
        run = self._validated_run(object_ids, payloads)
        if run is None:
            return
        object_ids, payload_view = run
        self._append_parts(
            pack_record_parts(
                RECORD_OBJECTS,
                self._writing_epoch,
                object_ids.size,
                [object_ids, payload_view],
            )
        )

    def write_checkpoint_vectored(self, chunks, cut_tick: int) -> int:
        """Land the whole in-progress checkpoint in one gathered write.

        ``chunks`` is a sequence of ``(object_ids, payloads)`` runs, each
        validated (and fault-hook checked) exactly like an
        :meth:`append_objects` call.  Every OBJECTS record *and* the commit
        marker are framed into a single iovec and handed to one ``writev``
        (split only at ``IOV_MAX``), then made durable by at most one
        ``fsync`` under the ``commit``/``always`` policies -- instead of one
        write (and, under ``always``, one fsync) per run.

        The commit marker is the final entry of the iovec and ``writev``
        lands buffers in order, so a torn write can truncate the checkpoint
        but can never produce a commit marker ahead of its data: recovery
        sees either a fully committed checkpoint or an uncommitted tail it
        already knows to ignore.  Returns the number of payload bytes
        written and ends the in-progress checkpoint.
        """
        if self._writing_epoch is None:
            raise StorageError(
                "write_checkpoint_vectored outside begin/commit"
            )
        parts: List = []
        payload_bytes = 0
        for object_ids, payloads in chunks:
            run = self._validated_run(object_ids, payloads)
            if run is None:
                continue
            object_ids, payload_view = run
            parts.extend(
                pack_record_parts(
                    RECORD_OBJECTS,
                    self._writing_epoch,
                    object_ids.size,
                    [object_ids, payload_view],
                )
            )
            payload_bytes += payload_view.nbytes
        parts.append(
            pack_record(
                RECORD_CHECKPOINT_COMMIT, self._writing_epoch, cut_tick, b""
            )
        )
        with get_tracer().span(
            "log_writev",
            epoch=self._writing_epoch,
            cut=cut_tick,
            bytes=payload_bytes,
            iovecs=len(parts),
        ):
            self._append_parts(parts, committing=True)
        self._writing_epoch = None
        return payload_bytes

    def commit_checkpoint(self, tick: int) -> None:
        """Append the commit record; the checkpoint is now recoverable."""
        if self._writing_epoch is None:
            raise StorageError("commit_checkpoint without begin_checkpoint")
        self._append(
            pack_record(RECORD_CHECKPOINT_COMMIT, self._writing_epoch, tick, b""),
            committing=True,
        )
        self._writing_epoch = None

    def abort_checkpoint(self) -> None:
        """Abandon the in-progress checkpoint (its records stay uncommitted)."""
        if self._writing_epoch is None:
            raise StorageError("abort_checkpoint without begin_checkpoint")
        self._writing_epoch = None

    # ------------------------------------------------------------------
    # Scanning and recovery
    # ------------------------------------------------------------------

    def _scan(self) -> List[_LogCheckpoint]:
        """Parse the whole log, stopping cleanly at a torn tail."""
        checkpoints: List[_LogCheckpoint] = []
        by_epoch: Dict[int, _LogCheckpoint] = {}
        handle = self._handle
        handle.seek(0)
        offset = 0
        while True:
            header = handle.read(RECORD_HEADER_BYTES)
            if len(header) < RECORD_HEADER_BYTES:
                break
            try:
                record_type, a, b, length, checksum = unpack_record_header(header)
            except Exception:
                break  # torn tail
            payload_offset = offset + RECORD_HEADER_BYTES
            payload = handle.read(length)
            if len(payload) < length or not verify_record(header, payload, checksum):
                break  # torn tail
            next_offset = payload_offset + length
            if record_type == RECORD_CHECKPOINT_BEGIN and a != _GEOMETRY_RECORD:
                checkpoint = _LogCheckpoint(
                    epoch=a,
                    is_full_dump=bool(b),
                    committed=False,
                    cut_tick=-1,
                    object_runs=[],
                    begin_offset=offset,
                    end_offset=next_offset,
                )
                checkpoints.append(checkpoint)
                by_epoch[a] = checkpoint
            elif record_type == RECORD_OBJECTS:
                checkpoint = by_epoch.get(a)
                if checkpoint is not None:
                    checkpoint.object_runs.append((payload_offset, b))
                    checkpoint.end_offset = next_offset
            elif record_type == RECORD_CHECKPOINT_COMMIT:
                checkpoint = by_epoch.get(a)
                if checkpoint is not None:
                    checkpoint.committed = True
                    checkpoint.cut_tick = b
                    checkpoint.end_offset = next_offset
            offset = next_offset
            handle.seek(offset)
        return checkpoints

    def latest_committed(self) -> Tuple[int, int]:
        """``(epoch, cut_tick)`` of the newest committed checkpoint."""
        committed = [c for c in self._scan() if c.committed]
        if not committed:
            raise NoConsistentCheckpointError(
                f"no committed checkpoint in {self._path}"
            )
        last = max(committed, key=lambda c: c.epoch)
        return last.epoch, last.cut_tick

    def restore_image_streaming(
        self, region_objects: Optional[int] = None
    ) -> StreamingRestore:
        """Newest committed checkpoint as a :class:`StreamingRestore`.

        One metadata pass resolves, for every object, which OBJECTS record
        holds its latest committed version at or before the recovered epoch
        (the state a backwards scan would reconstruct), entirely with sorted
        numpy id arrays -- no per-object Python loop.  The regions iterator
        then reads only the winning payload spans via positioned reads, in
        ascending object-id order; objects never written (possible only if
        the log lacks a full dump) come out zero-filled.
        """
        if region_objects is None:
            region_objects = RESTORE_REGION_OBJECTS
        if region_objects <= 0:
            raise StorageError(
                f"region_objects must be positive, got {region_objects}"
            )
        checkpoints = self._scan()
        committed = [c for c in checkpoints if c.committed]
        if not committed:
            raise NoConsistentCheckpointError(
                f"no committed checkpoint in {self._path}"
            )
        target = max(committed, key=lambda c: c.epoch)
        # Runs in replay order: epoch ascending, submission order within a
        # checkpoint.  Later runs beat earlier ones for duplicated ids.
        runs: List[Tuple[int, int]] = []
        for checkpoint in sorted(committed, key=lambda c: c.epoch):
            if checkpoint.epoch > target.epoch:
                continue
            runs.extend(checkpoint.object_runs)
        winners = self._resolve_winners(runs)
        return StreamingRestore(
            epoch=target.epoch,
            cut_tick=target.cut_tick,
            num_objects=self._geometry.num_objects,
            regions=self._stream_regions(runs, winners, region_objects),
        )

    def _resolve_winners(self, runs: List[Tuple[int, int]]):
        """Last-writer-wins resolution over ``runs`` (in apply order).

        Returns ``(object_ids, run_of, pos_of)``: the sorted unique ids with
        any committed version, and for each the index of the winning run and
        the row position within that run's payload.
        """
        self._handle.flush()
        fd = self._handle.fileno()
        ids_parts = []
        for payload_offset, count in runs:
            ids = np.empty(count, dtype=np.int64)
            read = pread_into(fd, ids, payload_offset)
            if read != ids.nbytes:
                raise StorageError(
                    f"log truncated reading ids at offset {payload_offset}"
                )
            ids_parts.append(ids)
        if not ids_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        counts = np.array([ids.size for ids in ids_parts], dtype=np.int64)
        part_starts = np.concatenate(([0], np.cumsum(counts)))
        all_ids = np.concatenate(ids_parts)
        # Stable sort keeps apply order among duplicates; keeping the last
        # occurrence of each id selects the winning (newest) version.
        order = np.argsort(all_ids, kind="stable")
        sorted_ids = all_ids[order]
        keep = np.concatenate((np.diff(sorted_ids) != 0, [True]))
        object_ids = sorted_ids[keep]
        source = order[keep]
        run_of = np.searchsorted(part_starts, source, side="right") - 1
        pos_of = source - part_starts[run_of]
        return object_ids, run_of, pos_of

    def _stream_regions(
        self, runs, winners, region_objects: int
    ) -> Iterator[Tuple[int, int, bytearray]]:
        """Yield winning payloads gathered into ascending id regions.

        Per region, each contributing run is read once as the span covering
        its winning rows (one positioned read) and the rows are scattered
        into the region buffer with a single fancy-indexed assignment.
        """
        object_ids, run_of, pos_of = winners
        geometry = self._geometry
        object_bytes = geometry.object_bytes
        num_objects = geometry.num_objects
        self._handle.flush()
        fd = self._handle.fileno()
        for start in range(0, num_objects, region_objects):
            count = min(region_objects, num_objects - start)
            buffer = bytearray(count * object_bytes)
            lo, hi = np.searchsorted(object_ids, (start, start + count))
            if lo != hi:
                region_rows = np.frombuffer(buffer, dtype=np.uint8).reshape(
                    count, object_bytes
                )
                slot = object_ids[lo:hi] - start
                run_sel = run_of[lo:hi]
                pos_sel = pos_of[lo:hi]
                for run_index in np.unique(run_sel):
                    mask = run_sel == run_index
                    positions = pos_sel[mask]
                    first = int(positions.min())
                    last = int(positions.max())
                    payload_offset, run_count = runs[run_index]
                    span = np.empty(
                        (last - first + 1, object_bytes), dtype=np.uint8
                    )
                    offset = (
                        payload_offset + run_count * 8 + first * object_bytes
                    )
                    read = pread_into(fd, span, offset)
                    if read != span.nbytes:
                        raise StorageError(
                            f"log truncated reading payloads at offset {offset}"
                        )
                    region_rows[slot[mask]] = span[positions - first]
            yield start, count, buffer

    def restore_image(self) -> Tuple[bytes, int, int]:
        """Reconstruct the newest committed checkpoint image.

        Returns ``(image_bytes, epoch, cut_tick)``.  Built on
        :meth:`restore_image_streaming`; the regions are concatenated into
        one contiguous image for callers that want the whole state at once.
        """
        restore = self.restore_image_streaming()
        object_bytes = self._geometry.object_bytes
        image = bytearray(restore.num_objects * object_bytes)
        for start, count, payload in restore.regions:
            offset = start * object_bytes
            image[offset: offset + count * object_bytes] = payload
        return bytes(image), restore.epoch, restore.cut_tick

    def restore_scan_bytes(self) -> int:
        """Bytes a backwards restore scan reads: from the end of the log back
        to the beginning of the newest committed full dump (or the whole log
        if none exists)."""
        checkpoints = self._scan()
        committed = [c for c in checkpoints if c.committed]
        if not committed:
            raise NoConsistentCheckpointError(
                f"no committed checkpoint in {self._path}"
            )
        end = max(c.end_offset for c in checkpoints)
        full_dumps = [c for c in committed if c.is_full_dump]
        if full_dumps:
            start = max(full_dumps, key=lambda c: c.epoch).begin_offset
        else:
            start = 0
        return end - start

    def size_bytes(self) -> int:
        """Current size of the log file."""
        self._handle.seek(0, os.SEEK_END)
        return self._handle.tell()

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self, chunk_bytes: Optional[int] = None) -> int:
        """Drop log prefix made redundant by the newest committed full dump.

        Everything before that full dump's begin record can never be read by
        recovery again (the backwards scan stops at the full dump), so it is
        rewritten away.  The surviving tail is streamed into the replacement
        file in bounded ``chunk_bytes`` pieces (default
        :attr:`COMPACT_CHUNK_BYTES`), so compaction never materializes the
        tail in memory no matter how large the log has grown.  Returns the
        number of bytes reclaimed.  No-op (0) when there is no committed full
        dump or no in-progress-free prefix to drop.  Must not be called while
        a checkpoint is being written.
        """
        if self._writing_epoch is not None:
            raise StorageError("cannot compact while a checkpoint is in progress")
        if chunk_bytes is None:
            chunk_bytes = self.COMPACT_CHUNK_BYTES
        if chunk_bytes <= 0:
            raise StorageError(
                f"chunk_bytes must be positive, got {chunk_bytes}"
            )
        checkpoints = self._scan()
        full_dumps = [c for c in checkpoints if c.committed and c.is_full_dump]
        if not full_dumps:
            return 0
        cut = max(full_dumps, key=lambda c: c.epoch).begin_offset
        if cut <= 0:
            return 0
        # Rewrite: geometry record + everything from the cut onwards, via a
        # temp file swapped in atomically.
        temp_path = self._path + ".compact"
        with open(temp_path, "wb") as temp:
            temp.write(
                pack_record(
                    RECORD_CHECKPOINT_BEGIN,
                    _GEOMETRY_RECORD,
                    0,
                    pack_geometry(self._geometry),
                )
            )
            self._handle.seek(cut)
            while True:
                chunk = self._handle.read(chunk_bytes)
                if not chunk:
                    break
                temp.write(chunk)
            temp.flush()
            if self._fsync != "never":
                os.fsync(temp.fileno())
        old_size = self.size_bytes()
        self._handle.close()
        os.replace(temp_path, self._path)
        self._handle = open(self._path, "a+b")
        return old_size - self.size_bytes()
