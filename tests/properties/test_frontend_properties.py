"""Property test: the connection server's rate limit is exact.

For any interleaving of sends and tick boundaries, the number of commands a
session forwards within one tick window never exceeds the limit, every
accepted command reaches the shard, and budgets reset exactly at the
boundary.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import StateGeometry
from repro.engine.app import TickApplication, TickUpdatesPlan
from repro.engine.shard import MMOShard
from repro.frontend.connection import ConnectionServer, SessionError


class IdleApp(TickApplication):
    """A do-nothing world: every command's routing is fully observable."""

    def __init__(self):
        self._geometry = StateGeometry(rows=16, columns=8)

    @property
    def geometry(self):
        return self._geometry

    def initialize(self, table, rng):
        pass

    def plan_tick(self, table, rng, tick):
        return TickUpdatesPlan.empty(np.float32)


# Each step: True = send a command, False = tick boundary.
schedules = st.lists(st.booleans(), min_size=1, max_size=60)


@given(schedule=schedules, limit=st.integers(min_value=1, max_value=5))
@settings(max_examples=50, deadline=None)
def test_rate_limit_exact(tmp_path_factory, schedule, limit):
    root = tmp_path_factory.mktemp("frontend")
    shard = MMOShard(IdleApp(), root, seed=0)
    connection = ConnectionServer(shard, commands_per_tick_limit=limit)
    session_id = connection.connect("prop")

    sent_this_tick = 0
    accepted_total = 0
    for is_send in schedule:
        if is_send:
            try:
                connection.send_command(session_id, b"noop")
                sent_this_tick += 1
                accepted_total += 1
                assert sent_this_tick <= limit
            except SessionError:
                # Only ever rejected when the budget is exactly exhausted.
                assert sent_this_tick == limit
        else:
            connection.run_tick()
            sent_this_tick = 0

    stats = connection.stats
    assert stats.commands_routed == accepted_total
    assert (
        stats.commands_routed + stats.commands_rejected
        == sum(1 for s in schedule if s)
    )
    shard.close()
