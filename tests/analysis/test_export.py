"""Tests for CSV/JSON exports."""

import csv
import io
import json

import numpy as np
import pytest

from repro.analysis.export import export_figure, figure_to_json, table_to_csv
from repro.analysis.tables import TextTable
from repro.experiments.common import FigureResult


@pytest.fixture
def figure():
    table = TextTable("A table", ["algorithm", "value"])
    table.add_row(["Copy-on-Update", "1.2 ms"])
    table.add_row(["Naive-Snapshot", "0.9 ms"])
    return FigureResult(
        experiment_id="demo",
        description="A demo figure",
        tables=[table],
        raw={"metric": np.float64(1.5), "nested": {64_000: [1, 2]}},
    )


class TestTableToCsv:
    def test_header_and_rows(self, figure):
        parsed = list(csv.reader(io.StringIO(table_to_csv(figure.tables[0]))))
        assert parsed[0] == ["algorithm", "value"]
        assert parsed[1] == ["Copy-on-Update", "1.2 ms"]
        assert len(parsed) == 3

    def test_commas_escaped(self):
        table = TextTable("T", ["a"])
        table.add_row(["1,000"])
        parsed = list(csv.reader(io.StringIO(table_to_csv(table))))
        assert parsed[1] == ["1,000"]


class TestFigureToJson:
    def test_round_trips_through_json(self, figure):
        document = json.loads(figure_to_json(figure))
        assert document["experiment_id"] == "demo"
        assert document["raw"]["metric"] == 1.5
        assert document["raw"]["nested"]["64000"] == [1, 2]
        assert document["tables"][0]["title"] == "A table"

    def test_numpy_scalars_sanitized(self, figure):
        text = figure_to_json(figure)
        assert "float64" not in text


class TestExportFigure:
    def test_writes_json_and_csv(self, figure, tmp_path):
        paths = export_figure(figure, tmp_path)
        assert len(paths) == 2
        assert (tmp_path / "demo.json").exists()
        assert (tmp_path / "demo_table0.csv").exists()

    def test_cli_export_flag(self, tmp_path, capsys):
        from repro.experiments.runner import main

        assert main(
            ["table1", "--quick", "--export-dir", str(tmp_path),
             "--bench-out", str(tmp_path / "bench.json")]
        ) == 0
        assert (tmp_path / "table1.json").exists()
        assert (tmp_path / "table1_table0.csv").exists()
