"""The logical log: per-tick records enabling deterministic replay.

"Instead, we log all user actions at each tick and replay the ticks to
recover.  This allows us to recover to the precise tick at which a failure
occurred." (Section 3.1.)

Our durable engine's game logic is deterministic given the state table and
the random generator, so the logical record of one tick is simply the tick
number plus the serialized generator state *before* the tick ran (plus an
optional application payload for games that take external commands).  Replay
restores the generator and re-runs the simulation; the resulting updates are
bit-identical to the pre-crash run.

Records are CRC-framed; a torn tail (crash mid-append) truncates cleanly to
the last complete record -- a tick is recoverable exactly when its record hit
the log.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.errors import StorageError
from repro.storage.double_backup import resolve_fsync_policy
from repro.storage.layout import (
    RECORD_HEADER_BYTES,
    RECORD_TICK,
    pack_record,
    unpack_record_header,
    verify_record,
)


@dataclass(frozen=True)
class TickRecord:
    """One logical-log entry: everything needed to re-run one tick."""

    tick: int
    #: Serialized numpy Generator state captured before the tick ran.
    rng_state: dict
    #: Application-defined extra payload (external commands, etc.).
    command_payload: bytes = b""


class ActionLog:
    """Append-only logical log of game ticks.

    Durability follows the same ``fsync_policy`` vocabulary as the
    checkpoint stores (``never`` / ``commit`` / ``always``), resolved through
    :func:`~repro.storage.double_backup.resolve_fsync_policy` so sweeps
    compare the whole write path under one policy.  Every append *is* this
    log's commit point (a tick is durable exactly when its record is down),
    so ``commit`` and ``always`` both fsync per append and ``never`` trusts
    the OS page cache.
    """

    FILE_NAME = "actions.log"

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        sync: bool = False,
        fsync_policy: Optional[str] = None,
    ) -> None:
        self._directory = os.fspath(directory)
        self._fsync = resolve_fsync_policy(sync, fsync_policy)
        os.makedirs(self._directory, exist_ok=True)
        self._path = os.path.join(self._directory, self.FILE_NAME)
        self._handle = open(self._path, "a+b")
        self._last_tick = self._find_last_tick()

    def close(self) -> None:
        """Close the log file."""
        self._handle.close()

    def __enter__(self) -> "ActionLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def path(self) -> str:
        """Path of the log file."""
        return self._path

    @property
    def fsync_policy(self) -> str:
        """Active durability policy (``never`` / ``commit`` / ``always``)."""
        return self._fsync

    @property
    def last_tick(self) -> Optional[int]:
        """Highest tick recorded, or None if the log is empty."""
        return self._last_tick

    def _find_last_tick(self) -> Optional[int]:
        last = None
        for record in self.records():
            last = record.tick
        return last

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, record: TickRecord) -> None:
        """Durably append one tick record (ticks must be consecutive)."""
        if self._last_tick is not None and record.tick != self._last_tick + 1:
            raise StorageError(
                f"non-consecutive tick {record.tick} after {self._last_tick}"
            )
        if self._last_tick is None and record.tick < 0:
            raise StorageError(f"tick must be >= 0, got {record.tick}")
        payload = pickle.dumps(
            (record.rng_state, record.command_payload), protocol=4
        )
        self._handle.seek(0, os.SEEK_END)
        self._handle.write(pack_record(RECORD_TICK, record.tick, 0, payload))
        self._handle.flush()
        if self._fsync != "never":
            # Each append is this log's commit point, so the "commit" and
            # "always" policies coincide here.
            os.fsync(self._handle.fileno())
        self._last_tick = record.tick

    # ------------------------------------------------------------------
    # Reading / replay
    # ------------------------------------------------------------------

    def records(self, start_tick: int = 0) -> Iterator[TickRecord]:
        """Yield complete records with ``tick >= start_tick``.

        Stops silently at the first torn or corrupt record -- everything
        beyond it was not durably logged.
        """
        handle = self._handle
        handle.seek(0)
        while True:
            header = handle.read(RECORD_HEADER_BYTES)
            if len(header) < RECORD_HEADER_BYTES:
                return
            try:
                record_type, tick, _b, length, checksum = unpack_record_header(header)
            except Exception:
                return
            payload = handle.read(length)
            if len(payload) < length or not verify_record(header, payload, checksum):
                return
            if record_type != RECORD_TICK:
                continue
            if tick < start_tick:
                continue
            rng_state, command_payload = pickle.loads(payload)
            yield TickRecord(
                tick=tick, rng_state=rng_state, command_payload=command_payload
            )

    def truncate(self) -> None:
        """Erase the log (used after a checkpoint makes old ticks redundant in
        tests; production engines would archive instead)."""
        self._handle.seek(0)
        self._handle.truncate(0)
        self._handle.flush()
        self._last_tick = None
