"""Figure 6: validation of the simulation model against the real
implementation of Naive-Snapshot and Copy-on-Update (Section 6).

Runs the threaded real implementation and the simulator calibrated with this
host's micro-benchmarked parameters over an updates-per-tick sweep, and
reports overhead / checkpoint / recovery for both side by side.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.tables import TextTable
from repro.config import HardwareParameters
from repro.experiments.common import (
    ExperimentScale,
    FigureResult,
    FULL_SCALE,
    format_seconds,
)
from repro.units import format_duration, format_rate
from repro.validation.harness import ValidationComparison, run_validation_sweep
from repro.validation.microbench import measure_host_parameters


def run(
    scale: ExperimentScale = FULL_SCALE,
    hardware: Optional[HardwareParameters] = None,
    seed: int = 0,
) -> FigureResult:
    """Reproduce Figure 6 (simulation vs implementation)."""
    if hardware is None:
        hardware = measure_host_parameters(quick=(scale.name == "quick"))
    comparisons: List[ValidationComparison] = run_validation_sweep(
        updates_per_tick_values=scale.validation_sweep,
        num_ticks=scale.validation_ticks,
        hardware=hardware,
        seed=seed,
    )

    calibration = TextTable(
        "Host calibration (Table 3 parameters measured on this machine)",
        ["parameter", "measured value"],
    )
    calibration.add_row(["memory bandwidth", format_rate(hardware.memory_bandwidth)])
    calibration.add_row(["memory latency", format_duration(hardware.memory_latency)])
    calibration.add_row(["lock overhead", format_duration(hardware.lock_overhead)])
    calibration.add_row(
        ["bit test/set overhead", format_duration(hardware.bit_test_overhead)]
    )
    calibration.add_row(["disk bandwidth", format_rate(hardware.disk_bandwidth)])

    def _panel(title: str, sim_attr: str, real_attr: str) -> TextTable:
        table = TextTable(
            title,
            ["algorithm", "updates/tick", "simulation", "implementation",
             "impl/sim"],
        )
        for row in comparisons:
            simulated = getattr(row, sim_attr)
            measured = getattr(row, real_attr)
            ratio = measured / simulated if simulated > 0 else float("inf")
            table.add_row(
                [
                    row.algorithm_name,
                    f"{row.updates_per_tick:,}",
                    format_seconds(simulated),
                    format_seconds(measured),
                    f"{ratio:.2f}x",
                ]
            )
        return table

    overhead = _panel(
        "Figure 6(a): overhead time, simulation vs implementation",
        "simulated_overhead", "measured_overhead",
    )
    overhead.add_note(
        "paper: trends closely matched; Copy-on-Update implementation "
        "overhead up to 3x the simulation (lock contention and writer I/O "
        "interference are not modelled)"
    )
    checkpoint = _panel(
        "Figure 6(b): time to checkpoint, simulation vs implementation",
        "simulated_checkpoint", "measured_checkpoint",
    )
    recovery = _panel(
        "Figure 6(c): recovery time, simulation vs implementation",
        "simulated_recovery", "measured_recovery",
    )

    figure = FigureResult(
        experiment_id="fig6",
        description=(
            "Validation of the simulation model against a real threaded "
            "implementation of Naive-Snapshot and Copy-on-Update"
        ),
        tables=[calibration, overhead, checkpoint, recovery],
        raw={
            "hardware": {
                "memory_bandwidth": hardware.memory_bandwidth,
                "memory_latency": hardware.memory_latency,
                "lock_overhead": hardware.lock_overhead,
                "bit_test_overhead": hardware.bit_test_overhead,
                "disk_bandwidth": hardware.disk_bandwidth,
            },
            "comparisons": [
                {
                    "algorithm": c.algorithm_key,
                    "updates_per_tick": c.updates_per_tick,
                    "simulated_overhead": c.simulated_overhead,
                    "measured_overhead": c.measured_overhead,
                    "simulated_checkpoint": c.simulated_checkpoint,
                    "measured_checkpoint": c.measured_checkpoint,
                    "simulated_recovery": c.simulated_recovery,
                    "measured_recovery": c.measured_recovery,
                }
                for c in comparisons
            ],
        },
    )
    return figure
