"""Tests for the double-backup checkpoint store."""

import numpy as np
import pytest

from repro.config import StateGeometry
from repro.errors import NoConsistentCheckpointError, StorageError
from repro.storage.double_backup import DoubleBackupStore
from repro.storage.layout import STATE_COMPLETE, STATE_IN_PROGRESS


@pytest.fixture
def geometry():
    # 64 cells of 4 B in 32 B objects -> 8 objects of 8 cells.
    return StateGeometry(rows=8, columns=8, cell_bytes=4, object_bytes=32)


@pytest.fixture
def store(tmp_path, geometry):
    with DoubleBackupStore(tmp_path, geometry) as opened:
        yield opened


def payload_for(ids, geometry, fill):
    cells = geometry.cells_per_object
    data = np.zeros((len(ids), cells), dtype=np.uint32)
    for slot, object_id in enumerate(ids):
        data[slot] = fill * 1_000 + object_id
    return data.tobytes()


class TestProtocol:
    def test_fresh_store_has_no_consistent_image(self, store):
        with pytest.raises(NoConsistentCheckpointError):
            store.latest_consistent()

    def test_commit_produces_consistent_image(self, store, geometry):
        ids = np.arange(geometry.num_objects)
        store.begin_checkpoint(0, epoch=1)
        store.write_objects(ids, payload_for(ids, geometry, 1))
        store.commit_checkpoint(tick=42)
        found = store.latest_consistent()
        assert found.backup_index == 0
        assert found.epoch == 1
        assert found.tick == 42

    def test_alternating_epochs_pick_newest(self, store, geometry):
        ids = np.arange(geometry.num_objects)
        for epoch, backup in ((1, 0), (2, 1), (3, 0)):
            store.begin_checkpoint(backup, epoch=epoch)
            store.write_objects(ids, payload_for(ids, geometry, epoch))
            store.commit_checkpoint(tick=epoch * 10)
        found = store.latest_consistent()
        assert (found.backup_index, found.epoch, found.tick) == (0, 3, 30)

    def test_in_progress_backup_ignored(self, store, geometry):
        ids = np.arange(geometry.num_objects)
        store.begin_checkpoint(0, epoch=1)
        store.write_objects(ids, payload_for(ids, geometry, 1))
        store.commit_checkpoint(tick=5)
        store.begin_checkpoint(1, epoch=2)  # never committed
        found = store.latest_consistent()
        assert found.epoch == 1

    def test_write_outside_checkpoint_rejected(self, store, geometry):
        with pytest.raises(StorageError):
            store.write_objects(np.array([0]), b"\x00" * 32)

    def test_double_begin_rejected(self, store):
        store.begin_checkpoint(0, epoch=1)
        with pytest.raises(StorageError):
            store.begin_checkpoint(1, epoch=2)

    def test_commit_without_begin_rejected(self, store):
        with pytest.raises(StorageError):
            store.commit_checkpoint(tick=0)

    def test_bad_backup_index_rejected(self, store):
        with pytest.raises(StorageError):
            store.begin_checkpoint(2, epoch=1)

    def test_wrong_payload_size_rejected(self, store):
        store.begin_checkpoint(0, epoch=1)
        with pytest.raises(StorageError):
            store.write_objects(np.array([0, 1]), b"\x00" * 32)

    def test_out_of_range_object_rejected(self, store, geometry):
        store.begin_checkpoint(0, epoch=1)
        with pytest.raises(StorageError):
            store.write_objects(
                np.array([geometry.num_objects]), b"\x00" * 32
            )

    def test_abort_releases_writer_for_same_backup(self, store, geometry):
        store.begin_checkpoint(0, epoch=1)
        store.abort_checkpoint()
        # The aborted backup is torn, so the retry must target it again --
        # switching would leave no consistent image anywhere.
        store.begin_checkpoint(0, epoch=2)
        store.commit_checkpoint(tick=1)
        assert store.latest_consistent().epoch == 2

    def test_abort_then_other_backup_rejected(self, store):
        store.begin_checkpoint(0, epoch=1)
        store.abort_checkpoint()
        with pytest.raises(StorageError):
            store.begin_checkpoint(1, epoch=2)


class TestDataIntegrity:
    def test_objects_land_at_fixed_offsets(self, store, geometry):
        ids = np.array([3, 1])
        store.begin_checkpoint(0, epoch=1)
        store.write_objects(ids, payload_for(ids, geometry, 7))
        store.commit_checkpoint(tick=0)
        raw = store.read_objects(0, np.array([1]))
        values = np.frombuffer(raw, dtype=np.uint32)
        assert values[0] == 7_001

    def test_partial_write_preserves_other_objects(self, store, geometry):
        all_ids = np.arange(geometry.num_objects)
        store.begin_checkpoint(0, epoch=1)
        store.write_objects(all_ids, payload_for(all_ids, geometry, 1))
        store.commit_checkpoint(tick=0)
        # Second checkpoint to the same backup updates only object 2.
        store.begin_checkpoint(1, epoch=2)
        store.commit_checkpoint(tick=1)
        store.begin_checkpoint(0, epoch=3)
        store.write_objects(np.array([2]), payload_for([2], geometry, 3))
        store.commit_checkpoint(tick=2)
        image = np.frombuffer(store.read_image(0), dtype=np.uint32).reshape(
            geometry.num_objects, geometry.cells_per_object
        )
        assert image[2, 0] == 3_002
        assert image[3, 0] == 1_003  # untouched object keeps epoch-1 value

    def test_read_image_size(self, store, geometry):
        assert len(store.read_image(0)) == geometry.checkpoint_bytes

    def test_duplicate_ids_last_write_wins(self, store, geometry):
        ids = np.array([2, 5, 2])  # object 2 submitted twice
        payload = payload_for([2], geometry, 1) + payload_for(
            [5], geometry, 1
        ) + payload_for([2], geometry, 9)
        store.begin_checkpoint(0, epoch=1)
        store.write_objects(ids, payload)
        store.commit_checkpoint(tick=0)
        values = np.frombuffer(
            store.read_objects(0, np.array([2, 5])), dtype=np.uint32
        ).reshape(2, geometry.cells_per_object)
        assert values[0, 0] == 9_002  # the later payload
        assert values[1, 0] == 1_005

    def test_scattered_and_contiguous_runs(self, store, geometry):
        """Coalesced run writes land every object at its own offset."""
        ids = np.array([0, 1, 2, 5, 7])  # run of three + two singletons
        store.begin_checkpoint(0, epoch=1)
        store.write_objects(ids, payload_for(ids, geometry, 4))
        store.commit_checkpoint(tick=0)
        values = np.frombuffer(
            store.read_objects(0, ids), dtype=np.uint32
        ).reshape(ids.size, geometry.cells_per_object)
        for slot, object_id in enumerate(ids):
            assert values[slot, 0] == 4_000 + object_id
        # Untouched neighbours stay zero.
        gap = np.frombuffer(
            store.read_objects(0, np.array([3, 4, 6])), dtype=np.uint32
        )
        assert not gap.any()


class TestReopen:
    def test_survives_reopen(self, tmp_path, geometry):
        ids = np.arange(geometry.num_objects)
        with DoubleBackupStore(tmp_path, geometry) as store:
            store.begin_checkpoint(0, epoch=1)
            store.write_objects(ids, payload_for(ids, geometry, 4))
            store.commit_checkpoint(tick=9)
        with DoubleBackupStore(tmp_path, geometry) as store:
            found = store.latest_consistent()
            assert found.epoch == 1
            image = np.frombuffer(
                store.read_image(found.backup_index), dtype=np.uint32
            )
            assert image[0] == 4_000

    def test_crash_mid_write_leaves_other_backup_consistent(
        self, tmp_path, geometry
    ):
        ids = np.arange(geometry.num_objects)
        store = DoubleBackupStore(tmp_path, geometry)
        store.begin_checkpoint(0, epoch=1)
        store.write_objects(ids, payload_for(ids, geometry, 1))
        store.commit_checkpoint(tick=0)
        # Crash while overwriting backup 1 (begin, some writes, no commit).
        store.begin_checkpoint(1, epoch=2)
        store.write_objects(np.array([0]), payload_for([0], geometry, 2))
        store.close()
        with DoubleBackupStore(tmp_path, geometry) as reopened:
            assert reopened.header(1).state == STATE_IN_PROGRESS
            found = reopened.latest_consistent()
            assert found.backup_index == 0
            assert found.epoch == 1

    def test_wrong_geometry_rejected_on_reopen(self, tmp_path, geometry):
        with DoubleBackupStore(tmp_path, geometry) as store:
            store.begin_checkpoint(0, epoch=1)
            store.commit_checkpoint(tick=0)
        other = StateGeometry(rows=16, columns=8, cell_bytes=4, object_bytes=32)
        store = DoubleBackupStore(tmp_path, other)
        with pytest.raises(StorageError):
            store.latest_consistent()
        store.close()

    def test_headers_readable(self, store, geometry):
        store.begin_checkpoint(0, epoch=5)
        store.commit_checkpoint(tick=77)
        header = store.header(0)
        assert header.state == STATE_COMPLETE
        assert header.epoch == 5
        assert header.tick == 77


class TestVectoredWrites:
    def chunks_for(self, geometry, fill, *id_groups):
        return [
            (np.array(ids, dtype=np.int64), payload_for(ids, geometry, fill))
            for ids in id_groups
        ]

    def test_vectored_round_trip_matches_chunked_writes(
        self, tmp_path, geometry
    ):
        chunks = self.chunks_for(geometry, 1, [4, 0, 6], [2, 3], [7, 1, 5])
        with DoubleBackupStore(tmp_path / "vectored", geometry) as vectored:
            vectored.begin_checkpoint(0, epoch=1)
            nbytes = vectored.write_checkpoint_vectored(chunks, cut_tick=12)
            assert nbytes == geometry.num_objects * geometry.object_bytes
            found = vectored.latest_consistent()
            assert (found.epoch, found.tick) == (1, 12)
            image = vectored.read_image(found.backup_index)
        with DoubleBackupStore(tmp_path / "chunked", geometry) as chunked:
            chunked.begin_checkpoint(0, epoch=1)
            for ids, payload in chunks:
                chunked.write_objects(ids, payload)
            chunked.commit_checkpoint(tick=12)
            expected = chunked.read_image(0)
        assert image == expected

    def test_vectored_runs_straddling_chunks_coalesce(self, store, geometry):
        """Ids contiguous across chunk boundaries land correctly."""
        store.begin_checkpoint(0, epoch=1)
        store.write_checkpoint_vectored(
            self.chunks_for(geometry, 3, [0, 1, 2], [3, 4], [6, 7]),
            cut_tick=4,
        )
        image = store.read_image(0)
        payload = np.frombuffer(image, dtype=np.uint32).reshape(
            geometry.num_objects, geometry.cells_per_object
        )
        for object_id in (0, 1, 2, 3, 4, 6, 7):
            assert payload[object_id, 0] == 3_000 + object_id
        assert payload[5, 0] == 0  # untouched gap object

    def test_vectored_duplicates_across_chunks_keep_last(
        self, store, geometry
    ):
        """An id resubmitted in a later chunk wins, like chunked writes."""
        store.begin_checkpoint(0, epoch=1)
        store.write_checkpoint_vectored(
            self.chunks_for(geometry, 1, [0, 3, 5])
            + self.chunks_for(geometry, 2, [3, 1])
            + self.chunks_for(geometry, 9, [3]),
            cut_tick=6,
        )
        image = store.read_image(0)
        payload = np.frombuffer(image, dtype=np.uint32).reshape(
            geometry.num_objects, geometry.cells_per_object
        )
        assert payload[0, 0] == 1_000
        assert payload[5, 0] == 1_005
        assert payload[1, 0] == 2_001
        assert payload[3, 0] == 9_003  # last submission wins

    def test_vectored_outside_checkpoint_rejected(self, store, geometry):
        with pytest.raises(StorageError):
            store.write_checkpoint_vectored(
                self.chunks_for(geometry, 1, [0]), cut_tick=1
            )

    def test_vectored_fault_hook_fires_before_any_byte(self, store, geometry):
        """A fault in any chunk's validation aborts with nothing written."""
        calls = {"count": 0}

        def explode():
            calls["count"] += 1
            if calls["count"] > 1:
                raise StorageError("injected fault")

        store.write_fault_hook = explode
        store.begin_checkpoint(0, epoch=1)
        with pytest.raises(StorageError):
            store.write_checkpoint_vectored(
                self.chunks_for(geometry, 1, [0, 1], [2, 3]), cut_tick=3
            )
        store.abort_checkpoint()
        assert calls["count"] == 2
        with pytest.raises(NoConsistentCheckpointError):
            store.latest_consistent()
