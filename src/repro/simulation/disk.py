"""Virtual-time bookkeeping for the asynchronous checkpoint write.

The game server dedicates one disk to recovery (the paper's validation setup
writes "directly through a Linux block device" on "a dedicated hard drive"),
and checkpoints are taken back-to-back, so at most one asynchronous write is
ever in flight.  :class:`DiskWriteScheduler` tracks that single job in
virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class WriteJob:
    """One asynchronous checkpoint write in virtual time."""

    start_time: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError(f"job duration must be >= 0, got {self.duration}")

    @property
    def finish_time(self) -> float:
        """Virtual time at which the write becomes durable."""
        return self.start_time + self.duration

    def finished(self, now: float) -> bool:
        """True once virtual time ``now`` has reached the finish time."""
        return now >= self.finish_time

    def progress(self, now: float) -> float:
        """Fraction of the write completed at virtual time ``now``."""
        if self.duration == 0.0:
            return 1.0
        return min(max((now - self.start_time) / self.duration, 0.0), 1.0)


class DiskWriteScheduler:
    """Holds the at-most-one in-flight asynchronous checkpoint write."""

    def __init__(self) -> None:
        self._job: Optional[WriteJob] = None

    @property
    def active_job(self) -> Optional[WriteJob]:
        """The in-flight job, if any."""
        return self._job

    def begin(self, start_time: float, duration: float) -> WriteJob:
        """Start a new write; the previous one must have been retired."""
        if self._job is not None:
            raise SimulationError(
                "a checkpoint write is already in flight; retire it first"
            )
        self._job = WriteJob(start_time=start_time, duration=duration)
        return self._job

    def finished(self, now: float) -> bool:
        """True if there is no in-flight write or it has completed by ``now``."""
        return self._job is None or self._job.finished(now)

    def retire(self, now: float) -> WriteJob:
        """Remove and return the completed job."""
        if self._job is None:
            raise SimulationError("no checkpoint write to retire")
        if not self._job.finished(now):
            raise SimulationError(
                f"checkpoint write finishes at {self._job.finish_time:.6f}, "
                f"cannot retire at {now:.6f}"
            )
        job, self._job = self._job, None
        return job
