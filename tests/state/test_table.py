"""Tests for the game-state table."""

import numpy as np
import pytest

from repro.config import StateGeometry
from repro.errors import GeometryError
from repro.state.table import GameStateTable


@pytest.fixture
def geometry():
    # 100 cells of 4 B in 64 B objects -> 16 cells/object, 7 objects (last
    # partial: cells 96..99).
    return StateGeometry(rows=10, columns=10, cell_bytes=4, object_bytes=64)


@pytest.fixture
def table(geometry):
    return GameStateTable(geometry, dtype=np.uint32)


class TestConstruction:
    def test_rejects_mismatched_dtype(self, geometry):
        with pytest.raises(GeometryError):
            GameStateTable(geometry, dtype=np.uint16)

    def test_float32_allowed(self, geometry):
        table = GameStateTable(geometry, dtype=np.float32)
        assert table.dtype == np.float32

    def test_starts_zeroed(self, table):
        assert not table.cells.any()

    def test_views_share_memory(self, table):
        table.cells[3, 4] = 7
        assert table.flat[34] == 7


class TestUpdates:
    def test_apply_updates_returns_object_ids(self, table):
        objects = table.apply_updates(
            rows=np.array([0, 9]), columns=np.array([0, 9]),
            values=np.array([1, 2], dtype=np.uint32),
        )
        # cell 0 -> object 0; cell 99 -> object 6
        assert objects.tolist() == [0, 6]
        assert table.cells[0, 0] == 1
        assert table.cells[9, 9] == 2

    def test_apply_updates_duplicates_kept(self, table):
        objects = table.apply_updates(
            rows=np.array([0, 0]), columns=np.array([0, 1]),
            values=np.array([5, 6], dtype=np.uint32),
        )
        assert objects.tolist() == [0, 0]

    def test_apply_cell_updates(self, table):
        objects = table.apply_cell_updates(
            np.array([16, 17]), np.array([9, 9], dtype=np.uint32)
        )
        assert objects.tolist() == [1, 1]
        assert table.flat[16] == 9

    def test_out_of_range_row_rejected(self, table):
        with pytest.raises(GeometryError):
            table.apply_updates(np.array([10]), np.array([0]), np.array([1]))

    def test_out_of_range_column_rejected(self, table):
        with pytest.raises(GeometryError):
            table.apply_updates(np.array([0]), np.array([10]), np.array([1]))

    def test_out_of_range_cell_rejected(self, table):
        with pytest.raises(GeometryError):
            table.apply_cell_updates(np.array([100]), np.array([1]))


class TestObjectAccess:
    def test_read_objects_shape(self, table):
        payloads = table.read_objects(np.array([0, 6]))
        assert payloads.shape == (2, 16)

    def test_read_objects_is_copy(self, table):
        payloads = table.read_objects(np.array([0]))
        payloads[0, 0] = 42
        assert table.flat[0] == 0

    def test_write_objects_round_trip(self, table):
        table.flat[:] = np.arange(100, dtype=np.uint32)
        saved = table.read_objects(np.array([2, 4]))
        table.flat[:] = 0
        table.write_objects(np.array([2, 4]), saved)
        assert table.flat[32:48].tolist() == list(range(32, 48))
        assert table.flat[64:80].tolist() == list(range(64, 80))
        assert table.flat[0] == 0

    def test_object_bytes_round_trip(self, table):
        table.flat[:] = np.arange(100, dtype=np.uint32)
        raw = table.object_bytes(np.array([1, 3]))
        assert len(raw) == 2 * 64
        table.flat[:] = 0
        table.load_object_bytes(np.array([1, 3]), raw)
        assert table.flat[16:32].tolist() == list(range(16, 32))

    def test_padding_cells_round_trip(self, table):
        # Object 6 holds cells 96..99 plus 12 padding cells; reading and
        # writing it must not disturb real cells of other objects.
        table.flat[96:] = 7
        payload = table.read_objects(np.array([6]))
        table.flat[96:] = 0
        table.write_objects(np.array([6]), payload)
        assert (table.flat[96:] == 7).all()


class TestFullImage:
    def test_full_image_round_trip(self, table):
        rng = np.random.default_rng(1)
        table.fill_random(rng)
        image = table.full_image()
        assert len(image) == table.geometry.checkpoint_bytes
        clone = GameStateTable(table.geometry, dtype=table.dtype)
        clone.load_full_image(image)
        assert clone.equals(table)

    def test_load_rejects_wrong_size(self, table):
        with pytest.raises(GeometryError):
            table.load_full_image(b"\x00" * 4)


class TestCopyAndEquality:
    def test_copy_is_deep(self, table):
        table.cells[0, 0] = 1
        clone = table.copy()
        clone.cells[0, 0] = 2
        assert table.cells[0, 0] == 1
        assert not table.equals(clone)

    def test_equals_same_content(self, table):
        assert table.equals(table.copy())

    def test_equals_rejects_different_dtype(self, geometry):
        a = GameStateTable(geometry, dtype=np.uint32)
        b = GameStateTable(geometry, dtype=np.float32)
        assert not a.equals(b)

    def test_fill_random_float(self, geometry):
        table = GameStateTable(geometry, dtype=np.float32)
        table.fill_random(np.random.default_rng(0))
        assert table.cells.any()


class TestObjectRangeLoads:
    def test_load_object_range_round_trip(self, table):
        table.flat[:] = np.arange(100, dtype=np.uint32)
        raw = bytes(table.object_bytes(np.array([2, 3, 4])))
        table.flat[:] = 0
        table.load_object_range(2, 3, raw)
        assert table.flat[32:80].tolist() == list(range(32, 80))
        assert table.flat[0] == 0

    def test_load_object_range_accepts_memoryview_and_bytearray(self, table):
        payload = bytearray(2 * 64)
        payload[:4] = (123).to_bytes(4, "little")
        table.load_object_range(0, 2, memoryview(payload))
        assert table.flat[0] == 123

    def test_load_object_range_bounds_checked(self, table):
        with pytest.raises(GeometryError):
            table.load_object_range(6, 2, bytes(2 * 64))
        with pytest.raises(GeometryError):
            table.load_object_range(-1, 1, bytes(64))
        with pytest.raises(GeometryError):
            table.load_object_range(0, 2, bytes(64))

    def test_object_bytes_is_single_copy_view(self, table):
        table.flat[:] = np.arange(100, dtype=np.uint32)
        raw = table.object_bytes(np.array([1]))
        assert isinstance(raw, memoryview)
        assert len(raw) == 64
        # The buffer is a copy: later table writes must not leak into it.
        before = bytes(raw)
        table.flat[16] = 999
        assert bytes(raw) == before

    def test_load_full_image_accepts_memoryview(self, table):
        table.flat[:] = np.arange(100, dtype=np.uint32)
        image = bytearray(table.full_image())
        table.flat[:] = 0
        table.load_full_image(memoryview(image))
        assert table.flat[99] == 99


class TestValidateFastPath:
    def test_validate_false_skips_bounds_check(self, table):
        rows = np.array([0, 9])
        columns = np.array([0, 9])
        values = np.array([7, 8], dtype=np.uint32)
        touched = table.apply_updates(rows, columns, values, validate=False)
        assert table.cells[9, 9] == 8
        assert touched.tolist() == table.apply_updates(
            rows, columns, values
        ).tolist()

    def test_fused_check_still_names_the_bad_axis(self, table):
        with pytest.raises(GeometryError, match="row index"):
            table.apply_updates(
                np.array([10]), np.array([0]), np.array([1], dtype=np.uint32)
            )
        with pytest.raises(GeometryError, match="column index"):
            table.apply_updates(
                np.array([0]), np.array([-1]), np.array([1], dtype=np.uint32)
            )

    def test_cell_updates_validate_flag(self, table):
        table.apply_cell_updates(
            np.array([5]), np.array([42], dtype=np.uint32), validate=False
        )
        assert table.flat[5] == 42
        with pytest.raises(GeometryError):
            table.apply_cell_updates(
                np.array([100]), np.array([1], dtype=np.uint32)
            )
