"""Tests for the item/account store."""

import pytest

from repro.persistence.store import ItemStore, TransactionError


@pytest.fixture
def store():
    store = ItemStore()
    store.apply_create_character(1, "alice", 100)
    store.apply_create_character(2, "bob", 50)
    store.apply_create_item(10, "sword", 1)
    return store


class TestCharacters:
    def test_duplicate_character_rejected(self, store):
        with pytest.raises(TransactionError):
            store.apply_create_character(1, "mallory", 0)

    def test_id_allocator_advances(self, store):
        assert store.next_character_id == 3


class TestGold:
    def test_transfer(self, store):
        store.apply_transfer_gold(1, 2, 30)
        assert store.characters[1].gold == 70
        assert store.characters[2].gold == 80

    def test_insufficient_funds(self, store):
        with pytest.raises(TransactionError):
            store.apply_transfer_gold(2, 1, 51)

    def test_non_positive_amount(self, store):
        with pytest.raises(TransactionError):
            store.apply_transfer_gold(1, 2, 0)

    def test_unknown_parties(self, store):
        with pytest.raises(TransactionError):
            store.apply_transfer_gold(1, 9, 5)
        with pytest.raises(TransactionError):
            store.apply_transfer_gold(9, 1, 5)

    def test_adjust_gold(self, store):
        store.apply_adjust_gold(1, 25)
        assert store.characters[1].gold == 125
        store.apply_adjust_gold(1, -125)
        assert store.characters[1].gold == 0

    def test_adjust_cannot_go_negative(self, store):
        with pytest.raises(TransactionError):
            store.apply_adjust_gold(2, -51)

    def test_total_gold_conserved_by_transfer(self, store):
        before = store.total_gold()
        store.apply_transfer_gold(1, 2, 10)
        assert store.total_gold() == before


class TestItems:
    def test_transfer_item(self, store):
        store.apply_transfer_item(10, 1, 2)
        assert store.items[10].owner_id == 2
        assert [item.item_id for item in store.items_of(2)] == [10]

    def test_wrong_owner_rejected(self, store):
        with pytest.raises(TransactionError):
            store.apply_transfer_item(10, 2, 1)

    def test_unknown_item_rejected(self, store):
        with pytest.raises(TransactionError):
            store.apply_transfer_item(99, 1, 2)

    def test_item_for_unknown_owner_rejected(self, store):
        with pytest.raises(TransactionError):
            store.apply_create_item(11, "shield", 9)

    def test_delete(self, store):
        store.apply_delete_item(10)
        assert 10 not in store.items
        with pytest.raises(TransactionError):
            store.apply_delete_item(10)


class TestSnapshots:
    def test_round_trip(self, store):
        restored = ItemStore.from_snapshot_bytes(store.snapshot_bytes())
        assert restored.equals(store)

    def test_round_trip_preserves_allocators(self, store):
        restored = ItemStore.from_snapshot_bytes(store.snapshot_bytes())
        assert restored.next_character_id == store.next_character_id
        assert restored.next_item_id == store.next_item_id

    def test_equals_detects_difference(self, store):
        other = ItemStore.from_snapshot_bytes(store.snapshot_bytes())
        other.characters[1].gold += 1
        assert not store.equals(other)
