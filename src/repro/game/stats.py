"""Battle statistics: a human-readable view of one battle's state table."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.game.columns import Column, UnitType
from repro.state.table import GameStateTable


@dataclass(frozen=True)
class TeamReport:
    """Aggregates for one team."""

    team: int
    units: int
    active_units: int
    knights: int
    archers: int
    healers: int
    total_kills: int
    total_damage_dealt: float
    total_healing_done: float
    mean_health: float

    def describe(self) -> str:
        return (
            f"team {self.team}: {self.units:,} units "
            f"({self.knights:,}K/{self.archers:,}A/{self.healers:,}H), "
            f"{self.active_units:,} active, kills={self.total_kills:,}, "
            f"damage={self.total_damage_dealt:,.0f}, "
            f"healing={self.total_healing_done:,.0f}, "
            f"mean health={self.mean_health:.1f}"
        )


@dataclass(frozen=True)
class BattleReport:
    """Scoreboard of a Knights and Archers battle."""

    teams: Tuple[TeamReport, TeamReport]

    @classmethod
    def from_table(cls, table: GameStateTable) -> "BattleReport":
        """Aggregate the live state table into a scoreboard."""
        cells = table.cells
        reports = []
        for team_id in (0, 1):
            members = cells[:, Column.TEAM] == team_id
            types = cells[members, Column.UNIT_TYPE]
            reports.append(
                TeamReport(
                    team=team_id,
                    units=int(members.sum()),
                    active_units=int(
                        (cells[members, Column.STATE] > 0.5).sum()
                    ),
                    knights=int((types == float(UnitType.KNIGHT)).sum()),
                    archers=int((types == float(UnitType.ARCHER)).sum()),
                    healers=int((types == float(UnitType.HEALER)).sum()),
                    total_kills=int(cells[members, Column.KILLS].sum()),
                    total_damage_dealt=float(
                        cells[members, Column.DAMAGE_DEALT].sum()
                    ),
                    total_healing_done=float(
                        cells[members, Column.HEALING_DONE].sum()
                    ),
                    mean_health=float(np.mean(cells[members, Column.HEALTH]))
                    if members.any()
                    else 0.0,
                )
            )
        return cls(teams=(reports[0], reports[1]))

    @property
    def leader(self) -> int:
        """Team with more kills (ties go to team 0)."""
        return 1 if self.teams[1].total_kills > self.teams[0].total_kills else 0

    def describe(self) -> str:
        """Multi-line scoreboard."""
        lines = [team.describe() for team in self.teams]
        lines.append(f"leading team: {self.leader}")
        return "\n".join(lines)
