"""Guards on the checked-in full-scale report artifacts (docs/)."""

import json
import pathlib

import pytest

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs"


class TestFullReport:
    @pytest.fixture(scope="class")
    def report(self):
        path = DOCS / "full_report.txt"
        if not path.exists():
            pytest.skip("full report not generated in this checkout")
        return path.read_text()

    def test_every_paper_artifact_present(self, report):
        for artifact in ("Table 1", "Table 2", "Table 3", "Table 4",
                         "Table 5", "Figure 2(a)", "Figure 2(b)",
                         "Figure 2(c)", "Figure 3", "Figure 4(a)",
                         "Figure 5", "Figure 6(a)"):
            assert artifact in report, artifact

    def test_headline_numbers_recorded(self, report):
        # The calibrated constants the reproduction stands on.
        assert "684.849 ms" in report or "0.68" in report
        assert "7.3" in report  # partial-redo recovery at saturation


class TestExports:
    @pytest.fixture(scope="class")
    def exports(self):
        directory = DOCS / "exports"
        if not directory.exists():
            pytest.skip("exports not generated in this checkout")
        return directory

    def test_json_per_experiment(self, exports):
        names = {path.stem for path in exports.glob("*.json")}
        for required in ("fig2", "fig3", "fig4", "fig5", "fig6",
                         "table5", "alternatives", "engine_recovery"):
            assert required in names, required

    def test_json_parses_and_carries_raw_metrics(self, exports):
        document = json.loads((exports / "fig2.json").read_text())
        assert document["experiment_id"] == "fig2"
        assert "64000" in document["raw"]
        cou = document["raw"]["64000"]["copy-on-update"]
        assert 0 < cou["avg_overhead_s"] < 0.01

    def test_csv_tables_exist(self, exports):
        assert list(exports.glob("fig2_table*.csv"))
