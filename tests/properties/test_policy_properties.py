"""Property tests on the six checkpointing policies (invariant 2).

A random schedule of updates and checkpoint boundaries is driven through each
algorithm, checking:

* **copy-once**: no object is copied (or locked) twice within one checkpoint;
* **copies are first touches**: ``copy_ids``  is always a subset of
  ``first_touch_ids``;
* **coverage**: every object updated between two checkpoint cuts appears in
  a subsequent write set before it can be forgotten (dirty methods), so no
  committed image can silently miss an update.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import ALGORITHM_KEYS, make_policy

NUM_OBJECTS = 24

# A schedule is a list of steps: either an update batch or a boundary.
update_batches = st.lists(
    st.integers(min_value=0, max_value=NUM_OBJECTS - 1), min_size=1, max_size=8
).map(lambda values: np.array(sorted(set(values)), dtype=np.int64))

steps = st.lists(
    st.one_of(
        st.tuples(st.just("updates"), update_batches),
        st.tuples(st.just("boundary"), st.just(None)),
    ),
    min_size=1,
    max_size=40,
)


def drive(policy, schedule):
    """Run the schedule; returns per-checkpoint logs of effects and plans."""
    checkpoints = []   # list of dicts: plan + accumulated effects
    current = None

    def boundary():
        nonlocal current
        if current is not None:
            policy.finish_checkpoint()
        plan = policy.begin_checkpoint()
        current = {
            "plan": plan,
            "locks": [],
            "copies": [],
            "updated": set(),
        }
        checkpoints.append(current)

    for op, payload in schedule:
        if op == "boundary":
            boundary()
        else:
            effects = policy.handle_updates(payload, int(payload.size))
            if current is not None:
                current["locks"].extend(effects.first_touch_ids.tolist())
                current["copies"].extend(effects.copy_ids.tolist())
                current["updated"] |= set(payload.tolist())
    return checkpoints


class TestPolicyInvariants:
    @given(st.sampled_from(ALGORITHM_KEYS), steps)
    @settings(max_examples=120, deadline=None)
    def test_copy_once_per_checkpoint(self, key, schedule):
        policy = make_policy(key, NUM_OBJECTS, full_dump_period=3)
        # Ensure at least one boundary so updates land inside a checkpoint.
        schedule = [("boundary", None)] + schedule
        checkpoints = drive(policy, schedule)
        for record in checkpoints:
            assert len(record["copies"]) == len(set(record["copies"]))
            assert len(record["locks"]) == len(set(record["locks"]))

    @given(st.sampled_from(ALGORITHM_KEYS), steps)
    @settings(max_examples=120, deadline=None)
    def test_copies_subset_of_locks(self, key, schedule):
        policy = make_policy(key, NUM_OBJECTS, full_dump_period=3)
        schedule = [("boundary", None)] + schedule
        for record in drive(policy, schedule):
            assert set(record["copies"]) <= set(record["locks"])

    @given(st.sampled_from(ALGORITHM_KEYS), steps)
    @settings(max_examples=120, deadline=None)
    def test_every_update_reaches_a_later_write_set(self, key, schedule):
        """No lost updates: an object updated during checkpoint i appears in
        the write set of some checkpoint j > i (within the next two
        boundaries for double-backup methods, next full dump for logs)."""
        policy = make_policy(key, NUM_OBJECTS, full_dump_period=3)
        schedule = [("boundary", None)] + schedule + [
            ("boundary", None)] * 4  # enough boundaries to flush both backups
        checkpoints = drive(policy, schedule)
        for index, record in enumerate(checkpoints[:-4]):
            future_writes = set()
            for later in checkpoints[index + 1:]:
                plan = later["plan"]
                if plan.write_ids is None:
                    future_writes |= set(range(NUM_OBJECTS))
                else:
                    future_writes |= set(plan.write_ids.tolist())
            assert record["updated"] <= future_writes

    @given(st.sampled_from(ALGORITHM_KEYS), steps)
    @settings(max_examples=60, deadline=None)
    def test_write_sets_within_bounds(self, key, schedule):
        policy = make_policy(key, NUM_OBJECTS, full_dump_period=3)
        schedule = [("boundary", None)] + schedule
        for record in drive(policy, schedule):
            plan = record["plan"]
            if plan.write_ids is not None:
                ids = plan.write_ids
                assert ids.size <= NUM_OBJECTS
                if ids.size:
                    assert ids.min() >= 0
                    assert ids.max() < NUM_OBJECTS
                    assert len(set(ids.tolist())) == ids.size
