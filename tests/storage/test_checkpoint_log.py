"""Tests for the append-only checkpoint log."""

import numpy as np
import pytest

from repro.config import StateGeometry
from repro.errors import NoConsistentCheckpointError, StorageError
from repro.storage.checkpoint_log import CheckpointLogStore


@pytest.fixture
def geometry():
    return StateGeometry(rows=8, columns=8, cell_bytes=4, object_bytes=32)


@pytest.fixture
def store(tmp_path, geometry):
    with CheckpointLogStore(tmp_path, geometry) as opened:
        yield opened


def payload_for(ids, geometry, fill):
    cells = geometry.cells_per_object
    data = np.zeros((len(ids), cells), dtype=np.uint32)
    for slot, object_id in enumerate(ids):
        data[slot] = fill * 1_000 + object_id
    return data.tobytes()


def image_value(image, geometry, object_id):
    cells = np.frombuffer(image, dtype=np.uint32)
    return cells[object_id * geometry.cells_per_object]


class TestProtocol:
    def test_fresh_log_has_no_checkpoint(self, store):
        with pytest.raises(NoConsistentCheckpointError):
            store.latest_committed()

    def test_commit_and_restore_full_dump(self, store, geometry):
        ids = np.arange(geometry.num_objects)
        store.begin_checkpoint(1, is_full_dump=True)
        store.append_objects(ids, payload_for(ids, geometry, 1))
        store.commit_checkpoint(tick=12)
        image, epoch, tick = store.restore_image()
        assert (epoch, tick) == (1, 12)
        assert image_value(image, geometry, 5) == 1_005

    def test_partials_overlay_full_dump(self, store, geometry):
        ids = np.arange(geometry.num_objects)
        store.begin_checkpoint(1, is_full_dump=True)
        store.append_objects(ids, payload_for(ids, geometry, 1))
        store.commit_checkpoint(tick=0)
        store.begin_checkpoint(2, is_full_dump=False)
        store.append_objects(np.array([3]), payload_for([3], geometry, 2))
        store.commit_checkpoint(tick=5)
        image, epoch, tick = store.restore_image()
        assert (epoch, tick) == (2, 5)
        assert image_value(image, geometry, 3) == 2_003
        assert image_value(image, geometry, 4) == 1_004

    def test_uncommitted_tail_ignored(self, store, geometry):
        ids = np.arange(geometry.num_objects)
        store.begin_checkpoint(1, is_full_dump=True)
        store.append_objects(ids, payload_for(ids, geometry, 1))
        store.commit_checkpoint(tick=0)
        store.begin_checkpoint(2, is_full_dump=False)
        store.append_objects(np.array([3]), payload_for([3], geometry, 9))
        # no commit -- crash
        image, epoch, _ = store.restore_image()
        assert epoch == 1
        assert image_value(image, geometry, 3) == 1_003

    def test_multiple_runs_per_checkpoint(self, store, geometry):
        store.begin_checkpoint(1, is_full_dump=True)
        store.append_objects(np.array([0, 1]), payload_for([0, 1], geometry, 1))
        store.append_objects(np.array([2, 3]), payload_for([2, 3], geometry, 1))
        store.commit_checkpoint(tick=0)
        image, _, _ = store.restore_image()
        assert image_value(image, geometry, 2) == 1_002

    def test_lifecycle_errors(self, store):
        with pytest.raises(StorageError):
            store.append_objects(np.array([0]), b"\x00" * 32)
        with pytest.raises(StorageError):
            store.commit_checkpoint(tick=0)
        store.begin_checkpoint(1, is_full_dump=False)
        with pytest.raises(StorageError):
            store.begin_checkpoint(2, is_full_dump=False)
        store.abort_checkpoint()
        with pytest.raises(StorageError):
            store.abort_checkpoint()

    def test_epoch_must_be_positive(self, store):
        with pytest.raises(StorageError):
            store.begin_checkpoint(0, is_full_dump=False)

    def test_payload_size_checked(self, store):
        store.begin_checkpoint(1, is_full_dump=False)
        with pytest.raises(StorageError):
            store.append_objects(np.array([0, 1]), b"\x00" * 32)

    def test_object_range_checked(self, store, geometry):
        store.begin_checkpoint(1, is_full_dump=False)
        with pytest.raises(StorageError):
            store.append_objects(
                np.array([geometry.num_objects]), b"\x00" * 32
            )


class TestScanCosts:
    def test_restore_scan_bounded_by_full_dump(self, store, geometry):
        ids = np.arange(geometry.num_objects)
        store.begin_checkpoint(1, is_full_dump=True)
        store.append_objects(ids, payload_for(ids, geometry, 1))
        store.commit_checkpoint(tick=0)
        size_after_dump = store.size_bytes()
        scan_all = store.restore_scan_bytes()
        store.begin_checkpoint(2, is_full_dump=False)
        store.append_objects(np.array([0]), payload_for([0], geometry, 2))
        store.commit_checkpoint(tick=1)
        # The scan reaches back exactly to the full dump's begin record.
        scan_with_partial = store.restore_scan_bytes()
        assert scan_with_partial > scan_all
        assert scan_with_partial <= store.size_bytes()
        assert size_after_dump < store.size_bytes()

    def test_scan_without_full_dump_reads_everything(self, store, geometry):
        store.begin_checkpoint(1, is_full_dump=False)
        store.append_objects(np.array([0]), payload_for([0], geometry, 1))
        store.commit_checkpoint(tick=0)
        assert store.restore_scan_bytes() == store.size_bytes()


class TestReopen:
    def test_reopen_and_continue(self, tmp_path, geometry):
        ids = np.arange(geometry.num_objects)
        with CheckpointLogStore(tmp_path, geometry) as store:
            store.begin_checkpoint(1, is_full_dump=True)
            store.append_objects(ids, payload_for(ids, geometry, 1))
            store.commit_checkpoint(tick=3)
        with CheckpointLogStore(tmp_path, geometry) as store:
            assert store.latest_committed() == (1, 3)
            store.begin_checkpoint(2, is_full_dump=False)
            store.append_objects(np.array([1]), payload_for([1], geometry, 2))
            store.commit_checkpoint(tick=4)
            image, epoch, _ = store.restore_image()
            assert epoch == 2
            assert image_value(image, geometry, 1) == 2_001

    def test_torn_tail_truncated(self, tmp_path, geometry):
        with CheckpointLogStore(tmp_path, geometry) as store:
            store.begin_checkpoint(1, is_full_dump=True)
            ids = np.arange(geometry.num_objects)
            store.append_objects(ids, payload_for(ids, geometry, 1))
            store.commit_checkpoint(tick=0)
            path = store.path
        # Chop bytes off the end, as a mid-write power loss would.
        with open(path, "r+b") as handle:
            handle.seek(-10, 2)
            handle.truncate()
        with CheckpointLogStore(tmp_path, geometry) as store:
            # The commit record was damaged, so no checkpoint is recoverable.
            with pytest.raises(NoConsistentCheckpointError):
                store.restore_image()

    def test_wrong_geometry_rejected(self, tmp_path, geometry):
        with CheckpointLogStore(tmp_path, geometry):
            pass
        other = StateGeometry(rows=16, columns=8, cell_bytes=4, object_bytes=32)
        with pytest.raises(StorageError):
            CheckpointLogStore(tmp_path, other)


class TestCompaction:
    def _fill(self, store, geometry, epochs_with_dump):
        ids = np.arange(geometry.num_objects)
        for epoch, full in epochs_with_dump:
            store.begin_checkpoint(epoch, is_full_dump=full)
            if full:
                store.append_objects(ids, payload_for(ids, geometry, epoch))
            else:
                store.append_objects(
                    np.array([epoch % geometry.num_objects]),
                    payload_for([epoch % geometry.num_objects], geometry,
                                epoch),
                )
            store.commit_checkpoint(tick=epoch)

    def test_compaction_reclaims_and_preserves_restore(self, store, geometry):
        self._fill(store, geometry, [(1, True), (2, False), (3, True),
                                     (4, False)])
        image_before, epoch_before, tick_before = store.restore_image()
        reclaimed = store.compact()
        assert reclaimed > 0
        image_after, epoch_after, tick_after = store.restore_image()
        assert image_after == image_before
        assert (epoch_after, tick_after) == (epoch_before, tick_before)

    def test_compaction_without_full_dump_is_noop(self, store, geometry):
        store.begin_checkpoint(1, is_full_dump=False)
        store.append_objects(np.array([0]), payload_for([0], geometry, 1))
        store.commit_checkpoint(tick=0)
        assert store.compact() == 0

    def test_compaction_at_start_is_noop(self, store, geometry):
        self._fill(store, geometry, [(1, True)])
        # The full dump already sits directly after the geometry record;
        # nothing precedes it except that record.
        first = store.compact()
        second = store.compact()
        assert second == 0
        # Restore still works either way.
        store.restore_image()
        del first

    def test_compaction_then_append(self, store, geometry):
        self._fill(store, geometry, [(1, True), (2, False), (3, True)])
        store.compact()
        self._fill(store, geometry, [(4, False)])
        image, epoch, _ = store.restore_image()
        assert epoch == 4

    def test_compaction_mid_checkpoint_rejected(self, store, geometry):
        self._fill(store, geometry, [(1, True)])
        store.begin_checkpoint(2, is_full_dump=False)
        with pytest.raises(StorageError):
            store.compact()

    def test_compaction_survives_reopen(self, tmp_path, geometry):
        with CheckpointLogStore(tmp_path, geometry) as store:
            self._fill(store, geometry, [(1, True), (2, False), (3, True)])
            expected = store.restore_image()
            store.compact()
        with CheckpointLogStore(tmp_path, geometry) as store:
            assert store.restore_image() == expected

    def test_streaming_compaction_with_tail_larger_than_chunk(
        self, store, geometry
    ):
        """The surviving tail must be rewritten correctly in small chunks.

        The tail here (a full dump plus a string of incremental
        checkpoints) is far larger than ``chunk_bytes``, so the rewrite
        loop has to stream it in many pieces without corrupting records.
        """
        epochs = [(1, True), (2, False), (3, True)]
        epochs += [(epoch, False) for epoch in range(4, 20)]
        self._fill(store, geometry, epochs)
        expected = store.restore_image()
        reclaimed = store.compact(chunk_bytes=64)
        assert reclaimed > 0
        assert store.restore_image() == expected
        # The streamed rewrite must leave a log that still accepts appends.
        self._fill(store, geometry, [(20, False)])
        _, epoch, _ = store.restore_image()
        assert epoch == 20

    def test_streaming_compaction_survives_reopen(self, tmp_path, geometry):
        with CheckpointLogStore(tmp_path, geometry) as store:
            epochs = [(1, True), (2, True)]
            epochs += [(epoch, False) for epoch in range(3, 12)]
            self._fill(store, geometry, epochs)
            expected = store.restore_image()
            store.compact(chunk_bytes=16)
        with CheckpointLogStore(tmp_path, geometry) as store:
            assert store.restore_image() == expected

    def test_compaction_rejects_invalid_chunk_size(self, store, geometry):
        self._fill(store, geometry, [(1, True)])
        with pytest.raises(StorageError):
            store.compact(chunk_bytes=0)
        with pytest.raises(StorageError):
            store.compact(chunk_bytes=-8)


class TestVectoredWrites:
    def chunks_for(self, geometry, fill, *id_groups):
        return [
            (np.array(ids, dtype=np.int64), payload_for(ids, geometry, fill))
            for ids in id_groups
        ]

    def test_vectored_round_trip_matches_chunked_appends(
        self, tmp_path, geometry
    ):
        chunks = self.chunks_for(
            geometry, 1, [0, 1, 2], [3, 4, 5], [6, 7]
        )
        with CheckpointLogStore(tmp_path / "vectored", geometry) as vectored:
            vectored.begin_checkpoint(1, is_full_dump=True)
            nbytes = vectored.write_checkpoint_vectored(chunks, cut_tick=12)
            assert nbytes == geometry.num_objects * geometry.object_bytes
            image, epoch, tick = vectored.restore_image()
        with CheckpointLogStore(tmp_path / "chunked", geometry) as chunked:
            chunked.begin_checkpoint(1, is_full_dump=True)
            for ids, payload in chunks:
                chunked.append_objects(ids, payload)
            chunked.commit_checkpoint(tick=12)
            expected_image, expected_epoch, expected_tick = (
                chunked.restore_image()
            )
        assert (epoch, tick) == (expected_epoch, expected_tick) == (1, 12)
        assert image == expected_image

    def test_vectored_partial_overlays_full_dump(self, store, geometry):
        ids = np.arange(geometry.num_objects)
        store.begin_checkpoint(1, is_full_dump=True)
        store.write_checkpoint_vectored(
            [(ids, payload_for(ids, geometry, 1))], cut_tick=0
        )
        store.begin_checkpoint(2, is_full_dump=False)
        store.write_checkpoint_vectored(
            self.chunks_for(geometry, 2, [3], [5]), cut_tick=9
        )
        image, epoch, tick = store.restore_image()
        assert (epoch, tick) == (2, 9)
        assert image_value(image, geometry, 3) == 2_003
        assert image_value(image, geometry, 5) == 2_005
        assert image_value(image, geometry, 4) == 1_004

    def test_vectored_outside_checkpoint_rejected(self, store, geometry):
        with pytest.raises(StorageError):
            store.write_checkpoint_vectored(
                self.chunks_for(geometry, 1, [0]), cut_tick=1
            )

    def test_vectored_validates_every_chunk_before_writing(
        self, store, geometry
    ):
        """A bad chunk anywhere in the batch aborts with zero bytes landed."""
        store.begin_checkpoint(1, is_full_dump=True)
        good = self.chunks_for(geometry, 1, [0, 1])
        bad = [(np.array([2], dtype=np.int64), b"short")]
        with pytest.raises(StorageError):
            store.write_checkpoint_vectored(good + bad, cut_tick=3)
        store.abort_checkpoint()
        with pytest.raises(NoConsistentCheckpointError):
            store.restore_image()

    @pytest.mark.parametrize("policy,expected_fsyncs", [
        ("never", 0), ("commit", 1), ("always", 1),
    ])
    def test_vectored_commit_fsync_policy(
        self, tmp_path, geometry, monkeypatch, policy, expected_fsyncs
    ):
        """The gathered commit-marker write honors the fsync policy."""
        import os as os_module
        with CheckpointLogStore(
            tmp_path, geometry, fsync_policy=policy
        ) as store:
            counts = {"fsyncs": 0}
            real_fsync = os_module.fsync

            def counting_fsync(fd):
                counts["fsyncs"] += 1
                real_fsync(fd)

            monkeypatch.setattr(
                "repro.storage.checkpoint_log.os.fsync", counting_fsync
            )
            ids = np.arange(geometry.num_objects)
            store.begin_checkpoint(1, is_full_dump=True)
            counts["fsyncs"] = 0
            store.write_checkpoint_vectored(
                [(ids, payload_for(ids, geometry, 1))], cut_tick=3
            )
            assert counts["fsyncs"] == expected_fsyncs

    @pytest.mark.parametrize("policy,expected_fsyncs", [
        ("never", 0), ("commit", 1),
    ])
    def test_chunked_commit_fsync_policy(
        self, tmp_path, geometry, monkeypatch, policy, expected_fsyncs
    ):
        """Chunked appends fsync only at the commit record under commit."""
        import os as os_module
        with CheckpointLogStore(
            tmp_path, geometry, fsync_policy=policy
        ) as store:
            counts = {"fsyncs": 0}
            real_fsync = os_module.fsync

            def counting_fsync(fd):
                counts["fsyncs"] += 1
                real_fsync(fd)

            monkeypatch.setattr(
                "repro.storage.checkpoint_log.os.fsync", counting_fsync
            )
            ids = np.arange(geometry.num_objects)
            store.begin_checkpoint(1, is_full_dump=True)
            counts["fsyncs"] = 0
            store.append_objects(ids[:4], payload_for(ids[:4], geometry, 1))
            store.append_objects(ids[4:], payload_for(ids[4:], geometry, 1))
            assert counts["fsyncs"] == 0
            store.commit_checkpoint(tick=3)
            assert counts["fsyncs"] == expected_fsyncs

    def test_torn_gathered_write_never_commits(self, tmp_path, geometry):
        """Any prefix of the gathered writev restores the prior checkpoint.

        The commit marker is the last iovec entry, so a crash that lands
        only part of the gathered write can lose checkpoint 2 but can never
        produce a committed-but-torn image.
        """
        import os as os_module
        ids = np.arange(geometry.num_objects)
        with CheckpointLogStore(tmp_path, geometry) as store:
            store.begin_checkpoint(1, is_full_dump=True)
            store.write_checkpoint_vectored(
                [(ids, payload_for(ids, geometry, 1))], cut_tick=5
            )
            path = store._path
            committed_size = os_module.path.getsize(path)
            store.begin_checkpoint(2, is_full_dump=True)
            begin_size = os_module.path.getsize(path)
            store.write_checkpoint_vectored(
                self.chunks_for(geometry, 2, [0, 1, 2, 3], [4, 5, 6, 7]),
                cut_tick=9,
            )
            full_size = os_module.path.getsize(path)
        assert committed_size < begin_size < full_size
        for torn_size in (
            begin_size, (begin_size + full_size) // 2, full_size - 1
        ):
            torn_path = tmp_path / f"torn-{torn_size}"
            torn_path.mkdir()
            target = torn_path / CheckpointLogStore.FILE_NAME
            with open(path, "rb") as source:
                target.write_bytes(source.read(torn_size))
            with CheckpointLogStore(torn_path, geometry) as reopened:
                image, epoch, tick = reopened.restore_image()
            assert (epoch, tick) == (1, 5)
            assert image_value(image, geometry, 7) == 1_007
