"""Tests for the span tracer, its no-op fast path, and the ring sink."""

import json

import pytest

from repro.obs.metrics import global_registry, reset_global_registry
from repro.obs.trace import (
    SharedRingTraceSink,
    Tracer,
    _NOOP_SPAN,
    configure_tracing,
    drain_ring_events,
    get_tracer,
    tracing_enabled,
)
from repro.state.ring import SharedCommandRing, ring_slots
from repro.state.shared import SharedArena


class TestDisabledFastPath:
    def test_disabled_span_is_the_shared_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything")
        assert span is _NOOP_SPAN
        assert tracer.span("other") is span  # no allocation per call
        with span:
            pass
        assert len(tracer) == 0

    def test_disabled_instant_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.instant("marker", detail=1)
        assert tracer.drain() == []


class TestEnabledRecording:
    def test_span_records_complete_event(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", shard=3):
            pass
        (event,) = tracer.drain()
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert isinstance(event["ts"], int)
        assert event["pid"] == tracer.pid
        assert event["args"] == {"shard": 3}

    def test_instant_records_marker(self):
        tracer = Tracer(enabled=True)
        tracer.instant("stall", tick=7)
        (event,) = tracer.drain()
        assert event["ph"] == "i"
        assert event["args"] == {"tick": 7}

    def test_nested_spans_order_and_drain_empties(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        events = tracer.drain()
        # The inner span exits (and records) first.
        assert [e["name"] for e in events] == ["inner", "outer"]
        assert tracer.drain() == []

    def test_span_records_even_when_body_raises(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("explodes"):
                raise ValueError("boom")
        assert [e["name"] for e in tracer.drain()] == ["explodes"]

    def test_peek_does_not_consume(self):
        tracer = Tracer(enabled=True)
        tracer.instant("once")
        assert len(tracer.peek()) == 1
        assert len(tracer.peek()) == 1

    def test_buffer_is_bounded(self):
        tracer = Tracer(enabled=True, buffer_events=4)
        for index in range(10):
            tracer.instant(f"e{index}")
        names = [e["name"] for e in tracer.drain()]
        assert names == ["e6", "e7", "e8", "e9"]


class TestRingSink:
    @pytest.fixture
    def trace_ring(self):
        arena = SharedArena.create(ring_slots(4096, prefix="trc"))
        try:
            yield SharedCommandRing(arena, prefix="trc")
        finally:
            arena.destroy()

    def test_events_round_trip_through_ring(self, trace_ring):
        tracer = Tracer(enabled=True)
        tracer.set_sink(SharedRingTraceSink(trace_ring))
        with tracer.span("flush", epoch=2):
            pass
        assert len(tracer) == 0  # routed to the sink, not the buffer
        (event,) = drain_ring_events(trace_ring)
        assert event["name"] == "flush"
        assert event["args"] == {"epoch": 2}

    def test_full_ring_drops_and_counts(self, trace_ring):
        reset_global_registry()
        tracer = Tracer(enabled=True)
        tracer.set_sink(SharedRingTraceSink(trace_ring))
        for index in range(200):
            tracer.instant("spam", i=index)
        dropped = global_registry().value("trace_events_dropped")
        assert dropped > 0
        assert len(drain_ring_events(trace_ring)) + dropped == 200

    def test_garbage_records_are_skipped(self, trace_ring):
        trace_ring.try_push(b"\xff\xfenot json")
        trace_ring.try_push(
            json.dumps({"name": "ok", "ph": "i"}).encode("utf-8")
        )
        events = drain_ring_events(trace_ring)
        assert [e["name"] for e in events] == ["ok"]

    def test_clearing_sink_restores_buffering(self, trace_ring):
        tracer = Tracer(enabled=True)
        tracer.set_sink(SharedRingTraceSink(trace_ring))
        tracer.set_sink(None)
        tracer.instant("local")
        assert len(tracer) == 1
        assert drain_ring_events(trace_ring) == []


class TestGlobalTracer:
    def test_configure_toggles_shared_instance(self):
        tracer = configure_tracing(True)
        try:
            assert tracing_enabled()
            assert get_tracer() is tracer
            with get_tracer().span("probe"):
                pass
            assert any(e["name"] == "probe" for e in tracer.drain())
        finally:
            configure_tracing(False)
            tracer.drain()
        assert not tracing_enabled()
