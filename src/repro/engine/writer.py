"""The asynchronous checkpoint writer thread shared by engine and validation.

The paper's architecture overlaps the game loop with checkpoint I/O: "we
write the state to stable storage asynchronously" (Section 3.2), with the
one thread-safety requirement that ``Write-Objects-To-Stable-Storage``
observes checkpoint-cut values while the mutator keeps updating (Section 4.1).
:class:`AsyncCheckpointWriter` is that writer thread, made a first-class
subsystem:

* the mutator thread hands over one :class:`CheckpointJob` per checkpoint --
  the sorted write set plus a :class:`PayloadSource` that produces
  cut-consistent payloads (reading the double-buffered snapshot for saved
  objects and the live table otherwise, under striped per-object locks);
* the writer drains the job in bounded chunks through the existing stores
  (:class:`~repro.storage.double_backup.DoubleBackupStore` in-place sorted
  runs, :class:`~repro.storage.checkpoint_log.CheckpointLogStore` sequential
  appends), commits the checkpoint, and records its duration;
* errors never vanish into the thread: they are re-raised on the mutator's
  next :meth:`check`/:meth:`submit`/:meth:`close`, and a close that times
  out while the thread is still alive raises instead of silently dropping a
  stuck writer.

Both :class:`~repro.engine.executor.RealExecutor` (all six algorithms) and
:class:`~repro.validation.realimpl.RealCheckpointServer` (the Section 6
measurement harness) run their checkpoints through this one class, so the
engine and the Figure 6 validation exercise identical I/O code.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Tuple, Union

import numpy as np

from repro.errors import CheckpointWriterError
from repro.obs.metrics import (
    DURATION_BUCKETS_US,
    Histogram,
    HistogramSnapshot,
)
from repro.storage.checkpoint_log import CheckpointLogStore
from repro.storage.double_backup import DoubleBackupStore

StoreType = Union[DoubleBackupStore, CheckpointLogStore]

_SENTINEL = None

#: Default number of objects read and written per writer round.  Small enough
#: that the stripe locks are held only briefly, large enough that the store
#: sees batched I/O (256 KiB at the paper's 512-byte objects).
DEFAULT_CHUNK_OBJECTS = 512

#: Largest checkpoint the coalesced flush path will stage in memory before
#: landing it as one gathered write; bigger jobs fall back to the chunked
#: path rather than ballooning the writer's footprint.
DEFAULT_MAX_GATHER_BYTES = 64 << 20

#: Newest per-checkpoint durations a :class:`WriterStats` retains; long-lived
#: fleets keep a sliding window instead of an ever-growing list.
DURATION_WINDOW = 4096


def flush_checkpoint_job(
    store: StoreType,
    job: CheckpointJob,
    chunk_objects: int,
    should_abandon=None,
    on_chunk_written=None,
) -> bool:
    """Flush one :class:`CheckpointJob` through a store, chunk by chunk.

    The single flush routine shared by :class:`AsyncCheckpointWriter` and
    :class:`~repro.engine.writer_pool.CheckpointWriterPool`: begin, write the
    job's object ids in ``chunk_objects`` batches (reading cut-consistent
    payloads from the job's source), commit.  ``should_abandon`` is polled at
    every chunk boundary; returning True aborts the checkpoint (crash
    semantics -- the store keeps an uncommitted checkpoint) and the function
    returns False.  ``on_chunk_written`` receives the byte count of each
    chunk as it lands, for cross-thread accounting.
    """
    double_backup = isinstance(store, DoubleBackupStore)
    if double_backup:
        store.begin_checkpoint(job.backup_index, job.epoch)
    else:
        store.begin_checkpoint(job.epoch, job.is_full_dump)
    object_bytes = store.geometry.object_bytes
    ids = job.object_ids
    for start in range(0, ids.size, chunk_objects):
        if should_abandon is not None and should_abandon():
            store.abort_checkpoint()
            return False
        chunk = ids[start: start + chunk_objects]
        payloads = job.source.read_payloads(chunk)
        if double_backup:
            store.write_objects(chunk, payloads)
        else:
            store.append_objects(chunk, payloads)
        if on_chunk_written is not None:
            on_chunk_written(chunk.size * object_bytes)
    if should_abandon is not None and should_abandon():
        store.abort_checkpoint()
        return False
    store.commit_checkpoint(job.cut_tick)
    return True


def flush_checkpoint_job_vectored(
    store: StoreType,
    job: CheckpointJob,
    chunk_objects: int,
    should_abandon=None,
    on_chunk_written=None,
) -> bool:
    """Flush one :class:`CheckpointJob` as a single coalesced store write.

    The cut-consistent payload reads stay chunked exactly like
    :func:`flush_checkpoint_job` -- ``chunk_objects`` at a time, so stripe
    locks are held only briefly and ``should_abandon`` is honored at every
    chunk boundary -- but nothing touches the disk until the whole job has
    been gathered.  The accumulated chunks then land through the store's
    ``write_checkpoint_vectored`` entry point: one gathered ``writev`` of
    every record plus the commit marker for the log organization, one
    globally-sorted ``pwritev`` pass for the double backup, and at most one
    data fsync either way.

    An abandon request during the gather aborts before a single byte is
    written (the strictest possible crash semantics: the store keeps only
    its begin marker); a store fault surfaces exactly as in the chunked
    path.  ``on_chunk_written`` receives the job's full byte count once the
    gathered write has landed.
    """
    double_backup = isinstance(store, DoubleBackupStore)
    if double_backup:
        store.begin_checkpoint(job.backup_index, job.epoch)
    else:
        store.begin_checkpoint(job.epoch, job.is_full_dump)
    ids = job.object_ids
    chunks = []
    for start in range(0, ids.size, chunk_objects):
        if should_abandon is not None and should_abandon():
            store.abort_checkpoint()
            return False
        chunk = ids[start: start + chunk_objects]
        chunks.append((chunk, job.source.read_payloads(chunk)))
    if should_abandon is not None and should_abandon():
        store.abort_checkpoint()
        return False
    nbytes = store.write_checkpoint_vectored(chunks, job.cut_tick)
    if on_chunk_written is not None:
        on_chunk_written(nbytes)
    return True


class PayloadSource(Protocol):
    """Produces cut-consistent payload bytes for a batch of objects.

    Implementations must be safe to call from the writer thread while the
    mutator keeps updating: they take the stripe locks covering the batch,
    read the snapshot buffer for objects whose old value was saved, and the
    live table for the rest (whose live value *is* the cut value).
    """

    def read_payloads(self, object_ids: np.ndarray):
        """Return a contiguous bytes-like buffer of the objects' payloads."""
        ...


@dataclass(frozen=True)
class CheckpointJob:
    """One checkpoint's worth of asynchronous write work."""

    #: Sorted ids of the objects to write.
    object_ids: np.ndarray
    #: Checkpoint epoch (1-based, as the stores expect).
    epoch: int
    #: Tick the checkpoint's cut happened at (recorded on commit).
    cut_tick: int
    #: Where cut-consistent payloads come from.
    source: PayloadSource
    #: Target backup file (double-backup stores only).
    backup_index: Optional[int] = None
    #: Whether this is an every-C-th full flush (log stores only).
    is_full_dump: bool = False


@dataclass
class WriterStats:
    """Cross-thread snapshot of the writer's lifetime counters."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_abandoned: int = 0
    bytes_written: int = 0
    #: Wall-clock seconds the thread spent inside jobs (begin to commit).
    busy_seconds: float = 0.0
    #: Per-checkpoint durations, in completion order (newest
    #: :data:`DURATION_WINDOW` entries -- a sliding window, not a leak).
    durations: List[float] = field(default_factory=list)
    #: ``(epoch, cut_tick)`` of the newest committed checkpoint.
    last_committed: Optional[Tuple[int, int]] = None
    #: Fixed-bucket distribution of every duration ever recorded (not just
    #: the window), in microseconds; filled on snapshots.
    duration_histogram: Optional[HistogramSnapshot] = field(
        default=None, compare=False
    )
    # Copy-on-write bookkeeping: True while ``durations`` is shared with a
    # snapshot, so the next record copies before mutating and the scrape
    # itself is O(1) instead of O(samples).
    _durations_shared: bool = field(default=False, repr=False, compare=False)
    _live_histogram: Optional[Histogram] = field(
        default=None, repr=False, compare=False
    )

    def record_duration(self, elapsed: float) -> None:
        """Append one checkpoint duration, keeping the window bounded."""
        if self._durations_shared:
            self.durations = list(self.durations)
            self._durations_shared = False
        self.durations.append(elapsed)
        if len(self.durations) > DURATION_WINDOW:
            del self.durations[: len(self.durations) - DURATION_WINDOW]
        if self._live_histogram is None:
            self._live_histogram = Histogram(
                np.zeros(len(DURATION_BUCKETS_US) + 3, dtype=np.int64),
                0,
                DURATION_BUCKETS_US,
            )
        self._live_histogram.observe(elapsed * 1e6)

    def snapshot(self) -> "WriterStats":
        """Detached copy for scrapers, O(buckets) however many samples.

        The durations list is published *by reference* and both sides flip
        to copy-on-write: the next :meth:`record_duration` copies before
        appending, so the snapshot never mutates under its holder and the
        scrape never pays an O(window) copy.
        """
        snap = WriterStats(
            jobs_submitted=self.jobs_submitted,
            jobs_completed=self.jobs_completed,
            jobs_abandoned=self.jobs_abandoned,
            bytes_written=self.bytes_written,
            busy_seconds=self.busy_seconds,
            durations=self.durations,
            last_committed=self.last_committed,
            duration_histogram=(
                self._live_histogram.snapshot()
                if self._live_histogram is not None
                else None
            ),
        )
        snap._durations_shared = True
        self._durations_shared = True
        return snap


class AsyncCheckpointWriter:
    """A background thread that flushes checkpoints through a real store.

    One job is in flight at a time (checkpoints are sequential by
    construction -- the framework starts a new one only after the previous
    is durable), so the handoff is a single-slot queue guarded by an *idle*
    event.  The mutator submits, polls :attr:`idle` at tick boundaries, and
    the writer chews through the job in ``chunk_objects`` batches.
    """

    def __init__(
        self,
        store: StoreType,
        chunk_objects: int = DEFAULT_CHUNK_OBJECTS,
        name: str = "repro-ckpt-writer",
    ) -> None:
        if chunk_objects <= 0:
            raise CheckpointWriterError(
                f"chunk_objects must be positive, got {chunk_objects}"
            )
        self._store = store
        self._chunk = chunk_objects
        self._name = name
        self._jobs: "queue.Queue" = queue.Queue()
        self._idle = threading.Event()
        self._idle.set()
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._stats = WriterStats()
        self._closed = False

    # ------------------------------------------------------------------
    # Mutator-side interface
    # ------------------------------------------------------------------

    @property
    def store(self) -> StoreType:
        """The stable-storage structure this writer flushes through."""
        return self._store

    @property
    def idle(self) -> bool:
        """True when no checkpoint write is in flight."""
        return self._idle.is_set()

    @property
    def error(self) -> Optional[BaseException]:
        """The pending writer-thread failure, if any."""
        return self._error

    def start(self) -> None:
        """Start the writer thread (idempotent)."""
        if self._closed:
            raise CheckpointWriterError("writer is closed")
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._run, name=self._name, daemon=True
            )
            self._thread.start()

    def check(self) -> None:
        """Re-raise a pending writer-thread failure on the caller."""
        if self._error is not None:
            raise CheckpointWriterError(
                f"asynchronous checkpoint writer failed: {self._error!r}"
            ) from self._error

    def submit(self, job: CheckpointJob) -> None:
        """Hand one checkpoint to the writer thread.

        The previous job must have finished (the framework guarantees this:
        a new checkpoint starts only once the last one is durable).
        """
        self.check()
        if not self._idle.is_set():
            raise CheckpointWriterError(
                "checkpoint job submitted while the previous one is in flight"
            )
        self.start()
        with self._lock:
            self._stats.jobs_submitted += 1
        self._idle.clear()
        self._jobs.put(job)

    def wait_idle(
        self, timeout: Optional[float] = None, check: bool = True
    ) -> bool:
        """Block until the in-flight job finishes; False on timeout.

        With ``check=False`` a pending writer error is left for the caller
        to inspect via :attr:`error` instead of being raised here.
        """
        finished = self._idle.wait(timeout)
        if check:
            self.check()
        return finished

    def stats(self) -> WriterStats:
        """Consistent snapshot of the lifetime counters (O(buckets))."""
        with self._lock:
            return self._stats.snapshot()

    @property
    def last_committed(self) -> Optional[Tuple[int, int]]:
        """``(epoch, cut_tick)`` of the newest committed checkpoint."""
        with self._lock:
            return self._stats.last_committed

    def close(self, timeout: float = 30.0, wait: bool = True) -> None:
        """Stop the writer thread and join it.

        ``wait=True`` lets the in-flight job run to commit (orderly
        shutdown); ``wait=False`` tells the thread to abandon the job at the
        next chunk boundary (crash semantics -- the store is left with an
        uncommitted checkpoint, exactly like a process kill).

        Raises :class:`~repro.errors.CheckpointWriterError` if the thread is
        still alive after ``timeout`` seconds -- a stuck writer must never be
        silently swallowed -- chaining the pending writer error if there is
        one.  A pending error is also re-raised after a successful join
        unless the writer is being abandoned.
        """
        self._closed = True
        thread = self._thread
        if thread is None:
            if wait:
                self.check()
            return
        if not wait:
            self._stop.set()
        self._jobs.put(_SENTINEL)
        thread.join(timeout=timeout)
        if thread.is_alive():
            message = (
                f"checkpoint writer thread did not stop within {timeout:.1f}s"
            )
            if self._error is not None:
                message += f" (pending writer error: {self._error!r})"
            raise CheckpointWriterError(message) from self._error
        self._thread = None
        if wait:
            self.check()

    def kill(self, timeout: float = 30.0) -> None:
        """Crash-style shutdown: abandon the in-flight job and join."""
        self.close(timeout=timeout, wait=False)

    # ------------------------------------------------------------------
    # Writer thread
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            job = self._jobs.get()
            if job is _SENTINEL:
                return
            try:
                completed = self._write_checkpoint(job)
            except BaseException as error:  # surfaced on the mutator side
                self._error = error
                self._idle.set()
                return
            self._idle.set()
            if not completed:
                return  # stop was requested mid-job

    def _write_checkpoint(self, job: CheckpointJob) -> bool:
        """Flush one checkpoint; False if abandoned on a stop request."""
        started = time.perf_counter()

        def on_chunk_written(nbytes: int) -> None:
            with self._lock:
                self._stats.bytes_written += nbytes

        completed = flush_checkpoint_job(
            self._store,
            job,
            self._chunk,
            should_abandon=self._stop.is_set,
            on_chunk_written=on_chunk_written,
        )
        if not completed:
            with self._lock:
                self._stats.jobs_abandoned += 1
            return False
        elapsed = time.perf_counter() - started
        with self._lock:
            self._stats.jobs_completed += 1
            self._stats.busy_seconds += elapsed
            self._stats.record_duration(elapsed)
            self._stats.last_committed = (job.epoch, job.cut_tick)
        return True
