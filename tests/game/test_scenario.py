"""Tests for battle scenario configuration."""

import pytest

from repro.config import GAME_GEOMETRY
from repro.errors import GameError
from repro.game.scenario import PAPER_SCALE_SCENARIO, BattleScenario


class TestBattleScenario:
    def test_defaults_valid(self):
        scenario = BattleScenario()
        assert scenario.num_units == 8_192
        assert scenario.healer_fraction == pytest.approx(0.2)

    def test_geometry_has_13_columns(self):
        assert BattleScenario().geometry.columns == 13

    def test_paper_scale_matches_table5(self):
        assert PAPER_SCALE_SCENARIO.geometry == GAME_GEOMETRY

    def test_base_positions_opposed(self):
        scenario = BattleScenario()
        base0 = scenario.base_position(0)
        base1 = scenario.base_position(1)
        assert base0 != base1
        size = scenario.arena_size
        for x, y in (base0, base1):
            assert 0 <= x <= size
            assert 0 <= y <= size

    def test_base_position_team_validated(self):
        with pytest.raises(GameError):
            BattleScenario().base_position(2)

    def test_arena_scales_with_units(self):
        small = BattleScenario(num_units=1_000).arena_size
        large = BattleScenario(num_units=100_000).arena_size
        assert large > small

    def test_rejects_tiny_population(self):
        with pytest.raises(GameError):
            BattleScenario(num_units=1)

    def test_rejects_bad_fractions(self):
        with pytest.raises(GameError):
            BattleScenario(active_fraction=0.0)
        with pytest.raises(GameError):
            BattleScenario(swap_fraction=1.5)
        with pytest.raises(GameError):
            BattleScenario(knight_fraction=0.8, archer_fraction=0.3)

    def test_rejects_nonpositive_health(self):
        with pytest.raises(GameError):
            BattleScenario(max_health=0.0)
