"""Integration: the full Section 5.4 pipeline on the real game.

Battle -> instrumented trace -> checkpoint simulation, plus the durable
engine running the same game with crash recovery -- the complete story the
paper tells, end to end, in one test module.
"""

import numpy as np
import pytest

from repro.config import PAPER_HARDWARE, SimulationConfig
from repro.engine import DurableGameServer, RecoveryManager
from repro.game import (
    BattleReport,
    BattleScenario,
    KnightsArchersGame,
    record_trace,
)
from repro.simulation.simulator import CheckpointSimulator, PrecomputedObjectTrace
from repro.state import GameStateTable
from repro.workloads import TraceStatistics, load_trace, save_trace


@pytest.fixture(scope="module")
def battle():
    scenario = BattleScenario(num_units=4_096)
    game = KnightsArchersGame(scenario)
    table = GameStateTable(scenario.geometry, dtype=np.float32)
    trace = record_trace(game, 150, seed=9, table=table)
    return scenario, game, table, trace


class TestTracePipeline:
    def test_trace_statistics_shape(self, battle):
        scenario, _game, _table, trace = battle
        stats = TraceStatistics.from_trace(trace)
        active = scenario.num_units * scenario.active_fraction
        per_active = stats.avg_updates_per_tick / active
        # Paper's trace: 35,590 updates for 40,012 active units ~ 0.89.
        assert 0.5 < per_active < 1.5
        # Positions dominate, health is stable.
        x_and_y = stats.column_update_counts[0] + stats.column_update_counts[1]
        assert x_and_y > 0.5 * stats.total_updates

    def test_trace_survives_disk_round_trip(self, battle, tmp_path):
        _scenario, _game, _table, trace = battle
        path = tmp_path / "battle.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.total_updates() == trace.total_updates()

    def test_simulating_the_battle_trace(self, battle):
        scenario, _game, _table, trace = battle
        config = SimulationConfig(
            hardware=PAPER_HARDWARE,
            geometry=scenario.geometry,
            warmup_ticks=20,
        )
        simulator = CheckpointSimulator(config)
        results = {
            r.algorithm_key: r
            for r in simulator.run_all(PrecomputedObjectTrace(trace))
        }
        # Section 5.4 orderings.
        assert (
            results["cou-partial-redo"].recovery_time
            > results["copy-on-update"].recovery_time
        )
        assert (
            results["partial-redo"].recovery_time
            > results["atomic-copy"].recovery_time
        )
        # Section 5.4: on game traces "Atomic-Copy-Dirty-Objects is in fact
        # the method with lower average overhead time, having a value
        # slightly lower than Naive-Snapshot".
        assert (
            results["atomic-copy"].avg_overhead
            < results["naive-snapshot"].avg_overhead
        )
        assert (
            results["atomic-copy"].avg_overhead
            < results["copy-on-update"].avg_overhead
        )
        # The log-organized methods checkpoint faster (sequential writes of
        # the small dirty set) but pay for it at recovery, as asserted above.
        assert (
            results["cou-partial-redo"].avg_checkpoint_time
            < results["copy-on-update"].avg_checkpoint_time
        )

    def test_battle_report_totals(self, battle):
        scenario, _game, table, _trace = battle
        report = BattleReport.from_table(table)
        assert sum(team.units for team in report.teams) == scenario.num_units


class TestFullPaperScale:
    def test_real_game_at_400k_units_matches_table5(self):
        """The real game at the paper's exact scale produces a trace within
        10% of Table 5's 35,590 updates/tick."""
        from repro.game.scenario import PAPER_SCALE_SCENARIO

        game = KnightsArchersGame(PAPER_SCALE_SCENARIO)
        trace = record_trace(game, 40, seed=1)
        stats = TraceStatistics.from_trace(trace)
        assert stats.geometry.rows == 400_128
        assert stats.geometry.columns == 13
        assert abs(stats.avg_updates_per_tick - 35_590) / 35_590 < 0.10


class TestDurableGamePipeline:
    def test_game_crash_recovery_end_to_end(self, tmp_path):
        scenario = BattleScenario(num_units=1_024)
        seed = 21

        reference = DurableGameServer(
            KnightsArchersGame(scenario), tmp_path / "ref",
            algorithm="copy-on-update", seed=seed,
        )
        reference.run_ticks(90)

        victim = DurableGameServer(
            KnightsArchersGame(scenario), tmp_path / "victim",
            algorithm="copy-on-update", seed=seed,
        )
        victim.run_ticks(90)
        victim.crash()

        report = RecoveryManager(
            KnightsArchersGame(scenario), victim.directory, seed=seed
        ).recover()
        assert report.table.equals(reference.table)
        assert report.ticks_replayed < 90  # a checkpoint actually helped
        assert BattleReport.from_table(report.table).teams[0].units == 512
        reference.close()
