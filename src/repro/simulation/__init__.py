"""The paper's simulation model (Section 4.2), in Python.

"Our simulation does not perform any actual I/O operations or memory copies.
Rather, we keep track of which objects have been updated since the last
checkpoint and compute the time necessary for these operations based on the
detailed simulation model."

* :class:`~repro.simulation.costmodel.CostModel` -- the analytic formulas:
  synchronous copy time, asynchronous write time for log and double-backup
  organizations, per-update overhead, restore time.
* :class:`~repro.simulation.disk.DiskWriteScheduler` -- tracks the one
  in-flight asynchronous checkpoint write on the dedicated recovery disk.
* :class:`~repro.simulation.simulator.CheckpointSimulator` -- the tick loop
  that drives a policy through the framework and records per-tick latency,
  checkpoint times, and recovery estimates.
* :class:`~repro.simulation.results.SimulationResult` -- per-tick series,
  per-checkpoint records, and the aggregates the figures plot.
"""

from repro.simulation.costmodel import CostModel
from repro.simulation.disk import DiskWriteScheduler, WriteJob
from repro.simulation.recovery import RecoveryEstimate, estimate_recovery
from repro.simulation.results import CheckpointRecord, SimulationResult
from repro.simulation.simulator import CheckpointSimulator, SimulatedExecutor

__all__ = [
    "CheckpointRecord",
    "CheckpointSimulator",
    "CostModel",
    "DiskWriteScheduler",
    "RecoveryEstimate",
    "SimulatedExecutor",
    "SimulationResult",
    "WriteJob",
    "estimate_recovery",
]
