"""Small helpers for byte and time quantities.

The simulation model works in SI units throughout: seconds for durations and
bytes (or bytes/second) for sizes and bandwidths.  These helpers exist to make
configuration code and reports read like the paper ("60 MB/s", "2.2 GB/s",
"17 msec") rather than as piles of scientific notation.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# The paper quotes decimal (SI) units for bandwidths, e.g. 60 MB/s disks and
# 2.2 GB/s memory; we follow that convention for the MB/GB constructors.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

MICROSECOND = 1e-6
MILLISECOND = 1e-3
NANOSECOND = 1e-9


def megabytes(value: float) -> float:
    """Return *value* megabytes expressed in bytes (decimal, as in the paper)."""
    return value * MB


def gigabytes(value: float) -> float:
    """Return *value* gigabytes expressed in bytes (decimal, as in the paper)."""
    return value * GB


def nanoseconds(value: float) -> float:
    """Return *value* nanoseconds expressed in seconds."""
    return value * NANOSECOND


def milliseconds(value: float) -> float:
    """Return *value* milliseconds expressed in seconds."""
    return value * MILLISECOND


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a human-friendly decimal unit suffix."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    if num_bytes >= GB:
        return f"{num_bytes / GB:.2f} GB"
    if num_bytes >= MB:
        return f"{num_bytes / MB:.2f} MB"
    if num_bytes >= KB:
        return f"{num_bytes / KB:.2f} KB"
    return f"{num_bytes:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration with the unit the paper would use for its size."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= MILLISECOND:
        return f"{seconds / MILLISECOND:.3f} ms"
    if seconds >= MICROSECOND:
        return f"{seconds / MICROSECOND:.3f} us"
    return f"{seconds / NANOSECOND:.1f} ns"


def format_rate(bytes_per_second: float) -> str:
    """Render a bandwidth as the paper does (e.g. ``60.0 MB/s``)."""
    return f"{format_bytes(bytes_per_second)}/s"
