"""Shared on-disk framing helpers: headers, records, and checksums.

All multi-byte integers are little-endian.  Every header and record carries a
CRC-32 so recovery can distinguish a torn write from valid data.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import List, Sequence

from repro.config import StateGeometry
from repro.errors import CorruptCheckpointError

#: Common magic prefix for all repro storage files.
MAGIC = b"RPRO"

#: Storage format version.
FORMAT_VERSION = 1


def crc32(data: bytes) -> int:
    """CRC-32 of ``data`` as an unsigned 32-bit integer."""
    return zlib.crc32(data) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Geometry stamp: embedded in every store so files cannot be opened with the
# wrong table shape.
# ---------------------------------------------------------------------------

_GEOMETRY_STRUCT = struct.Struct("<qqqq")


def pack_geometry(geometry: StateGeometry) -> bytes:
    """Serialize a :class:`StateGeometry` (32 bytes)."""
    return _GEOMETRY_STRUCT.pack(
        geometry.rows, geometry.columns, geometry.cell_bytes, geometry.object_bytes
    )


def unpack_geometry(data: bytes) -> StateGeometry:
    """Inverse of :func:`pack_geometry`."""
    rows, columns, cell_bytes, object_bytes = _GEOMETRY_STRUCT.unpack(data)
    return StateGeometry(
        rows=rows, columns=columns, cell_bytes=cell_bytes, object_bytes=object_bytes
    )


GEOMETRY_BYTES = _GEOMETRY_STRUCT.size


# ---------------------------------------------------------------------------
# Backup-file header (double-backup organization)
# ---------------------------------------------------------------------------

#: Header state: no complete checkpoint has ever been committed to this file.
STATE_EMPTY = 0
#: Header state: a checkpoint write is in progress; the image is torn.
STATE_IN_PROGRESS = 1
#: Header state: the image is a complete, consistent checkpoint.
STATE_COMPLETE = 2

_HEADER_STRUCT = struct.Struct("<4sIq qq I")  # magic, version, state, epoch, tick, crc
BACKUP_HEADER_BYTES = _HEADER_STRUCT.size + GEOMETRY_BYTES


@dataclass(frozen=True)
class BackupHeader:
    """Metadata block at the start of each backup file."""

    state: int
    epoch: int
    tick: int
    geometry: StateGeometry

    def pack(self) -> bytes:
        geometry_bytes = pack_geometry(self.geometry)
        body = _HEADER_STRUCT.pack(
            MAGIC, FORMAT_VERSION, self.state, self.epoch, self.tick, 0
        )
        # CRC covers everything except the CRC field itself (last 4 bytes).
        checksum = crc32(body[:-4] + geometry_bytes)
        body = _HEADER_STRUCT.pack(
            MAGIC, FORMAT_VERSION, self.state, self.epoch, self.tick, checksum
        )
        return body + geometry_bytes

    @classmethod
    def unpack(cls, data: bytes) -> "BackupHeader":
        if len(data) < BACKUP_HEADER_BYTES:
            raise CorruptCheckpointError(
                f"backup header truncated: {len(data)} bytes"
            )
        body = data[: _HEADER_STRUCT.size]
        geometry_bytes = data[_HEADER_STRUCT.size: BACKUP_HEADER_BYTES]
        magic, version, state, epoch, tick, checksum = _HEADER_STRUCT.unpack(body)
        if magic != MAGIC:
            raise CorruptCheckpointError(f"bad backup magic {magic!r}")
        if version != FORMAT_VERSION:
            raise CorruptCheckpointError(
                f"unsupported backup format version {version}"
            )
        if crc32(body[:-4] + geometry_bytes) != checksum:
            raise CorruptCheckpointError("backup header CRC mismatch")
        if state not in (STATE_EMPTY, STATE_IN_PROGRESS, STATE_COMPLETE):
            raise CorruptCheckpointError(f"invalid backup state {state}")
        return cls(
            state=state, epoch=epoch, tick=tick,
            geometry=unpack_geometry(geometry_bytes),
        )


# ---------------------------------------------------------------------------
# Log records (checkpoint log and action log share the framing)
# ---------------------------------------------------------------------------

_RECORD_STRUCT = struct.Struct("<4sBqqI I")  # magic, type, a, b, length, crc
RECORD_HEADER_BYTES = _RECORD_STRUCT.size

#: Checkpoint-log record types.
RECORD_CHECKPOINT_BEGIN = 1
RECORD_OBJECTS = 2
RECORD_CHECKPOINT_COMMIT = 3
#: Action-log record type.
RECORD_TICK = 4


def pack_record(record_type: int, a: int, b: int, payload: bytes) -> bytes:
    """Frame one log record: typed header + CRC-protected payload."""
    header = _RECORD_STRUCT.pack(MAGIC, record_type, a, b, len(payload), 0)
    checksum = crc32(header[:-4] + payload)
    header = _RECORD_STRUCT.pack(MAGIC, record_type, a, b, len(payload), checksum)
    return header + payload


def unpack_record_header(data: bytes):
    """Parse a record header; returns ``(type, a, b, length, crc)``.

    Raises :class:`CorruptCheckpointError` on bad magic; callers treat that
    (and short reads) as the torn tail of the log.
    """
    magic, record_type, a, b, length, checksum = _RECORD_STRUCT.unpack(data)
    if magic != MAGIC:
        raise CorruptCheckpointError(f"bad record magic {magic!r}")
    return record_type, a, b, length, checksum


def verify_record(header_bytes: bytes, payload: bytes, checksum: int) -> bool:
    """True if the payload matches the CRC recorded in the header."""
    return crc32(header_bytes[:-4] + payload) == checksum


def pack_record_parts(
    record_type: int, a: int, b: int, parts: Sequence
) -> List:
    """Frame one record whose payload is scattered across ``parts``.

    Equivalent to ``pack_record(record_type, a, b, b"".join(parts))`` but
    never concatenates: the CRC is computed incrementally over the parts
    (each a bytes-like buffer) and the framed record is returned as
    ``[header, *parts]``, ready for a single gathered ``os.writev``.
    """
    views = [memoryview(part).cast("B") for part in parts]
    length = sum(view.nbytes for view in views)
    header = _RECORD_STRUCT.pack(MAGIC, record_type, a, b, length, 0)
    checksum = zlib.crc32(header[:-4])
    for view in views:
        checksum = zlib.crc32(view, checksum)
    header = _RECORD_STRUCT.pack(
        MAGIC, record_type, a, b, length, checksum & 0xFFFFFFFF
    )
    return [header, *views]


# ---------------------------------------------------------------------------
# Raw-fd batched I/O: positioned and gathered writes with partial-write
# handling, falling back to plain write loops where the syscalls are missing.
# ---------------------------------------------------------------------------

HAS_PWRITEV = hasattr(os, "pwritev")
HAS_PREADV = hasattr(os, "preadv")
HAS_WRITEV = hasattr(os, "writev")

try:
    #: Most iovec entries one ``writev``/``pwritev`` call may carry.
    IOV_MAX = os.sysconf("SC_IOV_MAX")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    IOV_MAX = 1024


def pread_into(fd: int, buffer, offset: int) -> int:
    """Positioned read at ``offset`` filling ``buffer`` (a writable
    bytes-like), retrying partial reads.

    Uses ``os.preadv`` straight into the caller's buffer -- one syscall in
    the common case, no seek (so a background restore reader never disturbs
    the handle's buffered position) and no per-retry concatenation.  Stops
    early at end-of-file; returns the number of bytes read, which callers
    compare against the buffer size to detect truncation.
    """
    view = memoryview(buffer).cast("B")
    size = view.nbytes
    total = 0
    while total < size:
        if HAS_PREADV:
            read = os.preadv(fd, [view[total:]], offset + total)
        else:  # pragma: no cover - non-POSIX fallback
            chunk = os.pread(fd, size - total, offset + total)
            read = len(chunk)
            view[total: total + read] = chunk
        if read == 0:
            break
        total += read
    return total


def pwrite_all(fd: int, buffer, offset: int) -> int:
    """Positioned write of one contiguous buffer, retrying partial writes.

    Uses ``os.pwritev`` (one syscall, no seek, no flattening copy) when the
    platform has it; returns the number of bytes written.
    """
    view = memoryview(buffer).cast("B")
    total = view.nbytes
    while view.nbytes:
        if HAS_PWRITEV:
            written = os.pwritev(fd, [view], offset)
        else:  # pragma: no cover - non-POSIX fallback
            written = os.pwrite(fd, view, offset)
        view = view[written:]
        offset += written
    return total


def pwritev_all(fd: int, buffers: Sequence, offset: int) -> int:
    """Gathered positioned write of ``buffers`` at ``offset``.

    One ``os.pwritev`` syscall in the common case -- the iovec entries are
    the callers' own buffers, so scattered payload rows land contiguously on
    disk without ever being copied into a staging buffer.  Splits at
    ``IOV_MAX`` and retries partial writes; returns the bytes written.
    """
    views = [memoryview(buffer).cast("B") for buffer in buffers]
    total = sum(view.nbytes for view in views)
    if not HAS_PWRITEV:  # pragma: no cover - non-POSIX fallback
        for view in views:
            while view.nbytes:
                written = os.pwrite(fd, view, offset)
                view = view[written:]
                offset += written
        return total
    while views:
        written = os.pwritev(fd, views[:IOV_MAX], offset)
        offset += written
        trimmed = []
        for view in views:
            if written >= view.nbytes:
                written -= view.nbytes
                continue
            trimmed.append(view[written:] if written else view)
            written = 0
        views = trimmed
    return total


def write_all(fd: int, buffers: Sequence) -> int:
    """Gathered sequential write of ``buffers`` at the fd's offset.

    One ``os.writev`` syscall in the common case (append-mode fds land the
    whole record at the end of the file in a single operation), with a
    retry loop for partial writes.  Returns the number of bytes written.
    """
    views = [memoryview(buffer).cast("B") for buffer in buffers]
    total = sum(view.nbytes for view in views)
    if not HAS_WRITEV:  # pragma: no cover - non-POSIX fallback
        for view in views:
            os.write(fd, view)
        return total
    remaining = total
    while remaining:
        # The kernel rejects iovecs longer than IOV_MAX; feed it the
        # front slice and let the retry loop advance through the rest.
        written = os.writev(fd, views[:IOV_MAX])
        remaining -= written
        if remaining:
            # Drop fully-written views, trim the partially-written one.
            trimmed = []
            for view in views:
                if written >= view.nbytes:
                    written -= view.nbytes
                    continue
                trimmed.append(view[written:] if written else view)
                written = 0
            views = trimmed
    return total
