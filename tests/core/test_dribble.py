"""Behavioural tests for Dribble-and-Copy-on-Update."""

import numpy as np

from repro.core.algorithms import DribbleAndCopyOnUpdate
from repro.core.plan import DiskLayout


class TestDribble:
    def test_classification(self):
        assert not DribbleAndCopyOnUpdate.eager_copy
        assert not DribbleAndCopyOnUpdate.copies_dirty_only
        assert DribbleAndCopyOnUpdate.layout is DiskLayout.LOG

    def test_no_eager_copy_but_writes_everything(self):
        policy = DribbleAndCopyOnUpdate(16)
        plan = policy.begin_checkpoint()
        assert plan.eager_copy_ids.size == 0
        assert plan.writes_everything()

    def test_copy_exactly_once_per_checkpoint(self):
        """The paper's critical property: "each object is copied exactly once
        per checkpoint, regardless of how many times it is updated"."""
        policy = DribbleAndCopyOnUpdate(16)
        policy.begin_checkpoint()
        first = policy.handle_updates(np.array([3, 4]), 2)
        assert first.copy_ids.tolist() == [3, 4]
        again = policy.handle_updates(np.array([3, 4, 5]), 3)
        assert again.copy_ids.tolist() == [5]
        assert again.lock_count == 1
        assert again.bit_tests == 3

    def test_bits_reset_between_checkpoints(self):
        policy = DribbleAndCopyOnUpdate(16)
        policy.begin_checkpoint()
        policy.handle_updates(np.array([3]), 1)
        policy.finish_checkpoint()
        policy.begin_checkpoint()
        effects = policy.handle_updates(np.array([3]), 1)
        assert effects.copy_ids.tolist() == [3]

    def test_no_copy_before_first_checkpoint(self):
        policy = DribbleAndCopyOnUpdate(16)
        effects = policy.handle_updates(np.array([1]), 1)
        assert effects.copy_count == 0
        assert effects.bit_tests == 0

    def test_all_first_touches_copy_even_with_many_updates(self):
        policy = DribbleAndCopyOnUpdate(8)
        policy.begin_checkpoint()
        effects = policy.handle_updates(np.arange(8), 1000)
        assert effects.copy_count == 8
        assert effects.bit_tests == 1000
