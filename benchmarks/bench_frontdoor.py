"""Front-door load benchmark: sustained commands/s and command-to-apply p99.

Drives the asyncio gateway end-to-end -- TCP clients, session placement, the
bounded per-shard queue, one batched shared-memory hand-off per tick, APPLIED
acks back out -- and reports what a player would measure.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_frontdoor.py --smoke

Results merge into ``BENCH_engine.json`` under the ``frontdoor`` key
(read-modify-write, so the other benchmarks' sections survive).

Three scenarios:

* ``clients_scaling`` -- closed-loop clients at increasing counts (sized
  from :func:`repro.cpu.available_cpu_count`); sustained applied commands/s
  and client-observed p50/p99 per point.
* ``ingestion_ab`` -- the same load delivered over the shared-memory command
  ring vs one pipe message per command (process backend only).  The ring is
  expected to win on hosts with >= ``RING_GATE_CPUS`` cores; on smaller
  hosts contention noise drowns the difference, so the assertion self-gates.
* ``crash_serve`` -- SIGKILL one shard mid-load.  Survivor clients (never
  re-placed) must keep their p99 under the stated bound; the dead shard's
  clients get typed rejects and fresh placements; afterwards the dead
  shard's directory is recovered offline **twice** and both recoveries must
  agree byte-for-byte -- the recovered world is exactly the last durable
  cut plus log replay, nothing torn, nothing phantom.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import os
import statistics
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.cpu import available_cpu_count  # noqa: E402
from repro.engine.fleet import ShardFleet  # noqa: E402
from repro.frontend import (  # noqa: E402
    FrontDoor,
    GatewayClient,
    GatewayServer,
    LoadGenerator,
)
from repro.frontend import protocol  # noqa: E402
from repro.obs.dump import fetch_stats  # noqa: E402
from repro.game.knights_archers import KnightsArchersGame  # noqa: E402
from repro.game.scenario import BattleScenario  # noqa: E402

#: Battle size per shard; commands are real state changes (``heal:<unit>``).
NUM_UNITS = 256
PAYLOAD = b"heal:1"
NUM_SHARDS = 2
TICK_INTERVAL = 0.002
COMMANDS_PER_BURST = 4

#: Cores below which the ring-beats-pipe assertion self-gates: on a pinned
#: 1-2 core runner the parent, the workers, and the clients all fight for
#: the same cores and the transport difference is noise.
RING_GATE_CPUS = 4

FULL_DURATION = 3.0
SMOKE_DURATION = 0.6

#: Survivors' p99 during a crash-serve run must stay under this bound.
P99_BOUND_SECONDS = 0.5
SMOKE_P99_BOUND_SECONDS = 1.0


def make_app(index: int):
    return KnightsArchersGame(BattleScenario(num_units=NUM_UNITS))


def make_frontdoor(directory, seed: int, backend: str,
                   transport=None) -> FrontDoor:
    fleet = ShardFleet(
        make_app, directory, NUM_SHARDS, seed=seed, backend=backend,
        algorithm="copy-on-update", min_checkpoint_interval_ticks=32,
    )
    return FrontDoor(fleet, transport=transport)


def pick_backend() -> str:
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return "process" if "fork" in methods else "thread"


def report_point(report) -> dict:
    return {
        "num_clients": report.num_clients,
        "duration_seconds": report.duration_seconds,
        "commands_sent": report.commands_sent,
        "commands_applied": report.commands_applied,
        "commands_rejected": report.commands_rejected,
        "commands_per_second": report.commands_per_second,
        "p50_seconds": report.p50,
        "p99_seconds": report.p99,
    }


# ----------------------------------------------------------------------
# clients_scaling and ingestion_ab: LoadGenerator against a live gateway
# ----------------------------------------------------------------------


def run_load_point(directory, seed: int, backend: str, num_clients: int,
                   duration: float, transport=None):
    """One fresh fleet + gateway + closed-loop load run; returns LoadReport."""
    frontdoor = make_frontdoor(directory, seed, backend, transport=transport)

    async def scenario():
        async with GatewayServer(
            frontdoor, tick_interval=TICK_INTERVAL
        ) as gateway:
            host, port = gateway.address
            generator = LoadGenerator(
                host, port, num_clients=num_clients, payload=PAYLOAD,
                commands_per_burst=COMMANDS_PER_BURST,
            )
            return await generator.run_async(duration)

    try:
        return asyncio.run(scenario())
    finally:
        frontdoor.fleet.close()


def run_clients_scaling(workdir, seed: int, backend: str, counts,
                        duration: float):
    points = []
    for num_clients in counts:
        directory = os.path.join(workdir, f"scaling-{num_clients}")
        report = run_load_point(directory, seed, backend, num_clients,
                                duration)
        point = report_point(report)
        points.append(point)
        print(f"  {num_clients:4d} clients: "
              f"{point['commands_per_second']:9.0f} cmd/s  "
              f"p50 {point['p50_seconds'] * 1e3:6.2f} ms  "
              f"p99 {point['p99_seconds'] * 1e3:6.2f} ms")
    return points


def run_ingestion_ab(workdir, seed: int, num_clients: int, duration: float,
                     repeats: int):
    """Ring vs pipe delivery under identical load (process backend only)."""
    section = {}
    for transport in ("ring", "pipe"):
        runs = []
        for repeat in range(repeats):
            directory = os.path.join(
                workdir, f"ab-{transport}-{repeat}"
            )
            runs.append(run_load_point(
                directory, seed, "process", num_clients, duration,
                transport=transport,
            ))
        best = max(runs, key=lambda r: r.commands_per_second)
        entry = report_point(best)
        entry["commands_per_second"] = statistics.median(
            r.commands_per_second for r in runs
        )
        section[transport] = entry
        print(f"  {transport:>4}: "
              f"{entry['commands_per_second']:9.0f} cmd/s  "
              f"p99 {entry['p99_seconds'] * 1e3:6.2f} ms")
    pipe_rate = section["pipe"]["commands_per_second"]
    section["ring_over_pipe_speedup"] = (
        section["ring"]["commands_per_second"] / pipe_rate
        if pipe_rate > 0 else 0.0
    )
    return section


def run_telemetry_snapshot(workdir, seed: int, backend: str,
                           num_clients: int, duration: float) -> dict:
    """Load-driven STATS round trip: the scrape a dashboard would see.

    Runs the closed-loop load, then fetches the gateway's own telemetry
    over the STATS frame (the same wire path ``repro.obs.dump`` uses) while
    the fleet is still live, and reports the headline serving metrics.
    """
    directory = os.path.join(workdir, "telemetry")
    frontdoor = make_frontdoor(directory, seed, backend)

    async def scenario():
        async with GatewayServer(
            frontdoor, tick_interval=TICK_INTERVAL
        ) as gateway:
            host, port = gateway.address
            generator = LoadGenerator(
                host, port, num_clients=num_clients, payload=PAYLOAD,
                commands_per_burst=COMMANDS_PER_BURST,
            )
            report = await generator.run_async(duration)
            snapshot = await asyncio.to_thread(fetch_stats, host, port)
            return report, snapshot

    try:
        report, snapshot = asyncio.run(scenario())
    finally:
        frontdoor.fleet.close()

    gateway_section = snapshot.get("gateway") or {}
    return {
        "num_clients": num_clients,
        "commands_per_second": report.commands_per_second,
        "tick_p50_us": snapshot["tick_p50_us"],
        "tick_p99_us": snapshot["tick_p99_us"],
        "max_checkpoint_age_ticks": snapshot["max_checkpoint_age_ticks"],
        "ring_high_water_bytes": snapshot["ring_high_water_bytes"],
        "gateway": {
            key: gateway_section.get(key, 0)
            for key in ("sessions", "commands_admitted", "commands_applied",
                        "ticks_driven", "rejected_backpressure")
        },
    }


# ----------------------------------------------------------------------
# crash_serve: kill a shard mid-load, survivors keep their p99
# ----------------------------------------------------------------------


async def _drive_measured_client(host, port, index, deadline):
    client = await GatewayClient.connect(host, port, f"crash-load-{index}")
    try:
        while time.perf_counter() < deadline:
            for _ in range(COMMANDS_PER_BURST):
                await client.send_command(PAYLOAD)
            try:
                await client.settle(timeout=30.0)
            except asyncio.TimeoutError:
                break
    finally:
        await client.close()
    return client


def run_crash_serve(workdir, seed: int, backend: str, num_clients: int,
                    duration: float, p99_bound: float):
    """Kill one shard mid-load; report survivor latencies and recovery."""
    directory = os.path.join(workdir, "crash-serve")
    frontdoor = make_frontdoor(directory, seed, backend)
    outcome = {}

    async def scenario():
        async with GatewayServer(
            frontdoor, tick_interval=TICK_INTERVAL
        ) as gateway:
            host, port = gateway.address
            deadline = time.perf_counter() + duration
            tasks = [
                asyncio.ensure_future(
                    _drive_measured_client(host, port, index, deadline)
                )
                for index in range(num_clients)
            ]
            # Let the fleet serve for a third of the run, then kill one
            # live shard under everyone's feet.
            await asyncio.sleep(duration / 3.0)
            victim = frontdoor.live_shards[0]
            if backend == "process":
                frontdoor.fleet.crash_worker(victim, when="kill")
            else:
                frontdoor.fleet.shards[victim].crash()
            clients = await asyncio.gather(*tasks)
            return victim, clients

    try:
        victim, clients = asyncio.run(scenario())
    finally:
        frontdoor.fleet.close()

    survivors = [c for c in clients if c.replacements == 0]
    displaced = [c for c in clients if c.replacements > 0]
    survivor_latencies = sorted(
        latency for client in survivors for latency in client.latencies
    )

    def percentile(values, fraction):
        if not values:
            return 0.0
        return values[min(len(values) - 1, int(fraction * len(values)))]

    outcome = {
        "num_clients": num_clients,
        "victim_shard": victim,
        "survivor_clients": len(survivors),
        "displaced_clients": len(displaced),
        "survivor_commands_applied": len(survivor_latencies),
        "survivor_p50_seconds": percentile(survivor_latencies, 0.50),
        "survivor_p99_seconds": percentile(survivor_latencies, 0.99),
        "p99_bound_seconds": p99_bound,
        "shard_down_rejects": sum(
            1 for client in clients
            for code, _ in client.rejects
            if code == protocol.REJECT_SHARD_DOWN
        ),
        "replacements": sum(client.replacements for client in clients),
        "displaced_commands_applied": sum(
            len(client.latencies) for client in displaced
        ),
        "shards_lost": frontdoor.stats.shards_lost,
    }
    outcome["within_bound"] = (
        bool(survivor_latencies)
        and outcome["survivor_p99_seconds"] <= p99_bound
    )

    # Offline byte-identity: recover the whole fleet twice from its durable
    # artifacts.  Recovery is a pure function of the checkpoint cut and the
    # action log, so both passes must agree on the victim's every byte --
    # any torn batch or phantom command would break the digest.
    first = ShardFleet.recover(make_app, directory, NUM_SHARDS, seed=seed)
    second = ShardFleet.recover(make_app, directory, NUM_SHARDS, seed=seed)
    victim_first, victim_second = first[victim], second[victim]
    digest = hashlib.sha256(
        victim_first.game.table.cells.tobytes()
    ).hexdigest()
    outcome["recovery"] = {
        "victim_next_tick": victim_first.game.next_tick,
        "victim_state_sha256": digest,
        "deterministic": bool(
            victim_first.game.table.equals(victim_second.game.table)
            and victim_first.game.next_tick == victim_second.game.next_tick
        ),
    }
    for recovery in (*first, *second):
        recovery.persistence.close()

    print(f"  victim shard {victim}: "
          f"{outcome['survivor_commands_applied']} survivor cmds, "
          f"survivor p99 {outcome['survivor_p99_seconds'] * 1e3:.2f} ms "
          f"(bound {p99_bound * 1e3:.0f} ms), "
          f"{outcome['shard_down_rejects']} shard-down rejects, "
          f"{outcome['replacements']} re-placements, "
          f"recovery deterministic={outcome['recovery']['deterministic']}")
    return outcome


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def merge_results(out_path: str, section: dict) -> None:
    """Insert the frontdoor section into BENCH_engine.json in place."""
    results = {}
    if os.path.exists(out_path):
        with open(out_path) as handle:
            results = json.load(handle)
    results["frontdoor"] = section
    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gateway serve-path load benchmark (p99 + commands/s)"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="short runs and small client counts for CI")
    parser.add_argument("--clients", type=str, default=None,
                        help="comma-separated client counts (overrides the "
                             "CPU-derived default)")
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds of load per point")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="results JSON to merge into (default "
                             "BENCH_engine.json)")
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a temp dir)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=2,
                        help="runs per ingestion transport; the median "
                             "commands/s is reported")
    args = parser.parse_args(argv)

    cpus = available_cpu_count()
    backend = pick_backend()
    if args.clients:
        counts = [int(part) for part in args.clients.split(",")]
    elif args.smoke:
        counts = [cpus * 2, cpus * 4]
    else:
        counts = [cpus * 2, cpus * 4, cpus * 8]
    duration = args.duration
    if duration is None:
        duration = SMOKE_DURATION if args.smoke else FULL_DURATION
    p99_bound = SMOKE_P99_BOUND_SECONDS if args.smoke else P99_BOUND_SECONDS
    crash_clients = max(2, cpus * 2)

    section = {
        "config": {
            "num_shards": NUM_SHARDS,
            "backend": backend,
            "available_cpus": cpus,
            "num_units": NUM_UNITS,
            "payload": PAYLOAD.decode(),
            "tick_interval_seconds": TICK_INTERVAL,
            "commands_per_burst": COMMANDS_PER_BURST,
            "client_counts": counts,
            "duration_seconds": duration,
            "repeats": args.repeats,
            "ring_gate_cpus": RING_GATE_CPUS,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
    }

    def sweep(workdir: str) -> None:
        print(f"[frontdoor] clients scaling ({backend} backend, "
              f"{cpus} cpu(s))")
        section["clients_scaling"] = run_clients_scaling(
            workdir, args.seed, backend, counts, duration
        )
        if backend == "process":
            print("[frontdoor] ingestion A/B: ring vs pipe")
            section["ingestion_ab"] = run_ingestion_ab(
                workdir, args.seed, max(counts), duration, args.repeats
            )
        else:
            section["ingestion_ab"] = {
                "skipped": "pipe transport needs the process backend (fork)"
            }
        print("[frontdoor] telemetry: STATS scrape under load")
        telemetry = run_telemetry_snapshot(
            workdir, args.seed, backend, max(counts), duration
        )
        section["telemetry"] = telemetry
        print(f"  tick p50 {telemetry['tick_p50_us']:7.0f} us  "
              f"p99 {telemetry['tick_p99_us']:7.0f} us  "
              f"max ckpt age {telemetry['max_checkpoint_age_ticks']} t  "
              f"ring hwm {telemetry['ring_high_water_bytes']} B  "
              f"applied {telemetry['gateway']['commands_applied']}")
        print("[frontdoor] crash-serve: kill one shard mid-load")
        section["crash_serve"] = run_crash_serve(
            workdir, args.seed, backend, crash_clients,
            max(duration, 3 * TICK_INTERVAL * 50), p99_bound,
        )

    if args.workdir:
        os.makedirs(args.workdir, exist_ok=True)
        sweep(args.workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="bench-frontdoor-") as workdir:
            sweep(workdir)

    merge_results(args.out, section)
    print(f"wrote frontdoor section to {args.out}")

    crash = section["crash_serve"]
    if not crash["recovery"]["deterministic"]:
        print("::error title=Front-door recovery mismatch::two offline "
              "recoveries of the killed shard disagree -- the durable cut "
              "plus replay is not a pure function of the log")
        return 2
    status = 0
    if not crash["within_bound"]:
        print("::warning title=Front-door crash-serve::survivors' p99 "
              f"{crash['survivor_p99_seconds'] * 1e3:.1f} ms exceeded the "
              f"{crash['p99_bound_seconds'] * 1e3:.0f} ms bound")
        status = 1
    ab = section["ingestion_ab"]
    if "ring_over_pipe_speedup" in ab:
        speedup = ab["ring_over_pipe_speedup"]
        if cpus >= RING_GATE_CPUS and speedup <= 1.0:
            print("::warning title=Front-door ingestion::ring delivery did "
                  f"not beat pipe on a {cpus}-core host "
                  f"(speedup {speedup:.2f}x)")
            status = max(status, 1)
        elif cpus < RING_GATE_CPUS:
            print(f"  ring-over-pipe speedup {speedup:.2f}x "
                  f"(not gated: {cpus} < {RING_GATE_CPUS} cores)")
    return status


# ----------------------------------------------------------------------
# pytest wrapper: a tiny end-to-end pass under ``pytest benchmarks``
# ----------------------------------------------------------------------


def test_frontdoor_serve_path(tmp_path):
    """One short closed-loop run: commands applied, latencies measured."""
    report = run_load_point(
        tmp_path / "serve", seed=5, backend="thread", num_clients=2,
        duration=0.3,
    )
    assert report.commands_applied > 0
    assert report.commands_rejected == 0
    assert 0 < report.p50 <= report.p99
    assert report.commands_per_second > 0


if __name__ == "__main__":
    raise SystemExit(main())
