"""``python -m repro.obs.dump HOST PORT`` -- fetch and print fleet telemetry.

Speaks the gateway's ``STATS`` frame over a plain blocking socket (no
session handshake needed; the gateway answers STATS pre-HELLO), decodes
the JSON snapshot, and renders either the raw JSON (``--json``) or a
compact human dashboard.  ``--watch SECONDS`` re-fetches in a loop --
a poor man's ``top`` for the shard fleet.
"""

from __future__ import annotations

import json
import socket
import sys
import time
from typing import Dict

from repro.frontend.protocol import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode,
    encode_stats,
)

DEFAULT_TIMEOUT = 10.0


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("gateway closed mid frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def fetch_stats(
    host: str, port: int, timeout: float = DEFAULT_TIMEOUT
) -> Dict:
    """One STATS round trip; returns the decoded telemetry dict."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(encode_stats())
        header = _recv_exactly(sock, FRAME_HEADER_BYTES)
        length = int.from_bytes(header, "little")
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"gateway announced a {length}-byte frame "
                f"(cap {MAX_FRAME_BYTES})"
            )
        message = decode(_recv_exactly(sock, length))
    if message[0] != "stats_reply":
        raise ProtocolError(f"expected STATS_REPLY, got {message[0]!r}")
    return json.loads(message[1])


def render(snapshot: Dict) -> str:
    """The human dashboard: one header line plus one line per shard."""
    lines = [
        "fleet backend={backend} shards={num_shards} "
        "tick p50={tick_p50_us:.0f}us p99={tick_p99_us:.0f}us "
        "max_ckpt_age={max_checkpoint_age_ticks}t "
        "ring_hwm={ring_high_water_bytes}B".format(**snapshot)
    ]
    pool = snapshot.get("pool")
    if pool:
        lines.append(
            "pool  workers={num_workers} depth={queue_depth} "
            "(max {max_queue_depth}) jobs={jobs_completed}/{jobs_submitted} "
            "bytes={bytes_written} busy={busy_seconds:.2f}s".format(**pool)
        )
    recovery = snapshot.get("recovery") or {}
    if any(recovery.values()):
        lines.append(
            "rcvy  completed={recoveries_completed} "
            "stalls={recovery_stalls} "
            "bytes={recovery_bytes_restored} "
            "replay={recovery_replay_ticks}t".format(**recovery)
        )
    gateway = snapshot.get("gateway")
    if gateway:
        rejected = sum(
            gateway.get(key, 0)
            for key in ("rejected_rate_limit", "rejected_backpressure",
                        "rejected_shard_down")
        )
        lines.append(
            "gw    sessions={sessions} applied={commands_applied} "
            "rejected={rejected} ticks={ticks_driven}".format(
                sessions=gateway.get(
                    "sessions", gateway.get("sessions_opened", 0)
                ),
                commands_applied=gateway.get("commands_applied", 0),
                rejected=rejected,
                ticks_driven=gateway.get("ticks_driven", 0),
            )
        )
    for shard in snapshot.get("shards", []):
        lines.append(
            "shard {index:>2} {state} ticks={ticks_run} "
            "p50={tick_p50_us:.0f}us p99={tick_p99_us:.0f}us "
            "cmds={commands_drained} age={checkpoint_age_ticks}t "
            "ring={ring_pending_bytes}/{ring_capacity_bytes}B".format(
                state="up  " if shard["alive"] else "DOWN",
                **{k: v for k, v in shard.items() if k != "alive"},
            )
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Fetch and print a gateway fleet telemetry snapshot."
    )
    parser.add_argument("host", help="gateway host")
    parser.add_argument("port", type=int, help="gateway port")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the raw JSON snapshot")
    parser.add_argument("--watch", type=float, metavar="SECONDS",
                        help="re-fetch every SECONDS until interrupted")
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT,
                        help="socket timeout per fetch (seconds)")
    args = parser.parse_args(argv)

    try:
        while True:
            snapshot = fetch_stats(args.host, args.port,
                                   timeout=args.timeout)
            if args.as_json:
                print(json.dumps(snapshot, indent=2, sort_keys=True))
            else:
                print(render(snapshot))
            if args.watch is None:
                return 0
            sys.stdout.flush()
            time.sleep(args.watch)
            print()
    except KeyboardInterrupt:
        return 0
    except (OSError, ProtocolError, ValueError) as error:
        print(f"repro.obs.dump: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
