"""Machine-readable exports of experiment results (CSV and JSON).

The text tables are for humans; these helpers feed external plotting
pipelines: one CSV per rendered table, and a JSON document carrying an
experiment's raw metric dictionary.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import TYPE_CHECKING, List, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.common import FigureResult

from repro.analysis.tables import TextTable


def table_to_csv(table: TextTable) -> str:
    """Render one text table as CSV (header row + data rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow(row)
    return buffer.getvalue()


def _sanitize(value):
    """Make raw experiment values JSON-friendly."""
    if isinstance(value, dict):
        return {str(key): _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return str(value)


def figure_to_json(figure: "FigureResult") -> str:
    """Serialize an experiment's identity and raw metrics as JSON."""
    document = {
        "experiment_id": figure.experiment_id,
        "description": figure.description,
        "tables": [
            {"title": table.title, "columns": table.columns,
             "rows": table.rows}
            for table in figure.tables
        ],
        "raw": _sanitize(figure.raw),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def export_figure(
    figure: "FigureResult", directory: Union[str, os.PathLike]
) -> List[str]:
    """Write ``<id>.json`` plus ``<id>_table<n>.csv`` files; returns paths."""
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    written = []
    json_path = os.path.join(directory, f"{figure.experiment_id}.json")
    with open(json_path, "w") as handle:
        handle.write(figure_to_json(figure))
    written.append(json_path)
    for index, table in enumerate(figure.tables):
        csv_path = os.path.join(
            directory, f"{figure.experiment_id}_table{index}.csv"
        )
        with open(csv_path, "w") as handle:
            handle.write(table_to_csv(table))
        written.append(csv_path)
    return written
