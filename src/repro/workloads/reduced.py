"""Traces reduced to what checkpointing policies can observe.

Checkpointing policies never see individual cell updates: all they observe is
which *atomic objects* were touched during a tick and how many raw updates
occurred (every update is charged one dirty-bit test).  Reducing a trace to
per-tick ``(unique objects, update count)`` pairs is therefore lossless for
the simulator while being computable once and shared by every algorithm run
-- and, because the reduction is a pure function of the trace, it is also the
unit of persistent caching (:mod:`repro.workloads.cache`).

The reduction itself is vectorized: instead of one ``np.unique`` call per
tick, whole batches of ticks are deduplicated in a single pass by uniquing
the combined key ``tick * num_objects + object``, whose sorted order is
exactly tick-major / object-ascending -- the same per-tick sorted unique
arrays the per-tick loop produced, at a fraction of the interpreter overhead.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.config import StateGeometry
from repro.errors import TraceError
from repro.workloads.base import UpdateTrace

#: Upper bound on the number of cell updates deduplicated per bulk pass.
#: Bounds peak memory (a few int64 arrays of this size) while keeping the
#: batches large enough that numpy dominates the interpreter.
_CHUNK_UPDATE_BUDGET = 4_000_000


def _reduce_trace(
    trace: UpdateTrace,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reduce ``trace`` to ``(objects, offsets, update_counts)`` arrays.

    ``objects`` concatenates each tick's sorted unique atomic-object ids;
    tick ``i`` owns the slice ``objects[offsets[i]:offsets[i + 1]]`` and had
    ``update_counts[i]`` raw cell updates.
    """
    geometry = trace.geometry
    num_objects = geometry.num_objects
    update_counts = []
    unique_counts = []
    object_parts = []
    pending: list = []
    pending_elems = 0

    def flush() -> None:
        nonlocal pending, pending_elems
        if not pending:
            return
        sizes = np.array([cells.size for cells in pending], dtype=np.int64)
        cells = (
            np.concatenate(pending)
            if int(sizes.sum())
            else np.empty(0, dtype=np.int64)
        )
        tick_ids = np.repeat(np.arange(len(pending), dtype=np.int64), sizes)
        keys = tick_ids * num_objects + geometry.object_of_cell(cells)
        unique_keys = np.unique(keys)
        # Sorted unique keys are tick-major, so each tick's segment is its
        # sorted unique object set; segment boundaries come from searchsorted.
        bounds = np.searchsorted(
            unique_keys // num_objects, np.arange(len(pending) + 1)
        )
        unique_counts.extend(np.diff(bounds).tolist())
        object_parts.append(unique_keys % num_objects)
        pending = []
        pending_elems = 0

    for cells in trace.ticks():
        update_counts.append(int(cells.size))
        pending.append(cells)
        pending_elems += cells.size
        if pending_elems >= _CHUNK_UPDATE_BUDGET:
            flush()
    flush()

    objects = (
        np.concatenate(object_parts) if object_parts else np.empty(0, np.int64)
    )
    offsets = np.zeros(len(unique_counts) + 1, dtype=np.int64)
    np.cumsum(np.asarray(unique_counts, dtype=np.int64), out=offsets[1:])
    return objects, offsets, np.asarray(update_counts, dtype=np.int64)


class PrecomputedObjectTrace:
    """An update trace reduced to per-tick ``(unique objects, update count)``.

    Construction is lazy: ``geometry`` and ``num_ticks`` are available
    immediately, and the source trace is only generated and reduced the first
    time tick data is requested.  Use :meth:`from_arrays` to rebuild a
    reduction from stored arrays (the trace-cache load path).
    """

    def __init__(self, trace: UpdateTrace) -> None:
        self._geometry = trace.geometry
        self._num_ticks = trace.num_ticks
        self._source: Optional[UpdateTrace] = trace
        self._objects: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None
        self._update_counts: Optional[np.ndarray] = None

    @classmethod
    def from_arrays(
        cls,
        geometry: StateGeometry,
        objects: np.ndarray,
        offsets: np.ndarray,
        update_counts: np.ndarray,
    ) -> "PrecomputedObjectTrace":
        """Rebuild a reduction from its flat arrays (see :meth:`arrays`)."""
        objects = np.ascontiguousarray(objects, dtype=np.int64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        update_counts = np.ascontiguousarray(update_counts, dtype=np.int64)
        if offsets.size == 0 or offsets[0] != 0 or offsets[-1] != objects.size:
            raise TraceError("reduced trace has inconsistent tick offsets")
        if np.any(np.diff(offsets) < 0):
            raise TraceError("reduced trace has decreasing tick offsets")
        if update_counts.size != offsets.size - 1:
            raise TraceError(
                "reduced trace update_counts length does not match offsets"
            )
        if objects.size and (
            objects.min() < 0 or objects.max() >= geometry.num_objects
        ):
            raise TraceError(
                "reduced trace contains object ids outside "
                f"[0, {geometry.num_objects})"
            )
        self = cls.__new__(cls)
        self._geometry = geometry
        self._num_ticks = int(update_counts.size)
        self._source = None
        self._objects = objects
        self._offsets = offsets
        self._update_counts = update_counts
        return self

    def _ensure_reduced(self) -> None:
        if self._objects is not None:
            return
        self._objects, self._offsets, self._update_counts = _reduce_trace(
            self._source
        )
        self._num_ticks = int(self._update_counts.size)
        self._source = None  # the generator is no longer needed

    @property
    def geometry(self) -> StateGeometry:
        """Geometry of the originating trace."""
        return self._geometry

    @property
    def num_ticks(self) -> int:
        """Number of ticks (available without forcing the reduction)."""
        return self._num_ticks

    @property
    def update_counts(self) -> np.ndarray:
        """Raw cell updates per tick (with duplicates)."""
        self._ensure_reduced()
        return self._update_counts

    @property
    def total_updates(self) -> int:
        """Total raw cell updates across all ticks."""
        return int(self.update_counts.sum()) if self.num_ticks else 0

    @property
    def avg_updates_per_tick(self) -> float:
        """Mean raw cell updates per tick."""
        counts = self.update_counts
        return float(counts.mean()) if counts.size else 0.0

    @property
    def avg_unique_objects_per_tick(self) -> float:
        """Mean number of distinct atomic objects touched per tick."""
        self._ensure_reduced()
        if self._num_ticks == 0:
            return 0.0
        return float(self._objects.size / self._num_ticks)

    def tick_objects(self, index: int) -> np.ndarray:
        """Sorted unique atomic-object ids touched during tick ``index``."""
        self._ensure_reduced()
        if not 0 <= index < self._num_ticks:
            raise TraceError(
                f"tick {index} out of range [0, {self._num_ticks})"
            )
        return self._objects[self._offsets[index]: self._offsets[index + 1]]

    def object_ticks(self) -> Iterator[Tuple[np.ndarray, int]]:
        """Yield ``(unique_object_ids, update_count)`` per tick."""
        self._ensure_reduced()
        objects, offsets, counts = (
            self._objects, self._offsets, self._update_counts
        )
        return (
            (objects[offsets[i]: offsets[i + 1]], int(counts[i]))
            for i in range(self._num_ticks)
        )

    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The flat ``(objects, offsets, update_counts)`` representation."""
        self._ensure_reduced()
        return self._objects, self._offsets, self._update_counts
