#!/usr/bin/env python
"""Atomic item transfers between shards, surviving a coordinator crash.

The paper's future work ("synchronizing and recovering shared state between
servers") demonstrated with two-phase commit over the shards' write-ahead
logs: an item moves between two shard economies atomically, and a crash at
the worst moment -- decision logged, no participant told -- resolves
correctly on recovery.

Usage::

    python examples/cross_shard_transfer.py
"""

import tempfile

from repro.persistence import CrossShardCoordinator, PersistenceServer
from repro.persistence.server import OP_CREATE_ITEM, OP_DELETE_ITEM


def sword_holder(source, target):
    for name, server in (("shard A", source), ("shard B", target)):
        for item in server.store.items.values():
            if item.kind == "dragonblade":
                return name, item.owner_id
    return "nowhere", None


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-xfer-") as root:
        shard_a = PersistenceServer(f"{root}/shard-a")
        shard_b = PersistenceServer(f"{root}/shard-b")
        coordinator = CrossShardCoordinator(f"{root}/coordinator")

        alice = shard_a.create_character("alice", gold=100)
        bob = shard_b.create_character("bob", gold=100)
        blade = shard_a.grant_item(alice, "dragonblade")
        print(f"dragonblade starts on {sword_holder(shard_a, shard_b)[0]}")

        # --- A clean transfer.
        gid = coordinator.transfer_item(shard_a, shard_b, blade,
                                        new_owner_id=bob)
        where, owner = sword_holder(shard_a, shard_b)
        print(f"[{gid}] committed: dragonblade now on {where}, "
              f"owner {owner}")

        # --- Now the nasty case: crash everything at the decision point.
        blade_b = next(
            item.item_id for item in shard_b.store.items.values()
            if item.kind == "dragonblade"
        )
        target_item_id = shard_a.store.next_item_id
        gid = "xfer-99"
        print(f"\n[{gid}] moving it back... and crashing mid-protocol:")
        assert shard_b.prepare_remote(gid, [(OP_DELETE_ITEM, blade_b)])
        assert shard_a.prepare_remote(
            gid, [(OP_CREATE_ITEM, target_item_id, "dragonblade", alice)]
        )
        coordinator._log_decision(gid, True)  # decision durable...
        print("  both shards prepared, commit decision logged -- CRASH")
        shard_a.crash()
        shard_b.crash()
        coordinator.crash()

        # --- Recovery: the logged decision wins.
        shard_a = PersistenceServer.recover(f"{root}/shard-a")
        shard_b = PersistenceServer.recover(f"{root}/shard-b")
        coordinator = CrossShardCoordinator.recover(f"{root}/coordinator")
        print(f"  after restart, in doubt: "
              f"A={list(shard_a.in_doubt_transactions())}, "
              f"B={list(shard_b.in_doubt_transactions())}")
        resolved = coordinator.resolve_in_doubt([shard_a, shard_b])
        where, owner = sword_holder(shard_a, shard_b)
        print(f"  resolved {resolved} in-doubt halves: dragonblade on "
              f"{where}, owner {owner}")
        assert where == "shard A", "the durable commit decision must win"

        for server in (shard_a, shard_b):
            server.close()
        coordinator.close()
        print("\nexactly one dragonblade exists, at every point, always.")


if __name__ == "__main__":
    main()
