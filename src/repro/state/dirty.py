"""Dirty-tracking structures shared by all checkpointing algorithms.

Five structures live here:

* :class:`PolarityBitmap` -- one bit per atomic object with an O(1)
  "invert interpretation" operation.  Dribble-and-Copy-on-Update flips the
  meaning of its flushed bit between checkpoints instead of clearing ten
  million bits (the paper cites Pu [24] for this trick).
* :class:`EpochSet` -- a "touched during the current checkpoint" set with
  O(1) reset, implemented with per-slot epoch stamps.  Copy-on-update methods
  use it to pay the lock/copy cost only on the *first* update of an object
  within a checkpoint.
* :class:`DoubleBackupBits` -- the two-bits-per-object bookkeeping of the
  double-backup disk organization: bit ``b`` of object ``o`` records whether
  ``o`` changed since it was last written to backup ``b``.
* :class:`StripeLockSet` -- striped per-object locks (the paper's ``Olock``
  made real).  The mutator and the asynchronous writer thread both acquire
  the stripes covering a batch of objects in sorted order, so old-value
  saves and checkpoint reads of the same objects never interleave.
* :class:`RegionResidency` -- restore-side residency tracking for pipelined
  recovery: a bitmap of installed atomic objects plus a watermark that the
  replay thread compares against a tick's object scope before running it.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import ConfigurationError


class PolarityBitmap:
    """A bitmap over ``size`` slots with O(1) whole-map inversion.

    The logical value of slot ``i`` is ``raw[i] XOR inverted``.  ``set`` /
    ``clear`` / ``test`` behave like an ordinary bitmap; :meth:`flip_all`
    inverts every logical bit in O(1) by toggling the polarity flag.
    """

    def __init__(self, size: int, fill: bool = False) -> None:
        if size <= 0:
            raise ConfigurationError(f"bitmap size must be positive, got {size}")
        self._size = size
        self._raw = np.zeros(size, dtype=bool)
        self._inverted = bool(fill)

    @property
    def size(self) -> int:
        """Number of slots in the bitmap."""
        return self._size

    def set(self, ids) -> None:
        """Set the logical bit for each id in ``ids`` (array-like of ints)."""
        self._raw[ids] = not self._inverted

    def clear(self, ids) -> None:
        """Clear the logical bit for each id in ``ids``."""
        self._raw[ids] = self._inverted

    def set_range(self, start: int, stop: int) -> None:
        """Set the logical bits for the contiguous range ``[start, stop)``.

        A slice store, so streaming consumers marking id-contiguous regions
        pay one memset instead of a fancy-indexed scatter.
        """
        self._raw[start:stop] = not self._inverted

    def clear_range(self, start: int, stop: int) -> None:
        """Clear the logical bits for the contiguous range ``[start, stop)``."""
        self._raw[start:stop] = self._inverted

    def set_all(self) -> None:
        """Set every logical bit (O(n): rewrites the raw array)."""
        self._raw.fill(not self._inverted)

    def clear_all(self) -> None:
        """Clear every logical bit (O(n): rewrites the raw array)."""
        self._raw.fill(self._inverted)

    def flip_all(self) -> None:
        """Invert every logical bit in O(1).

        When every bit is known to be set (e.g. all objects flushed at the
        end of a Dribble checkpoint), this is equivalent to ``clear_all`` but
        costs nothing -- exactly the paper's "invert the interpretation of
        the bit attached to each object".
        """
        self._inverted = not self._inverted

    def test(self, ids) -> np.ndarray:
        """Return a boolean array: the logical bit for each id in ``ids``."""
        values = self._raw[ids]
        if self._inverted:
            return ~values
        return values.copy()

    def values(self) -> np.ndarray:
        """Return the full logical bitmap as a fresh boolean array."""
        if self._inverted:
            return ~self._raw
        return self._raw.copy()

    def count_set(self) -> int:
        """Number of logically-set bits."""
        raw_count = int(self._raw.sum())
        if self._inverted:
            return self._size - raw_count
        return raw_count

    def set_ids(self) -> np.ndarray:
        """Sorted array of ids whose logical bit is set."""
        return np.flatnonzero(self.values())


class RegionResidency:
    """Tracks which atomic objects of a restoring shard are resident.

    The pipelined restorer installs checkpoint regions while log replay is
    already running; replay may only touch objects whose image bytes have
    landed.  Residency is a :class:`PolarityBitmap` plus a *watermark*: the
    smallest object id not yet resident, i.e. objects ``[0, watermark)`` are
    all installed.  Streams that arrive in ascending id order (both disk
    organizations yield regions that way) advance the watermark in O(1) per
    region; out-of-order marks are absorbed and the watermark jumps across
    any contiguous stretch they completed.

    Thread-safe: the installer thread calls :meth:`mark_resident`, the
    replay thread calls :meth:`wait_for` / reads :attr:`watermark`.
    """

    def __init__(self, num_objects: int) -> None:
        if num_objects <= 0:
            raise ConfigurationError(
                f"num_objects must be positive, got {num_objects}"
            )
        self._num_objects = num_objects
        self._bitmap = PolarityBitmap(num_objects)
        self._watermark = 0
        self._condition = threading.Condition()

    @property
    def num_objects(self) -> int:
        """Number of atomic objects tracked."""
        return self._num_objects

    @property
    def watermark(self) -> int:
        """Smallest object id not yet resident (``num_objects`` = all in)."""
        return self._watermark

    @property
    def complete(self) -> bool:
        """True once every object is resident."""
        return self._watermark >= self._num_objects

    def is_resident(self, ids) -> np.ndarray:
        """Boolean array: residency of each id in ``ids``."""
        return self._bitmap.test(ids)

    def mark_resident(self, start: int, stop: int) -> int:
        """Mark objects ``[start, stop)`` resident; returns the watermark.

        Wakes any :meth:`wait_for` callers whose threshold the new watermark
        satisfies.
        """
        if start < 0 or stop > self._num_objects:
            raise ConfigurationError(
                f"range [{start}, {stop}) outside [0, {self._num_objects})"
            )
        with self._condition:
            self._bitmap.set_range(start, stop)
            if start <= self._watermark < stop:
                # In-order arrival: extend past the region, then absorb any
                # out-of-order regions that were waiting just beyond it.
                tail = self._bitmap.values()[stop:]
                if tail.size == 0:
                    mark = self._num_objects
                else:
                    first_clear = int(np.argmin(tail))
                    # argmin returns 0 on an all-True tail, too.
                    mark = (
                        self._num_objects
                        if tail[first_clear]
                        else stop + first_clear
                    )
                self._watermark = mark
                self._condition.notify_all()
            return self._watermark

    def wait_for(self, needed: int, timeout: float = None) -> bool:
        """Block until objects ``[0, needed)`` are resident.

        Returns True immediately (without blocking) if they already are;
        otherwise waits and returns whether the threshold was reached before
        ``timeout`` (None = wait forever).
        """
        with self._condition:
            return self._condition.wait_for(
                lambda: self._watermark >= needed, timeout
            )


class EpochSet:
    """A set over ``size`` slots with O(1) reset via epoch stamps.

    ``add_new`` inserts ids and reports which of them were *not* already
    members -- the "first touch this checkpoint" test at the heart of every
    copy-on-update method.  :meth:`reset` empties the set by bumping the
    epoch counter.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ConfigurationError(f"epoch set size must be positive, got {size}")
        self._size = size
        self._stamps = np.zeros(size, dtype=np.int64)
        self._epoch = np.int64(1)

    @property
    def size(self) -> int:
        """Number of slots the set can hold."""
        return self._size

    def contains(self, ids) -> np.ndarray:
        """Return a boolean array: membership of each id in ``ids``."""
        return self._stamps[ids] == self._epoch

    def add(self, ids) -> None:
        """Insert ``ids`` into the set."""
        self._stamps[ids] = self._epoch

    def add_new(self, ids) -> np.ndarray:
        """Insert ``ids`` and return the subset that was newly inserted.

        ``ids`` must not contain duplicates (callers pass the per-tick
        ``np.unique`` of updated objects); with duplicates the "new" report
        would double-count within the call.
        """
        ids = np.asarray(ids)
        fresh_mask = self._stamps[ids] != self._epoch
        fresh = ids[fresh_mask]
        self._stamps[fresh] = self._epoch
        return fresh

    def reset(self) -> None:
        """Empty the set in O(1)."""
        self._epoch += 1

    def count(self) -> int:
        """Number of ids currently in the set."""
        return int((self._stamps == self._epoch).sum())

    def members(self) -> np.ndarray:
        """Sorted array of ids currently in the set."""
        return np.flatnonzero(self._stamps == self._epoch)


class StripeLockSet:
    """Striped per-object locks for mutator/writer synchronization.

    ``num_objects`` object ids are hashed onto ``num_stripes`` plain locks by
    range partition (contiguous ids share a stripe, matching the contiguous
    hot runs of the Zipf workload).  :meth:`acquire` takes the stripes
    covering a batch of ids in ascending stripe order and :meth:`release`
    drops them in reverse, so any two threads locking overlapping batches
    order their acquisitions identically and cannot deadlock.
    """

    def __init__(self, num_objects: int, num_stripes: int = 64) -> None:
        if num_objects <= 0:
            raise ConfigurationError(
                f"num_objects must be positive, got {num_objects}"
            )
        if num_stripes <= 0:
            raise ConfigurationError(
                f"num_stripes must be positive, got {num_stripes}"
            )
        num_stripes = min(num_stripes, num_objects)
        self._locks = [threading.Lock() for _ in range(num_stripes)]
        self._stripe_of = (
            np.arange(num_objects, dtype=np.int64) * num_stripes // num_objects
        )

    @property
    def num_stripes(self) -> int:
        """Number of distinct locks."""
        return len(self._locks)

    def stripes_of(self, ids) -> np.ndarray:
        """Sorted unique stripe indices covering ``ids``."""
        return np.unique(self._stripe_of[ids])

    def acquire(self, ids) -> np.ndarray:
        """Lock every stripe covering ``ids``; returns the stripes taken."""
        stripes = self.stripes_of(ids)
        for stripe in stripes:
            self._locks[stripe].acquire()
        return stripes

    def release(self, stripes: np.ndarray) -> None:
        """Unlock stripes previously returned by :meth:`acquire`."""
        for stripe in stripes[::-1]:
            self._locks[stripe].release()

    class _Guard:
        __slots__ = ("_owner", "_ids", "_stripes")

        def __init__(self, owner: "StripeLockSet", ids) -> None:
            self._owner = owner
            self._ids = ids
            self._stripes = None

        def __enter__(self):
            self._stripes = self._owner.acquire(self._ids)
            return self._stripes

        def __exit__(self, *exc_info) -> None:
            self._owner.release(self._stripes)

    def locked(self, ids) -> "StripeLockSet._Guard":
        """Context manager: hold the stripes covering ``ids`` for a block."""
        return self._Guard(self, ids)


class DoubleBackupBits:
    """Per-object dirty bits for the double-backup disk organization.

    Following Salem and Garcia-Molina [29], each atomic object carries one
    bit per backup: bit ``b`` of object ``o`` is set iff ``o`` has changed
    since it was last written to backup ``b``.  Checkpoints alternate between
    the backups; a checkpoint to backup ``b`` writes exactly the objects
    whose bit ``b`` is set and then clears those bits, while every update
    sets both bits.

    A freshly-created structure has every bit set: nothing has ever been
    written to either backup, so the first checkpoint to each must write the
    whole state.
    """

    NUM_BACKUPS = 2

    def __init__(self, num_objects: int) -> None:
        self._bitmaps = [
            PolarityBitmap(num_objects, fill=True) for _ in range(self.NUM_BACKUPS)
        ]
        self._current = 0

    @property
    def num_objects(self) -> int:
        """Number of atomic objects tracked."""
        return self._bitmaps[0].size

    @property
    def current_backup(self) -> int:
        """Index (0 or 1) of the backup the next checkpoint will write."""
        return self._current

    def mark_updated(self, ids) -> None:
        """Record that the objects in ``ids`` changed (sets both bits)."""
        for bitmap in self._bitmaps:
            bitmap.set(ids)

    def dirty_for_current(self) -> np.ndarray:
        """Ids that must be written by the next checkpoint."""
        return self._bitmaps[self._current].set_ids()

    def dirty_mask_for_current(self) -> np.ndarray:
        """Boolean mask over objects: must be written by the next checkpoint."""
        return self._bitmaps[self._current].values()

    def begin_checkpoint(self) -> np.ndarray:
        """Start a checkpoint to the current backup.

        Returns the write set (ids dirty for that backup) and clears those
        bits; updates arriving while the checkpoint runs re-dirty both
        backups as usual.
        """
        bitmap = self._bitmaps[self._current]
        write_set = bitmap.set_ids()
        bitmap.clear(write_set)
        return write_set

    def finish_checkpoint(self) -> None:
        """Complete the in-flight checkpoint and alternate to the other backup."""
        self._current = 1 - self._current

    def dirty_counts(self) -> tuple:
        """``(count_for_backup_0, count_for_backup_1)`` -- mainly for tests."""
        return tuple(bitmap.count_set() for bitmap in self._bitmaps)
