#!/usr/bin/env python
"""Multi-shard throughput benchmark of the durable engine's I/O pipeline.

Measures what the asynchronous checkpoint path buys over the serial
same-thread drain, on the real Knights-and-Archers game:

* **single shard, sync vs async** at the same checkpoint cadence: ticks/sec,
  mean and p99 tick latency, and the checkpoint-overlap ratio (fraction of
  ticks that ran while a checkpoint write was in flight);
* **fleet scaling**: aggregate ticks/sec for 1..N shards, each shard a
  mutator thread plus its own writer thread;
* **backend scaling**: the thread-vs-process A/B -- the same pooled fleet
  with mutators as GIL-sharing threads vs worker processes over
  shared-memory tables, 1..N shards each, with per-backend
  ``scaling_efficiency`` (aggregate speedup over 1 shard, divided by the
  shard count).  On hosts with >= 4 usable cores the process backend at
  4 shards must clear 2x the threaded aggregate (efficiency >= 0.5);
* **writer pool**: the same fleet with a shared
  :class:`~repro.engine.writer_pool.CheckpointWriterPool` across pool sizes
  -- writer thread count, throughput, and batch coalescing stats;
* **flush path**: checkpoint flush throughput (MiB/s) per disk layout at
  ``fsync_policy=commit``, chunked writes vs the coalesced gathered-write
  path -- the isolated measurement of the vectored I/O rework;
* **coalesced I/O**: the same comparison end to end, a pooled fleet at
  ``fsync_policy=commit`` with coalescing on vs off;
* **admission overload**: a synthetic saturated pool (one worker, every
  handle always queued, a fixed-lag straggler cut submitted last) comparing
  per-commit checkpoint age under ``fifo`` vs ``staleness`` admission at 1x
  and 2x backlog -- FIFO's worst-case age grows with the backlog while
  staleness admission keeps it pinned near the straggler's lag;
* **durability sweep**: ticks/sec and latency under
  ``fsync_policy in {never, commit, always}`` on the whole write path
  (checkpoint store + logical log);
* **fleet recovery**: serial vs parallel recovery of a crashed pooled
  fleet, raw host numbers plus a modeled per-shard-volume variant (see
  ``--recovery-disk-mbps``), with a byte-identity check across variants;
* **determinism**: serial and threaded runs of every algorithm crash and
  recover to bit-identical committed state.

Results land in ``BENCH_engine.json``.  Run ``--smoke`` for the CI-sized
variant (2 shards, small geometry).  This is a standalone script (not a
pytest benchmark) so it can run without pytest-benchmark installed::

    PYTHONPATH=src python benchmarks/bench_engine.py --smoke
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import shutil
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import StateGeometry  # noqa: E402
from repro.core.registry import ALGORITHM_KEYS  # noqa: E402
from repro.cpu import available_cpu_count  # noqa: E402
from repro.engine.fleet import (  # noqa: E402
    FLEET_BACKENDS,
    ShardFleet,
    shard_directory,
)
from repro.engine.recovery import RecoveryManager  # noqa: E402
from repro.engine.server import DurableGameServer  # noqa: E402
from repro.engine.shard import MMOShard  # noqa: E402
from repro.engine.writer import (  # noqa: E402
    DEFAULT_CHUNK_OBJECTS,
    CheckpointJob,
    flush_checkpoint_job,
    flush_checkpoint_job_vectored,
)
from repro.engine.writer_pool import CheckpointWriterPool  # noqa: E402
from repro.storage.checkpoint_log import CheckpointLogStore  # noqa: E402
from repro.storage.double_backup import DoubleBackupStore  # noqa: E402
from repro.game.knights_archers import KnightsArchersGame  # noqa: E402
from repro.game.scenario import PAPER_SCALE_SCENARIO, BattleScenario  # noqa: E402

#: The paper's full-scale shard population (Section 5), used to scale the
#: modeled per-shard-volume recovery reads up from the Python-sized run.
PAPER_UNITS = PAPER_SCALE_SCENARIO.num_units


def percentile(samples: np.ndarray, q: float) -> float:
    return float(np.percentile(samples, q)) if samples.size else 0.0


def directory_bytes(root: str) -> int:
    """Total size of all files under ``root`` (a shard's durable footprint)."""
    total = 0
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            total += os.path.getsize(os.path.join(dirpath, filename))
    return total


def measure_single_shard(
    scenario: BattleScenario,
    directory: str,
    algorithm: str,
    seed: int,
    ticks: int,
    min_interval: int,
    async_writer: bool,
    fsync_policy: str = None,
) -> dict:
    """Run one server, timing every tick; returns the headline metrics."""
    app = KnightsArchersGame(scenario)
    server = DurableGameServer(
        app,
        directory,
        algorithm=algorithm,
        seed=seed,
        async_writer=async_writer,
        min_checkpoint_interval_ticks=min_interval,
        fsync_policy=fsync_policy,
    )
    latencies = np.zeros(ticks)
    started = time.perf_counter()
    for index in range(ticks):
        tick_started = time.perf_counter()
        server.run_tick()
        latencies[index] = time.perf_counter() - tick_started
    wall = time.perf_counter() - started
    stats = server.stats
    metrics = {
        "mode": "async" if async_writer else "sync",
        "algorithm": algorithm,
        "fsync_policy": fsync_policy or "never",
        "ticks": ticks,
        "wall_seconds": wall,
        "ticks_per_second": ticks / wall if wall > 0 else 0.0,
        "mean_tick_seconds": float(latencies.mean()),
        "p50_tick_seconds": percentile(latencies, 50),
        "p99_tick_seconds": percentile(latencies, 99),
        "max_tick_seconds": float(latencies.max()),
        "checkpoints_completed": stats.checkpoints_completed,
        "checkpoint_overlap_ticks": stats.checkpoint_overlap_ticks,
        "checkpoint_overlap_ratio": stats.checkpoint_overlap_ticks / ticks,
        "bytes_written": stats.bytes_written,
        "writer_busy_seconds": stats.writer_busy_seconds,
    }
    server.close()
    return metrics


def measure_fleet(
    scenario: BattleScenario,
    directory: str,
    algorithm: str,
    seed: int,
    ticks: int,
    min_interval: int,
    num_shards: int,
    pool_size: int = None,
    fsync_policy: str = None,
    pool_admission: str = "staleness",
    pool_coalesce: bool = True,
    backend: str = "thread",
) -> dict:
    """Aggregate async throughput of ``num_shards`` concurrent shards.

    ``pool_size=None`` gives every shard its own writer thread (the PR 2
    shape); ``pool_size=K`` routes every shard through one shared
    ``CheckpointWriterPool`` of K workers.  ``pool_admission`` and
    ``pool_coalesce`` select the pool's queue service order and whether jobs
    land as single gathered vectored writes; ``fsync_policy`` applies to the
    whole write path, as in the durability sweep.
    """
    kwargs = {"async_writer": True} if pool_size is None else {
        "pool_size": pool_size,
        "pool_admission": pool_admission,
        "pool_coalesce": pool_coalesce,
    }
    if backend == "process":
        # The process backend always checkpoints through the shared pool.
        kwargs.pop("async_writer", None)
        kwargs.setdefault("pool_size", pool_size)
    if fsync_policy is not None:
        kwargs["fsync_policy"] = fsync_policy
    fleet = ShardFleet(
        lambda index: KnightsArchersGame(scenario),
        directory,
        num_shards=num_shards,
        algorithm=algorithm,
        seed=seed,
        min_checkpoint_interval_ticks=min_interval,
        backend=backend,
        **kwargs,
    )
    try:
        writer_threads = fleet.writer_threads
        report = fleet.run_ticks(ticks, parallel=True)
        pool_stats = (
            fleet.writer_pool.stats() if fleet.writer_pool is not None else None
        )
        # Sampled while the last checkpoints may still be in flight -- the
        # live fleet-side age gauge, not a post-drain zero.
        end_of_run_age = fleet.max_checkpoint_age
    finally:
        fleet.close()
    checkpoints = sum(s.checkpoints_completed for s in report.shard_stats)
    point = {
        "backend": backend,
        "num_shards": num_shards,
        "pool_size": pool_size,
        "fsync_policy": fsync_policy or "never",
        "writer_threads": writer_threads,
        "ticks_per_shard": ticks,
        "wall_seconds": report.wall_seconds,
        "ticks_per_second": report.ticks_per_second,
        "checkpoints_completed": checkpoints,
    }
    if pool_stats is not None:
        point["admission"] = pool_admission
        point["coalesce"] = pool_coalesce
        point["pool"] = {
            "jobs_completed": pool_stats.jobs_completed,
            "batches_flushed": pool_stats.batches_flushed,
            "mean_batch_size": pool_stats.mean_batch_size,
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(
                    pool_stats.batch_size_histogram.items()
                )
            },
            "max_queue_depth": pool_stats.max_queue_depth,
            "coalesced_jobs": pool_stats.coalesced_jobs,
            "chunked_jobs": pool_stats.chunked_jobs,
            "max_picked_staleness_ticks":
                pool_stats.max_picked_staleness_ticks,
            "end_of_run_checkpoint_age_ticks": end_of_run_age,
        }
    return point


def measure_backend_scaling(
    scenario: BattleScenario,
    root: str,
    algorithm: str,
    seed: int,
    ticks: int,
    min_interval: int,
    max_shards: int,
    pool_size: int,
) -> dict:
    """Thread-vs-process fleet A/B, 1..``max_shards`` shards per backend.

    Both backends run the identical pooled configuration -- same
    algorithm, cadence, and writer pool size -- so the only variable is
    where the mutator tick loops live: GIL-sharing threads in this
    process, or worker processes ticking shared-memory tables on their
    own cores.  ``scaling_efficiency`` for a point is its aggregate
    speedup over the same backend's 1-shard run divided by the shard
    count (1.0 = perfect linear scaling); the threaded backend is pinned
    near ``1/num_shards`` by the GIL, which is exactly the ceiling the
    process backend exists to remove.
    """
    cores = available_cpu_count()
    backends = [
        backend for backend in FLEET_BACKENDS
        if backend != "process"
        or "fork" in multiprocessing.get_all_start_methods()
    ]
    points = []
    baselines = {}
    for backend in backends:
        num_shards = 1
        while num_shards <= max_shards:
            point = measure_fleet(
                scenario,
                os.path.join(root, f"backend-{backend}-{num_shards}"),
                algorithm,
                seed,
                ticks,
                min_interval,
                num_shards,
                pool_size=pool_size,
                backend=backend,
            )
            if num_shards == 1:
                baselines[backend] = point["ticks_per_second"]
            baseline = baselines[backend]
            point["scaling_efficiency"] = (
                point["ticks_per_second"] / baseline / num_shards
                if baseline > 0 else 0.0
            )
            points.append(point)
            num_shards *= 2

    def at(backend, num_shards):
        for point in points:
            if (point["backend"] == backend
                    and point["num_shards"] == num_shards):
                return point
        return None

    top_thread = at("thread", max_shards)
    top_process = at("process", max_shards)
    summary = {
        "available_cpus": cores,
        "pool_size": pool_size,
        "max_shards": max_shards,
        "points": points,
        "multicore_host": cores >= 4,
    }
    if top_thread is not None and top_process is not None:
        thread_tps = top_thread["ticks_per_second"]
        summary["process_speedup_at_max_shards"] = (
            top_process["ticks_per_second"] / thread_tps
            if thread_tps > 0 else 0.0
        )
        summary["process_scaling_efficiency"] = (
            top_process["scaling_efficiency"]
        )
    return summary


class _ZeroSource:
    """Constant payloads for the store-level flush benchmark."""

    def __init__(self, geometry):
        self._geometry = geometry

    def read_payloads(self, object_ids):
        return np.zeros(
            object_ids.size * self._geometry.object_bytes, dtype=np.uint8
        )


def measure_flush_path(root: str, rows: int, rounds: int) -> dict:
    """Checkpoint landing throughput, chunked vs coalesced, per disk layout.

    Times the store landing stage -- the code the coalescing rework
    touched -- with pre-gathered chunks at ``fsync_policy=commit``:
    full-dump checkpoints of ``rows**2 * 8`` state bytes, ``rounds``
    commits each.  The chunked path issues one write/pwrite per
    ``DEFAULT_CHUNK_OBJECTS`` slice (plus per-chunk sort and gather
    copies on the double backup); the coalesced path lands the whole
    checkpoint as one gathered ``writev`` (log) or one globally-sorted
    zero-copy ``pwritev`` pass (double backup), one data fsync either
    way.  The mutator-side snapshot read (``source.read_payloads``) is
    identical shared code on both paths, so it is hoisted out of the
    timed region rather than diluting the ratio.
    """
    geometry = StateGeometry(
        rows=rows, columns=rows, cell_bytes=8, object_bytes=512
    )
    object_ids = np.arange(geometry.num_objects)
    source = _ZeroSource(geometry)
    chunks = [
        (slice_ids, source.read_payloads(slice_ids))
        for slice_ids in (
            object_ids[start: start + DEFAULT_CHUNK_OBJECTS]
            for start in range(0, object_ids.size, DEFAULT_CHUNK_OBJECTS)
        )
    ]
    checkpoint_bytes = geometry.num_objects * geometry.object_bytes
    results = {
        "fsync_policy": "commit",
        "checkpoint_bytes": checkpoint_bytes,
        "chunk_objects": DEFAULT_CHUNK_OBJECTS,
        "rounds": rounds,
    }

    def land_chunked(store, epoch, backup_index):
        if isinstance(store, DoubleBackupStore):
            store.begin_checkpoint(backup_index, epoch)
        else:
            store.begin_checkpoint(epoch, True)
        for chunk_ids, payloads in chunks:
            if isinstance(store, DoubleBackupStore):
                store.write_objects(chunk_ids, payloads)
            else:
                store.append_objects(chunk_ids, payloads)
        store.commit_checkpoint(epoch)

    def land_coalesced(store, epoch, backup_index):
        if isinstance(store, DoubleBackupStore):
            store.begin_checkpoint(backup_index, epoch)
        else:
            store.begin_checkpoint(epoch, True)
        store.write_checkpoint_vectored(chunks, epoch)

    variants = (("chunked", land_chunked), ("coalesced", land_coalesced))
    for layout, store_cls in (
        ("log", CheckpointLogStore), ("double_backup", DoubleBackupStore)
    ):
        stores = {}
        durations = {label: [] for label, _ in variants}
        for label, _ in variants:
            directory = os.path.join(root, f"flush-{layout}-{label}")
            stores[label] = store_cls(directory, geometry,
                                      fsync_policy="commit")
        # Interleave the variants round-robin (with one untimed warmup
        # round) so ambient noise -- page-cache writeback of earlier
        # rounds, other tenants on a shared CI host -- hits both write
        # paths equally instead of biasing whichever runs second, and
        # take the per-round median so one stalled fsync cannot swing
        # the comparison.
        for epoch in range(1, rounds + 2):
            for label, land in variants:
                started = time.perf_counter()
                land(stores[label], epoch, epoch % 2)
                if epoch > 1:
                    durations[label].append(time.perf_counter() - started)
        point = {}
        for label, _ in variants:
            stores[label].close()
            median = float(np.median(durations[label]))
            point[label] = {
                "checkpoints_per_second": 1 / median if median > 0 else 0.0,
                "mib_per_second": (
                    checkpoint_bytes / 2**20 / median if median > 0 else 0.0
                ),
            }
        chunked = point["chunked"]["mib_per_second"]
        point["throughput_improvement"] = (
            point["coalesced"]["mib_per_second"] / chunked
            if chunked > 0 else 0.0
        )
        results[layout] = point
    return results


def measure_coalescing(
    scenario: BattleScenario,
    root: str,
    algorithm: str,
    seed: int,
    ticks: int,
    min_interval: int,
    num_shards: int,
    pool_size: int,
) -> dict:
    """Pooled fleet at ``fsync_policy=commit``, gathered writes on vs off.

    The end-to-end companion to :func:`measure_flush_path`: same fleet, same
    cadence, only the pool's ``coalesce`` flag differs.  On hosts where the
    page cache absorbs checkpoint writes the mutator threads dominate the
    aggregate ticks/second and this comparison sits inside run-to-run noise;
    the flush-path numbers are the isolated signal, this one shows the
    whole-system effect.
    """
    points = {}
    for label, coalesce in (("chunked", False), ("coalesced", True)):
        points[label] = measure_fleet(
            scenario,
            os.path.join(root, f"coalesce-{label}"),
            algorithm,
            seed,
            ticks,
            min_interval,
            num_shards,
            pool_size=pool_size,
            fsync_policy="commit",
            pool_coalesce=coalesce,
        )
    chunked_tps = points["chunked"]["ticks_per_second"]
    coalesced_tps = points["coalesced"]["ticks_per_second"]
    return {
        "fsync_policy": "commit",
        "num_shards": num_shards,
        "pool_size": pool_size,
        "chunked": points["chunked"],
        "coalesced": points["coalesced"],
        "throughput_improvement": (
            coalesced_tps / chunked_tps if chunked_tps > 0 else 0.0
        ),
        "coalesced_faster": coalesced_tps > chunked_tps,
    }


class _MeteredSource:
    """Zero payloads plus a shared service clock for the admission study.

    One ``read_payloads`` call is one job's service (the study geometry fits
    a whole checkpoint in a single chunk), and each service advances the
    shared fleet-wide tick clock by one -- so checkpoint ages come out in
    deterministic virtual ticks, not wall-clock noise.  The gate holds the
    worker until a submission wave is fully queued, which is what keeps the
    pool saturated (every handle always waiting) and makes the arrival order
    adversarial on purpose.
    """

    def __init__(self, geometry, clock, clock_lock, gate):
        self._geometry = geometry
        self._clock = clock
        self._clock_lock = clock_lock
        self._gate = gate
        #: Clock value right after each of this shard's jobs was serviced.
        self.service_clocks = []

    def read_payloads(self, object_ids):
        self._gate.wait()
        with self._clock_lock:
            self._clock[0] += 1
            self.service_clocks.append(self._clock[0])
        return np.zeros(
            object_ids.size * self._geometry.object_bytes, dtype=np.uint8
        )


def _run_admission_study(
    root: str, admission: str, num_shards: int, waves: int, lag: int
) -> dict:
    """Per-commit checkpoint ages for one admission policy, one backlog.

    One worker, ``num_shards`` log-store handles, ``waves`` submission
    rounds.  Every wave queues all shards before any job is serviced
    (sustained saturation: the ready queue always holds the whole fleet),
    and shard 0 is the straggler -- its cut happened ``lag`` ticks before
    the wave but its submission *arrives last*, the adversarial race FIFO
    order is blind to.  Returns the p99/max/mean of per-commit checkpoint
    age (service-clock tick minus cut tick) across every commit.
    """
    geometry = StateGeometry(rows=8, columns=8, cell_bytes=4, object_bytes=32)
    clock = [lag]  # start at `lag` so the straggler's first cut is tick 0
    clock_lock = threading.Lock()
    gate = threading.Event()
    sources = [
        _MeteredSource(geometry, clock, clock_lock, gate)
        for _ in range(num_shards)
    ]
    cuts = [[] for _ in range(num_shards)]
    object_ids = np.arange(geometry.num_objects)
    pool = CheckpointWriterPool(
        1, batch_jobs=1, admission=admission,
        name=f"bench-admission-{admission}",
    )
    stores = []
    try:
        for shard in range(num_shards):
            directory = os.path.join(
                root, f"admission-{admission}-{num_shards}", f"shard-{shard}"
            )
            os.makedirs(directory, exist_ok=True)
            stores.append(CheckpointLogStore(directory, geometry))
        handles = [
            pool.register(store, name=f"shard-{index:02d}")
            for index, store in enumerate(stores)
        ]
        for wave in range(waves):
            gate.clear()
            with clock_lock:
                wave_clock = clock[0]
            # Fresh shards first, the straggler's older cut last.
            order = list(range(1, num_shards)) + [0]
            for shard in order:
                cut = wave_clock - lag if shard == 0 else wave_clock
                cuts[shard].append(cut)
                handles[shard].submit(CheckpointJob(
                    object_ids=object_ids,
                    epoch=wave + 1,
                    cut_tick=cut,
                    source=sources[shard],
                    is_full_dump=True,
                ))
            gate.set()
            for handle in handles:
                handle.wait_idle(timeout=60.0)
        stats = pool.stats()
    finally:
        gate.set()  # never strand a worker mid-wave on an error path
        pool.close(timeout=30.0, wait=False)
        for store in stores:
            store.close()
    ages = np.array([
        serviced - cut
        for shard in range(num_shards)
        for serviced, cut in zip(sources[shard].service_clocks, cuts[shard])
    ], dtype=np.float64)
    straggler_ages = np.array([
        serviced - cut
        for serviced, cut in zip(sources[0].service_clocks, cuts[0])
    ], dtype=np.float64)
    return {
        "admission": admission,
        "num_shards": num_shards,
        "commits": int(ages.size),
        "p99_age_ticks": percentile(ages, 99),
        "max_age_ticks": float(ages.max()) if ages.size else 0.0,
        "mean_age_ticks": float(ages.mean()) if ages.size else 0.0,
        "straggler_max_age_ticks": (
            float(straggler_ages.max()) if straggler_ages.size else 0.0
        ),
        "max_picked_staleness_ticks": stats.max_picked_staleness_ticks,
    }


def measure_admission_overload(
    root: str, num_shards: int, waves: int, lag: int
) -> dict:
    """FIFO vs staleness admission under a saturated pool, 1x vs 2x backlog.

    The demonstration the staleness queue exists for: under sustained
    overload with an adversarial arrival order, FIFO's worst-case checkpoint
    age is ``lag + backlog`` -- it grows without bound as the backlog does
    (the 2x run roughly doubles the FIFO tail) -- while staleness admission
    services the oldest cut first and pins the straggler's age near
    ``lag + 1`` regardless of how deep the queue is.
    """
    scales = {}
    for scale in (1, 2):
        shards = num_shards * scale
        scales[f"{scale}x"] = {
            policy: _run_admission_study(root, policy, shards, waves, lag)
            for policy in ("fifo", "staleness")
        }
    one_x, two_x = scales["1x"], scales["2x"]

    def growth(metric):
        def ratio(numerator, denominator):
            return numerator / denominator if denominator > 0 else 0.0
        return {
            policy: ratio(two_x[policy][metric], one_x[policy][metric])
            for policy in ("fifo", "staleness")
        }

    # Staleness admission is "bounded" when doubling the backlog leaves its
    # age tail where the straggler's lag put it; FIFO's tail tracks the
    # backlog instead.
    bound = lag + 3  # lag + straggler's own service + one in-flight job
    return {
        "workers": 1,
        "base_num_shards": num_shards,
        "waves": waves,
        "straggler_lag_ticks": lag,
        "age_bound_ticks": bound,
        "scales": scales,
        "max_age_growth_2x_over_1x": growth("max_age_ticks"),
        "staleness_bounded": (
            two_x["staleness"]["straggler_max_age_ticks"] <= bound
            and one_x["staleness"]["straggler_max_age_ticks"] <= bound
        ),
        "fifo_exceeds_bound": two_x["fifo"]["max_age_ticks"] > bound,
    }


def measure_telemetry(
    scenario: BattleScenario,
    root: str,
    algorithm: str,
    seed: int,
    ticks: int,
    min_interval: int,
) -> dict:
    """Registry-vs-stopwatch agreement plus the metrics on/off overhead A/B.

    Two identical single-shard fleet runs, ``metrics=False`` vs
    ``metrics=True``, each tick stopwatched from outside
    ``try_run_ticks``.  The A/B bounds what hot-loop metric publication
    costs (two ``monotonic_ns`` calls plus three int64 slot writes per
    tick); the agreement check replays the stopwatch samples through an
    identical fixed-bucket histogram and compares its p99 against the
    registry's -- same estimator on both sides, so any gap is real timing
    drift between the worker's view and the caller's, not bucket
    quantization.
    """
    payload = b"heal:1"

    def run_variant(metrics_on: bool):
        label = "on" if metrics_on else "off"
        fleet = ShardFleet(
            lambda index: KnightsArchersGame(scenario),
            os.path.join(root, f"telemetry-{label}"),
            num_shards=1,
            algorithm=algorithm,
            seed=seed,
            min_checkpoint_interval_ticks=min_interval,
            pool_size=1,
            metrics=metrics_on,
        )
        samples = np.zeros(ticks)
        try:
            started = time.perf_counter()
            for index in range(ticks):
                fleet.submit_commands(0, [payload])
                tick_started = time.perf_counter()
                fleet.try_run_ticks(1)
                samples[index] = time.perf_counter() - tick_started
            wall = time.perf_counter() - started
            fleet.quiesce()
            telemetry = fleet.telemetry()
        finally:
            fleet.close()
        return {
            "ticks": ticks,
            "wall_seconds": wall,
            "ticks_per_second": ticks / wall if wall > 0 else 0.0,
            "mean_tick_seconds": float(samples.mean()),
            "p99_tick_seconds": percentile(samples, 99),
        }, samples, telemetry

    off_point, _off_samples, _ = run_variant(False)
    on_point, on_samples, telemetry = run_variant(True)

    from repro.obs.metrics import DURATION_BUCKETS_US, Histogram

    stopwatch_hist = Histogram(
        np.zeros(len(DURATION_BUCKETS_US) + 3, dtype=np.int64),
        0,
        DURATION_BUCKETS_US,
    )
    for sample in on_samples:
        stopwatch_hist.observe(sample * 1e6)
    stopwatch_hist_p99 = stopwatch_hist.percentile(0.99)
    telemetry_p99 = telemetry.tick_p99_us
    p99_ratio = (
        telemetry_p99 / stopwatch_hist_p99 if stopwatch_hist_p99 > 0 else 0.0
    )

    off_mean = off_point["mean_tick_seconds"]
    overhead_ratio = (
        (on_point["mean_tick_seconds"] - off_mean) / off_mean
        if off_mean > 0 else 0.0
    )
    return {
        "num_shards": 1,
        "pool_size": 1,
        "agreement": {
            "ticks": ticks,
            "stopwatch_p99_us": float(
                np.percentile(on_samples, 99) * 1e6
            ),
            "stopwatch_hist_p99_us": stopwatch_hist_p99,
            "telemetry_p99_us": telemetry_p99,
            "telemetry_p50_us": telemetry.tick_p50_us,
            "p99_ratio": p99_ratio,
            "within_10pct": bool(abs(p99_ratio - 1.0) <= 0.10),
        },
        "overhead": {
            "metrics_off": off_point,
            "metrics_on": on_point,
            "mean_tick_overhead_ratio": overhead_ratio,
            "within_3pct": bool(overhead_ratio <= 0.03),
        },
        "max_checkpoint_age_ticks": telemetry.max_checkpoint_age_ticks,
        "ring_high_water_bytes": telemetry.ring_high_water_bytes,
    }


def measure_durability_sweep(
    scenario: BattleScenario,
    root: str,
    algorithm: str,
    seed: int,
    ticks: int,
    min_interval: int,
) -> dict:
    """Single async shard under each fsync policy on the whole write path."""
    sweep = {}
    for policy in ("never", "commit", "always"):
        sweep[policy] = measure_single_shard(
            scenario,
            os.path.join(root, f"durability-{policy}"),
            algorithm,
            seed,
            ticks,
            min_interval,
            async_writer=True,
            fsync_policy=policy,
        )
    return sweep


def measure_fleet_recovery(
    scenario: BattleScenario,
    root: str,
    algorithm: str,
    seed: int,
    ticks: int,
    min_interval: int,
    num_shards: int,
    pool_size: int,
    disk_mbps: float,
) -> dict:
    """Serial vs parallel recovery of a crashed pooled fleet.

    Each timed variant recovers its own copy of the crashed directory tree
    (persistence-server recovery rewrites its WAL snapshot, so the crashed
    state must stay pristine between variants).  Two families of numbers:

    * **raw host**: ``ShardFleet.recover`` timed as-is.  On a single-core
      host with a warm page cache there is nothing for recovery threads to
      overlap, so the raw speedup hovers around 1.0x.
    * **modeled per-shard volume**: production shards keep their durable
      state on separate volumes holding the paper's full-scale world
      (400,128 units), and recovery is dominated by cold reads of that
      state.  Each shard's recovery additionally sleeps
      ``footprint * (PAPER_UNITS / num_units) / disk_mbps`` -- a
      GIL-releasing stand-in for its own volume's cold read, which
      therefore overlaps across recovery threads exactly as independent
      volumes do.  This is the deployment regime the parallel path exists
      for.
    """
    app_factory = lambda index: KnightsArchersGame(scenario)  # noqa: E731
    source = os.path.join(root, "recovery-fleet")
    fleet = ShardFleet(
        app_factory,
        source,
        num_shards=num_shards,
        algorithm=algorithm,
        seed=seed,
        pool_size=pool_size,
        min_checkpoint_interval_ticks=min_interval,
    )
    fleet.run_ticks(ticks, parallel=True)
    live = [shard.game.table.cells.copy() for shard in fleet.shards]
    fleet.crash()

    footprints = [
        directory_bytes(shard_directory(source, index))
        for index in range(num_shards)
    ]
    unit_scale = PAPER_UNITS / scenario.num_units
    modeled_read_seconds = [
        footprint * unit_scale / (disk_mbps * 2**20)
        for footprint in footprints
    ]

    variants = {}
    states = {}

    def timed_variant(label, recover_shard, parallel):
        workdir = os.path.join(root, f"recovery-{label}")
        shutil.copytree(source, workdir)
        bound = lambda index: recover_shard(workdir, index)  # noqa: E731
        started = time.perf_counter()
        if parallel:
            with ThreadPoolExecutor(
                max_workers=num_shards, thread_name_prefix="bench-recover"
            ) as executor:
                reports = list(executor.map(bound, range(num_shards)))
        else:
            reports = [bound(index) for index in range(num_shards)]
        wall = time.perf_counter() - started
        states[label] = [r.game.table.cells.copy() for r in reports]
        variants[label] = {
            "wall_seconds": wall,
            "sum_restore_seconds": sum(r.game.restore_seconds for r in reports),
            "sum_replay_seconds": sum(r.game.replay_seconds for r in reports),
        }
        for report in reports:
            report.persistence.close()
        shutil.rmtree(workdir)

    def raw_recover(workdir, index):
        return MMOShard.recover(
            app_factory(index), shard_directory(workdir, index),
            seed=seed + index,
        )

    def modeled_recover(workdir, index):
        started = time.perf_counter()
        recovery = raw_recover(workdir, index)
        # The cold per-shard-volume read the warm-cache host never paid;
        # time.sleep releases the GIL, so independent volumes overlap.
        remaining = modeled_read_seconds[index] - (
            time.perf_counter() - started
        )
        if remaining > 0:
            time.sleep(remaining)
        return recovery

    # Raw host timings use the production entry point end to end.
    for label, parallel in (("serial", False), ("parallel", True)):
        workdir = os.path.join(root, f"recovery-{label}")
        shutil.copytree(source, workdir)
        started = time.perf_counter()
        reports = ShardFleet.recover(
            app_factory, workdir, num_shards, seed=seed, parallel=parallel
        )
        wall = time.perf_counter() - started
        states[label] = [r.game.table.cells.copy() for r in reports]
        variants[label] = {
            "wall_seconds": wall,
            "sum_restore_seconds": sum(r.game.restore_seconds for r in reports),
            "sum_replay_seconds": sum(r.game.replay_seconds for r in reports),
        }
        for report in reports:
            report.persistence.close()
        shutil.rmtree(workdir)

    for label, parallel in (
        ("modeled_serial", False), ("modeled_parallel", True)
    ):
        timed_variant(label, modeled_recover, parallel)

    identical = all(
        np.array_equal(states["serial"][index], states[label][index])
        and np.array_equal(states["serial"][index], live[index])
        for label in ("parallel", "modeled_serial", "modeled_parallel")
        for index in range(num_shards)
    )

    def ratio(numerator, denominator):
        return numerator / denominator if denominator > 0 else 0.0

    return {
        "num_shards": num_shards,
        "pool_size": pool_size,
        "ticks_per_shard": ticks,
        "shard_footprint_bytes": footprints,
        "modeled_disk_mbps": disk_mbps,
        "modeled_unit_scale": unit_scale,
        "modeled_read_seconds_per_shard": modeled_read_seconds,
        "variants": variants,
        "raw_host_speedup": ratio(
            variants["serial"]["wall_seconds"],
            variants["parallel"]["wall_seconds"],
        ),
        "speedup": ratio(
            variants["modeled_serial"]["wall_seconds"],
            variants["modeled_parallel"]["wall_seconds"],
        ),
        "all_bit_identical": identical,
        "note": (
            "raw_host_speedup is thread-parallel recovery on this host "
            "(single core, warm page cache: nothing to overlap); 'speedup' "
            "is the modeled per-shard-volume variant where each shard's "
            "cold volume read is simulated with a GIL-releasing sleep "
            "scaled to the paper's 400,128-unit world"
        ),
    }


def check_recovery_determinism(
    scenario: BattleScenario, root: str, seed: int, ticks: int
) -> dict:
    """Serial and threaded runs must recover to bit-identical state."""
    outcomes = {}
    for key in ALGORITHM_KEYS:
        recovered = []
        for mode, async_writer in (("sync", False), ("async", True)):
            app = KnightsArchersGame(scenario)
            directory = os.path.join(root, f"det-{key}-{mode}")
            server = DurableGameServer(
                app, directory, algorithm=key, seed=seed,
                async_writer=async_writer,
            )
            server.run_ticks(ticks)
            live = server.table.cells.copy()
            server.crash()
            report = RecoveryManager(app, directory, seed=seed).recover()
            if not np.array_equal(report.table.cells, live):
                raise SystemExit(
                    f"{key} ({mode}): recovered state differs from the "
                    "pre-crash live state"
                )
            recovered.append(report.table.cells)
        outcomes[key] = bool(np.array_equal(recovered[0], recovered[1]))
    return {
        "algorithms": outcomes,
        "all_bit_identical": all(outcomes.values()),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: 2 shards, small geometry")
    parser.add_argument("--shards", type=int, default=4,
                        help="largest fleet size to scale to (default 4)")
    parser.add_argument("--ticks", type=int, default=300,
                        help="ticks per measured run (default 300)")
    parser.add_argument("--units", type=int, default=8192,
                        help="game units per shard (default 8192)")
    parser.add_argument("--algorithm", default="copy-on-update",
                        choices=list(ALGORITHM_KEYS),
                        help="algorithm for the latency/fleet measurements")
    parser.add_argument("--min-checkpoint-interval", type=int, default=16,
                        help="ticks between checkpoint starts (default 16; "
                             "pins the checkpoint cadence so the sync and "
                             "async modes are compared like for like)")
    parser.add_argument("--backend-shards", type=int, default=4,
                        help="largest fleet size for the thread-vs-process "
                             "backend A/B (default 4)")
    parser.add_argument("--backend-pool-size", type=int, default=2,
                        help="writer pool size for the backend A/B "
                             "(default 2)")
    parser.add_argument("--pool-sizes", type=int, nargs="*", default=[1, 2, 4],
                        help="writer pool sizes for the pooled fleet section "
                             "(default: 1 2 4)")
    parser.add_argument("--coalesce-pool-size", type=int, default=2,
                        help="pool size for the coalesced-I/O comparison at "
                             "fsync=commit (default 2)")
    parser.add_argument("--flush-rows", type=int, default=512,
                        help="state-table side for the flush-path benchmark "
                             "(default 512 -> 2 MiB checkpoints)")
    parser.add_argument("--flush-rounds", type=int, default=30,
                        help="checkpoints per flush-path variant (default 30)")
    parser.add_argument("--overload-shards", type=int, default=8,
                        help="base shard count for the admission-overload "
                             "study; the 2x point doubles it (default 8)")
    parser.add_argument("--overload-waves", type=int, default=12,
                        help="submission waves per admission-overload run "
                             "(default 12)")
    parser.add_argument("--overload-lag", type=int, default=4,
                        help="straggler cut lag in ticks for the "
                             "admission-overload study (default 4)")
    parser.add_argument("--recovery-shards", type=int, default=8,
                        help="fleet size for the recovery timing (default 8)")
    parser.add_argument("--recovery-disk-mbps", type=float, default=100.0,
                        help="modeled per-shard-volume read bandwidth in "
                             "MiB/s for the modeled recovery variant "
                             "(default 100)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output JSON path (default BENCH_engine.json)")
    parser.add_argument("--workdir", default=None,
                        help="directory for durable files (default: temp)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.shards = min(args.shards, 2)
        args.ticks = min(args.ticks, 60)
        args.units = min(args.units, 2048)
        args.backend_shards = min(args.backend_shards, 2)
        args.pool_sizes = [size for size in args.pool_sizes if size <= 2]
        args.coalesce_pool_size = min(args.coalesce_pool_size, 2)
        args.overload_shards = min(args.overload_shards, 4)
        args.overload_waves = min(args.overload_waves, 6)
        args.recovery_shards = min(args.recovery_shards, 4)

    scenario = BattleScenario(num_units=args.units)
    results = {
        "benchmark": "engine_io_pipeline",
        "config": {
            "smoke": args.smoke,
            "units": args.units,
            "ticks": args.ticks,
            "algorithm": args.algorithm,
            "min_checkpoint_interval_ticks": args.min_checkpoint_interval,
            "max_shards": args.shards,
            "backend_shards": args.backend_shards,
            "backend_pool_size": args.backend_pool_size,
            "pool_sizes": args.pool_sizes,
            "coalesce_pool_size": args.coalesce_pool_size,
            "flush_rows": args.flush_rows,
            "flush_rounds": args.flush_rounds,
            "overload_shards": args.overload_shards,
            "overload_waves": args.overload_waves,
            "overload_lag": args.overload_lag,
            "recovery_shards": args.recovery_shards,
            "recovery_disk_mbps": args.recovery_disk_mbps,
            "seed": args.seed,
        },
    }

    with tempfile.TemporaryDirectory(
        prefix="repro-bench-engine-", dir=args.workdir
    ) as root:
        print(f"single shard ({args.units} units, {args.ticks} ticks, "
              f"{args.algorithm}):")
        single = {}
        for mode, async_writer in (("sync", False), ("async", True)):
            metrics = measure_single_shard(
                scenario,
                os.path.join(root, f"single-{mode}"),
                args.algorithm,
                args.seed,
                args.ticks,
                args.min_checkpoint_interval,
                async_writer,
            )
            single[mode] = metrics
            print(f"  {mode:5s}: {metrics['ticks_per_second']:8.1f} t/s  "
                  f"mean {metrics['mean_tick_seconds'] * 1e3:7.3f} ms  "
                  f"p99 {metrics['p99_tick_seconds'] * 1e3:7.3f} ms  "
                  f"overlap {metrics['checkpoint_overlap_ratio']:.2f}  "
                  f"ckpts {metrics['checkpoints_completed']}")
        speedup = (
            single["sync"]["mean_tick_seconds"]
            / single["async"]["mean_tick_seconds"]
            if single["async"]["mean_tick_seconds"] > 0
            else 0.0
        )
        single["async_mean_latency_speedup"] = speedup
        single["async_faster"] = (
            single["async"]["mean_tick_seconds"]
            < single["sync"]["mean_tick_seconds"]
        )
        results["single_shard"] = single
        print(f"  async mean-latency speedup: {speedup:.2f}x")

        print("fleet scaling (per-shard async writers):")
        fleet_points = []
        num_shards = 1
        while num_shards <= args.shards:
            point = measure_fleet(
                scenario,
                os.path.join(root, f"fleet-{num_shards}"),
                args.algorithm,
                args.seed,
                args.ticks,
                args.min_checkpoint_interval,
                num_shards,
            )
            fleet_points.append(point)
            print(f"  {num_shards} shard(s): "
                  f"{point['ticks_per_second']:8.1f} t/s aggregate  "
                  f"writers {point['writer_threads']}  "
                  f"ckpts {point['checkpoints_completed']}")
            num_shards *= 2
        results["fleet"] = fleet_points

        print(f"backend scaling (thread vs process, up to "
              f"{args.backend_shards} shards, pool="
              f"{args.backend_pool_size}):")
        backend_scaling = measure_backend_scaling(
            scenario, root, args.algorithm, args.seed, args.ticks,
            args.min_checkpoint_interval, args.backend_shards,
            pool_size=args.backend_pool_size,
        )
        results["backend_scaling"] = backend_scaling
        for point in backend_scaling["points"]:
            print(f"  {point['backend']:7s} {point['num_shards']} shard(s): "
                  f"{point['ticks_per_second']:8.1f} t/s aggregate  "
                  f"efficiency {point['scaling_efficiency']:.2f}")
        if "process_speedup_at_max_shards" in backend_scaling:
            print(f"  process/thread at {args.backend_shards} shards: "
                  f"{backend_scaling['process_speedup_at_max_shards']:.2f}x "
                  f"({backend_scaling['available_cpus']} usable core(s))")

        print(f"writer pool ({args.shards} shards, shared pool):")
        pool_points = []
        for pool_size in args.pool_sizes:
            if pool_size > args.shards:
                continue
            point = measure_fleet(
                scenario,
                os.path.join(root, f"pool-{pool_size}"),
                args.algorithm,
                args.seed,
                args.ticks,
                args.min_checkpoint_interval,
                args.shards,
                pool_size=pool_size,
            )
            pool_points.append(point)
            print(f"  pool={pool_size}: "
                  f"{point['ticks_per_second']:8.1f} t/s aggregate  "
                  f"writers {point['writer_threads']}  "
                  f"mean batch {point['pool']['mean_batch_size']:.2f}  "
                  f"max queue {point['pool']['max_queue_depth']}")
        results["writer_pool"] = pool_points
        per_shard_baseline = next(
            (p for p in fleet_points if p["num_shards"] == args.shards), None
        )
        if per_shard_baseline is not None and pool_points:
            results["writer_pool_summary"] = {
                "per_shard_writer_threads": per_shard_baseline["writer_threads"],
                "pooled_writer_threads": {
                    str(p["pool_size"]): p["writer_threads"]
                    for p in pool_points
                },
                "per_shard_ticks_per_second":
                    per_shard_baseline["ticks_per_second"],
                "pooled_ticks_per_second": {
                    str(p["pool_size"]): p["ticks_per_second"]
                    for p in pool_points
                },
            }

        print(f"flush path ({args.flush_rows}x{args.flush_rows} state, "
              f"{args.flush_rounds} checkpoints/variant, fsync=commit):")
        flush_path = measure_flush_path(
            root, args.flush_rows, args.flush_rounds
        )
        results["flush_path"] = flush_path
        for layout in ("log", "double_backup"):
            point = flush_path[layout]
            print(f"  {layout:13s}: "
                  f"chunked {point['chunked']['mib_per_second']:7.1f} MiB/s  "
                  f"coalesced {point['coalesced']['mib_per_second']:7.1f} "
                  f"MiB/s  ({point['throughput_improvement']:.2f}x)")

        pool_for_coalesce = min(args.coalesce_pool_size, args.shards)
        print(f"coalesced I/O ({args.shards} shards, "
              f"pool={pool_for_coalesce}, fsync=commit):")
        coalescing = measure_coalescing(
            scenario, root, args.algorithm, args.seed, args.ticks,
            args.min_checkpoint_interval, args.shards,
            pool_size=pool_for_coalesce,
        )
        results["coalescing"] = coalescing
        for label in ("chunked", "coalesced"):
            point = coalescing[label]
            print(f"  {label:9s}: {point['ticks_per_second']:8.1f} t/s  "
                  f"mean batch {point['pool']['mean_batch_size']:.2f}  "
                  f"gathered jobs {point['pool']['coalesced_jobs']}")
        print(f"  coalesced/chunked throughput: "
              f"{coalescing['throughput_improvement']:.2f}x")

        print(f"admission overload ({args.overload_shards}/"
              f"{2 * args.overload_shards} shards, 1 worker, "
              f"straggler lag {args.overload_lag} ticks):")
        overload = measure_admission_overload(
            root, args.overload_shards, args.overload_waves,
            args.overload_lag,
        )
        results["admission_overload"] = overload
        for scale in ("1x", "2x"):
            for policy in ("fifo", "staleness"):
                point = overload["scales"][scale][policy]
                print(f"  {scale} {policy:9s}: "
                      f"p99 age {point['p99_age_ticks']:6.1f} ticks  "
                      f"max {point['max_age_ticks']:6.1f}  "
                      f"straggler max {point['straggler_max_age_ticks']:6.1f}")
        print(f"  staleness bounded at lag+3={overload['age_bound_ticks']} "
              f"ticks: {overload['staleness_bounded']}  "
              f"(FIFO max-age growth 2x/1x: "
              f"{overload['max_age_growth_2x_over_1x']['fifo']:.2f}x)")

        print("telemetry (registry vs stopwatch, metrics on/off A/B):")
        telemetry = measure_telemetry(
            scenario, root, args.algorithm, args.seed, args.ticks,
            args.min_checkpoint_interval,
        )
        results["telemetry"] = telemetry
        agreement = telemetry["agreement"]
        overhead = telemetry["overhead"]
        print(f"  registry p99 {agreement['telemetry_p99_us']:8.0f} us  "
              f"stopwatch(hist) p99 {agreement['stopwatch_hist_p99_us']:8.0f} "
              f"us  ratio {agreement['p99_ratio']:.3f}  "
              f"within 10%: {agreement['within_10pct']}")
        print(f"  metrics-on mean "
              f"{overhead['metrics_on']['mean_tick_seconds'] * 1e3:7.3f} ms  "
              f"metrics-off mean "
              f"{overhead['metrics_off']['mean_tick_seconds'] * 1e3:7.3f} ms  "
              f"overhead {overhead['mean_tick_overhead_ratio']:+.1%}  "
              f"ring hwm {telemetry['ring_high_water_bytes']} B  "
              f"max ckpt age {telemetry['max_checkpoint_age_ticks']} t")

        print("durability sweep (async, whole write path):")
        sweep = measure_durability_sweep(
            scenario, root, args.algorithm, args.seed, args.ticks,
            args.min_checkpoint_interval,
        )
        results["durability_sweep"] = sweep
        for policy, metrics in sweep.items():
            print(f"  {policy:7s}: {metrics['ticks_per_second']:8.1f} t/s  "
                  f"mean {metrics['mean_tick_seconds'] * 1e3:7.3f} ms  "
                  f"p99 {metrics['p99_tick_seconds'] * 1e3:7.3f} ms")

        print(f"fleet recovery ({args.recovery_shards} shards, "
              f"serial vs parallel):")
        recovery = measure_fleet_recovery(
            scenario, root, args.algorithm, args.seed, args.ticks,
            args.min_checkpoint_interval, args.recovery_shards,
            pool_size=max(1, min(2, args.recovery_shards)),
            disk_mbps=args.recovery_disk_mbps,
        )
        results["fleet_recovery"] = recovery
        for label in ("serial", "parallel", "modeled_serial",
                      "modeled_parallel"):
            print(f"  {label:17s}: "
                  f"{recovery['variants'][label]['wall_seconds']:7.3f} s")
        print(f"  raw host speedup: {recovery['raw_host_speedup']:.2f}x  "
              f"modeled per-volume speedup: {recovery['speedup']:.2f}x  "
              f"bit-identical: {recovery['all_bit_identical']}")

        print("recovery determinism (serial vs threaded, all algorithms):")
        determinism = check_recovery_determinism(
            scenario, root, args.seed, max(20, args.ticks // 4)
        )
        results["recovery_determinism"] = determinism
        for key, identical in determinism["algorithms"].items():
            print(f"  {key:20s} {'bit-identical' if identical else 'DIFFERS'}")

    with open(args.out, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {args.out}")

    if not results["single_shard"]["async_faster"]:
        print("WARNING: async mean tick latency was not below the "
              "synchronous baseline on this host", file=sys.stderr)
        return 1
    for layout in ("log", "double_backup"):
        if flush_path[layout]["throughput_improvement"] <= 1.0:
            print(f"WARNING: coalesced gathered writes did not beat the "
                  f"chunked flush path on the {layout} layout at "
                  f"fsync=commit on this host", file=sys.stderr)
    if not coalescing["coalesced_faster"]:
        print("WARNING: end-to-end fleet throughput with coalescing on did "
              "not beat coalescing off at fsync=commit on this host "
              "(mutator-bound; see flush_path for the isolated write path)",
              file=sys.stderr)
    if not telemetry["agreement"]["within_10pct"]:
        print("WARNING: registry-scraped tick p99 disagreed with the "
              "stopwatch-measured p99 by more than 10% on this host",
              file=sys.stderr)
    if not telemetry["overhead"]["within_3pct"]:
        print("WARNING: metrics publication cost more than 3% of mean tick "
              "latency on this host", file=sys.stderr)
    if not overload["staleness_bounded"]:
        print("ERROR: staleness admission failed to bound the straggler's "
              "checkpoint age", file=sys.stderr)
        return 4
    if not determinism["all_bit_identical"]:
        print("ERROR: serial and threaded runs recovered different state",
              file=sys.stderr)
        return 2
    if not recovery["all_bit_identical"]:
        print("ERROR: serial and parallel fleet recovery disagree",
              file=sys.stderr)
        return 3
    if (backend_scaling["multicore_host"] and args.backend_shards >= 4
            and "process_speedup_at_max_shards" in backend_scaling):
        speedup = backend_scaling["process_speedup_at_max_shards"]
        efficiency = backend_scaling["process_scaling_efficiency"]
        if speedup < 2.0 or efficiency < 0.5:
            print(f"ERROR: process backend at {args.backend_shards} shards "
                  f"reached only {speedup:.2f}x the threaded aggregate "
                  f"(scaling efficiency {efficiency:.2f}) on a "
                  f"{backend_scaling['available_cpus']}-core host; "
                  f"expected >= 2.0x and >= 0.5", file=sys.stderr)
            return 5
    elif not backend_scaling["multicore_host"]:
        print("NOTE: backend-scaling speedup not enforced on this host "
              f"({backend_scaling['available_cpus']} usable core(s) < 4); "
              "the A/B ran for correctness and trend only")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
