"""Tests for the parallel sweep engine."""

import numpy as np
import pytest

from repro.config import small_config
from repro.errors import SimulationError
from repro.experiments import fig2
from repro.experiments.common import QUICK_SCALE
from repro.simulation.sweep import SweepEngine, SweepTask
from repro.workloads.cache import TraceCache
from repro.workloads.spec import TraceSpec
from repro.workloads.zipf import ZipfTrace

TINY_SCALE = QUICK_SCALE.with_overrides(
    num_ticks=25, warmup_ticks=5, updates_sweep=(200, 800)
)


@pytest.fixture
def config():
    return small_config(warmup_ticks=5)


def make_task(config, key="point", algorithms=("naive-snapshot",), **params):
    defaults = dict(updates_per_tick=100, skew=0.8, num_ticks=10, seed=0)
    defaults.update(params)
    return SweepTask(
        key=key,
        config=config,
        spec=TraceSpec.create("zipf", config.geometry, **defaults),
        algorithms=tuple(algorithms),
    )


def summaries(results):
    return {
        key: [r.summary() for r in row] for key, row in results.items()
    }


class TestSweepTask:
    def test_requires_exactly_one_trace_source(self, config):
        spec = TraceSpec.create("zipf", config.geometry, updates_per_tick=1)
        trace = ZipfTrace(config.geometry, updates_per_tick=1, num_ticks=1)
        with pytest.raises(SimulationError):
            SweepTask(key="k", config=config)
        with pytest.raises(SimulationError):
            SweepTask(key="k", config=config, spec=spec, trace=trace)

    def test_requires_algorithms(self, config):
        spec = TraceSpec.create("zipf", config.geometry, updates_per_tick=1)
        with pytest.raises(SimulationError):
            SweepTask(key="k", config=config, spec=spec, algorithms=())


class TestSweepEngine:
    def test_rejects_bad_jobs(self):
        with pytest.raises(SimulationError):
            SweepEngine(jobs=0)

    def test_rejects_duplicate_keys(self, config):
        engine = SweepEngine(jobs=1)
        tasks = [make_task(config, key="same"), make_task(config, key="same")]
        with pytest.raises(SimulationError, match="unique"):
            engine.run(tasks)

    def test_serial_runs_all_algorithms_in_order(self, config):
        engine = SweepEngine(jobs=1)
        algorithms = ("copy-on-update", "naive-snapshot")
        results = engine.run([make_task(config, algorithms=algorithms)])
        row = results["point"]
        assert [r.algorithm_key for r in row] == list(algorithms)

    def test_stats_accumulate(self, config):
        engine = SweepEngine(jobs=1)
        engine.run([make_task(config, key="a"),
                    make_task(config, key="b", seed=1)])
        engine.run([make_task(config, key="c", seed=2,
                              algorithms=("dribble", "naive-snapshot"))])
        assert engine.stats.tasks == 3
        assert engine.stats.runs == 4
        assert engine.stats.wall_time_s > 0
        assert engine.stats.as_dict()["runs"] == 4

    def test_concrete_trace_task(self, config):
        trace = ZipfTrace(
            config.geometry, updates_per_tick=100, num_ticks=10, seed=0
        )
        engine = SweepEngine(jobs=1)
        task = SweepTask(
            key="t", config=config, trace=trace,
            algorithms=("naive-snapshot",),
        )
        via_trace = engine.run([task])["t"][0]
        via_spec = SweepEngine(jobs=1).run([make_task(config)])["point"][0]
        assert via_trace.summary() == via_spec.summary()

    def test_prepare_shares_cached_reduction(self, config, tmp_path):
        cache = TraceCache(directory=tmp_path / "cache")
        engine = SweepEngine(jobs=1, cache=cache)
        task = make_task(config)
        first = engine.prepare(task)
        second = engine.prepare(task)
        assert engine.stats.cache_misses == 1
        assert engine.stats.cache_hits == 1
        for a, b in zip(first.arrays(), second.arrays()):
            assert np.array_equal(a, b)

    def test_parallel_identical_to_serial(self, config, tmp_path):
        tasks = [
            make_task(config, key=rate, updates_per_tick=rate,
                      algorithms=("naive-snapshot", "copy-on-update",
                                  "partial-redo"))
            for rate in (100, 400)
        ]
        serial = SweepEngine(jobs=1).run(tasks)
        parallel = SweepEngine(
            jobs=3, cache=TraceCache(directory=tmp_path / "cache")
        ).run(tasks)
        assert summaries(serial) == summaries(parallel)

    def test_parallel_cache_hits_on_rerun(self, config, tmp_path):
        cache = TraceCache(directory=tmp_path / "cache")
        tasks = [make_task(config, key="a"), make_task(config, key="b",
                                                       seed=1)]
        cold = SweepEngine(jobs=2, cache=cache)
        cold.run(tasks)
        assert cold.stats.cache_misses == 2
        assert cold.stats.cache_hits == 0
        warm = SweepEngine(jobs=2, cache=cache)
        warm.run(tasks)
        assert warm.stats.cache_hits == 2
        assert warm.stats.cache_misses == 0

    def test_empty_task_list(self):
        assert SweepEngine(jobs=4).run([]) == {}


class TestFig2ThroughEngine:
    def test_parallel_fig2_sweep_identical_to_serial(self, config, tmp_path):
        serial = fig2.sweep_results(
            TINY_SCALE, config=config, engine=SweepEngine(jobs=1)
        )
        parallel = fig2.sweep_results(
            TINY_SCALE,
            config=config,
            engine=SweepEngine(
                jobs=4, cache=TraceCache(directory=tmp_path / "cache")
            ),
        )
        assert sorted(serial) == sorted(parallel) == [200, 800]
        assert summaries(serial) == summaries(parallel)
