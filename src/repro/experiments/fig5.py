"""Figure 5: the prototype game server trace (Section 5.4).

The paper feeds the simulator a trace from the Knights and Archers game:
400,128 units x 13 attributes, updates to ~10% of the units every tick,
averaging 35,590 attribute updates per tick.  Two trace sources are
supported:

* ``"gamelike"`` (default) -- the statistical model of
  :class:`~repro.workloads.gamelike.GameLikeTrace` at the paper's full
  400,128-unit geometry;
* ``"game"`` -- an actual instrumented run of the Knights and Archers game
  at ``scale.game_units`` units (Python-friendly), with the battle scoreboard
  included in the report.
"""

from __future__ import annotations

from dataclasses import replace
import numpy as np

from repro.analysis.tables import TextTable
from repro.config import GAME_CONFIG, SimulationConfig
from repro.experiments.common import (
    ExperimentScale,
    FigureResult,
    FULL_SCALE,
    format_count,
    format_seconds,
)
from repro.game.knights_archers import KnightsArchersGame
from repro.game.recorder import record_trace
from repro.game.scenario import BattleScenario
from repro.game.stats import BattleReport
from repro.simulation.simulator import CheckpointSimulator, PrecomputedObjectTrace
from repro.state.table import GameStateTable
from repro.workloads.gamelike import GameLikeTrace
from repro.workloads.stats import TraceStatistics


def build_trace(scale: ExperimentScale, source: str, seed: int):
    """Build the Figure 5 input trace; returns (trace, extra_notes)."""
    if source == "gamelike":
        trace = GameLikeTrace(num_ticks=scale.num_ticks, seed=seed)
        notes = [
            "trace source: statistical game model at the paper's full "
            "400,128-unit geometry"
        ]
        return trace, notes
    if source == "game":
        scenario = BattleScenario(num_units=scale.game_units)
        game = KnightsArchersGame(scenario)
        table = GameStateTable(scenario.geometry, dtype=np.float32)
        trace = record_trace(game, scale.num_ticks, seed=seed, table=table)
        report = BattleReport.from_table(table)
        notes = [
            f"trace source: instrumented Knights and Archers run at "
            f"{scenario.num_units:,} units",
        ] + report.describe().splitlines()
        return trace, notes
    raise ValueError(f"unknown Figure 5 trace source {source!r}")


def run(
    scale: ExperimentScale = FULL_SCALE,
    source: str = "gamelike",
    seed: int = 0,
) -> FigureResult:
    """Reproduce Figure 5 (game-trace bars for all six algorithms)."""
    trace, notes = build_trace(scale, source, seed)
    stats = TraceStatistics.from_trace(trace)
    config: SimulationConfig = replace(
        GAME_CONFIG,
        geometry=trace.geometry,
        warmup_ticks=scale.warmup_ticks,
    )
    simulator = CheckpointSimulator(config)
    results = simulator.run_all(PrecomputedObjectTrace(trace))

    table = TextTable(
        "Figure 5: game trace -- overhead / checkpoint / recovery",
        [
            "algorithm",
            "(a) avg overhead",
            "(b) time to checkpoint",
            "(c) recovery time",
            "objects/ckpt",
        ],
    )
    for result in results:
        table.add_row(
            [
                result.algorithm_name,
                format_seconds(result.avg_overhead),
                format_seconds(result.avg_checkpoint_time),
                format_seconds(result.recovery_time),
                format_count(result.avg_objects_written),
            ]
        )
    for note in notes:
        table.add_note(note)
    table.add_note(
        f"trace: {stats.avg_updates_per_tick:,.0f} avg updates/tick over "
        f"{stats.num_ticks} ticks (paper: 35,590)"
    )
    table.add_note(
        "paper: Copy-on-Update-Partial-Redo overhead 1.6 ms vs 1.2 ms for "
        "Copy-on-Update; Atomic-Copy-Dirty-Objects has the lowest overhead, "
        "slightly below Naive-Snapshot; partial-redo recovery times largest"
    )

    characterization = TextTable(
        "Table 5: characteristics of the game update trace",
        ["parameter", "setting"],
    )
    characterization.add_row(["number of units", f"{trace.geometry.rows:,}"])
    characterization.add_row(
        ["number of attributes per unit", trace.geometry.columns]
    )
    characterization.add_row(["number of ticks", f"{stats.num_ticks:,}"])
    characterization.add_row(
        ["avg. number of updates per tick", f"{stats.avg_updates_per_tick:,.0f}"]
    )

    figure = FigureResult(
        experiment_id="fig5",
        description=(
            "Overhead, checkpoint, and recovery times for the prototype game "
            "trace (Section 5.4)"
        ),
        tables=[table, characterization],
        raw={
            "results": {r.algorithm_key: r.summary() for r in results},
            "trace": {
                "avg_updates_per_tick": stats.avg_updates_per_tick,
                "rows": trace.geometry.rows,
                "columns": trace.geometry.columns,
            },
        },
    )
    return figure
