"""Tests for the process-backed shard fleet.

Everything here runs on one core (correctness, not speed): workers over
shared-memory tables, the eager-staging cut protocol, injected worker
crashes mid-tick and mid-checkpoint-flush, segment leak discipline, and
recovery of a dead shard from its last durable checkpoint.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.config import StateGeometry
from repro.engine.fleet import ShardFleet, shard_directory
from repro.engine.recovery import RecoveryManager
from repro.engine.server import DurableGameServer
from repro.engine.shard import GAME_SUBDIRECTORY
from repro.engine.shard_worker import CRASH_EXIT_CODE
from repro.errors import EngineError
from repro.state.shared import DEFAULT_TAG, segment_directory

GEOMETRY = StateGeometry(rows=400, columns=10)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend needs the fork start method",
)


@pytest.fixture
def app_factory(random_walk_app):
    app_class = type(random_walk_app)
    return lambda index: app_class(GEOMETRY)


def make_fleet(app_factory, directory, num_shards=2, **kwargs):
    kwargs.setdefault("algorithm", "copy-on-update")
    kwargs.setdefault("seed", 5)
    kwargs.setdefault("min_checkpoint_interval_ticks", 3)
    return ShardFleet(
        app_factory, directory, num_shards, backend="process", **kwargs
    )


def our_segments():
    """Shared segments owned by this process, for leak assertions."""
    prefix = f"{DEFAULT_TAG}.{os.getpid()}."
    return {
        name
        for name in os.listdir(segment_directory())
        if name.startswith(prefix)
    }


class TestNormalOperation:
    def test_run_reports_and_cleans_up(self, app_factory, tmp_path):
        before = our_segments()
        fleet = make_fleet(app_factory, tmp_path, num_shards=3)
        assert fleet.backend == "process"
        assert len(our_segments() - before) == 4  # 3 shard arenas + control
        report = fleet.run_ticks(20, checkpoint_barrier=True)
        assert report.num_shards == 3
        assert all(stats.ticks_run == 20 for stats in report.shard_stats)
        # The parent actually landed checkpoint bytes for every shard.
        assert all(stats.bytes_written > 0 for stats in report.shard_stats)
        assert all(
            stats.checkpoints_completed > 0 for stats in report.shard_stats
        )
        fleet.quiesce()
        ages = fleet.checkpoint_ages()
        assert len(ages) == 3
        assert all(0 <= age <= 20 for age in ages)
        fleet.close()
        assert our_segments() == before  # nothing leaked on orderly exit

    def test_serial_run_matches_parallel_semantics(self, app_factory, tmp_path):
        fleet = make_fleet(app_factory, tmp_path)
        report = fleet.run_ticks(10, parallel=False)
        assert all(stats.ticks_run == 10 for stats in report.shard_stats)
        fleet.close()

    def test_shards_property_raises(self, app_factory, tmp_path):
        with make_fleet(app_factory, tmp_path) as fleet:
            with pytest.raises(EngineError):
                fleet.shards

    def test_worker_pids_are_real_child_processes(self, app_factory, tmp_path):
        with make_fleet(app_factory, tmp_path) as fleet:
            pids = fleet.worker_pids
            assert len(set(pids)) == fleet.num_shards
            assert os.getpid() not in pids
            assert all(fleet.alive_workers)

    def test_writer_threads_is_pool_sized(self, app_factory, tmp_path):
        with make_fleet(app_factory, tmp_path, pool_size=3) as fleet:
            assert fleet.writer_threads == 3


class TestWorkerCrash:
    def test_kill_mid_tick_surfaces_shard_failure(self, app_factory, tmp_path):
        before = our_segments()
        fleet = make_fleet(app_factory, tmp_path, num_shards=3)
        fleet.run_ticks(10)
        fleet.crash_worker(1, when="kill")
        with pytest.raises(EngineError, match="shard 1 worker died"):
            fleet.run_ticks(15)
        assert fleet.alive_workers == [True, False, True]
        # The survivors finished their ticks despite the dead shard.
        control_ages = fleet.checkpoint_ages()
        assert len(control_ages) == 3
        fleet.close()
        assert our_segments() == before  # dead worker leaked nothing

    def test_exit_between_ticks(self, app_factory, tmp_path):
        fleet = make_fleet(app_factory, tmp_path)
        fleet.run_ticks(5)
        fleet.crash_worker(0, when="now")
        with pytest.raises(EngineError, match="shard 0 worker died"):
            fleet.run_ticks(20)
        fleet.close()

    def test_crash_at_checkpoint_handoff(self, app_factory, tmp_path):
        before = our_segments()
        fleet = make_fleet(app_factory, tmp_path)
        fleet.run_ticks(4)
        fleet.crash_worker(0, when="at_checkpoint")
        with pytest.raises(EngineError, match="exit code 42"):
            # Enough ticks that shard 0 reaches its next checkpoint cut and
            # dies right after handing it to the parent's flush path.
            fleet.run_ticks(30)
        fleet.close()
        assert our_segments() == before

    def test_crash_exit_code_is_distinct(self):
        assert CRASH_EXIT_CODE == 42

    def test_dead_shard_recovers_from_durable_checkpoint(
        self, app_factory, tmp_path
    ):
        fleet = make_fleet(app_factory, tmp_path, num_shards=2, seed=11)
        fleet.run_ticks(12)
        fleet.quiesce()
        fleet.crash_worker(1, when="kill")
        with pytest.raises(EngineError):
            fleet.run_ticks(8)
        fleet.crash()

        # Reference: the same app ticked crash-free for as long as each
        # shard's logical log reaches.
        recoveries = ShardFleet.recover(
            app_factory, tmp_path, num_shards=2, seed=11
        )
        for index, recovery in enumerate(recoveries):
            ticks = recovery.game.next_tick
            assert ticks >= 12  # nothing durable was lost
            reference = DurableGameServer(
                app_factory(index),
                tmp_path / f"reference-{index}",
                algorithm="copy-on-update",
                seed=11 + index,
            )
            reference.run_ticks(ticks)
            assert recovery.game.table.equals(reference.table)
            reference.close()
            recovery.persistence.close()
        # The dead shard restored from a checkpoint, not a cold replay.
        assert recoveries[1].game.checkpoint_epoch >= 1

    def test_fleet_crash_kills_workers_and_unlinks(self, app_factory, tmp_path):
        before = our_segments()
        fleet = make_fleet(app_factory, tmp_path)
        pids = fleet.worker_pids
        fleet.run_ticks(6)
        fleet.crash()
        assert our_segments() == before
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)


class TestBarrierDeterminism:
    def test_barrier_runs_are_reproducible(self, app_factory, tmp_path):
        def digest(root):
            out = {}
            for dirpath, _, files in os.walk(root):
                for name in sorted(files):
                    path = os.path.join(dirpath, name)
                    with open(path, "rb") as handle:
                        out[os.path.relpath(path, root)] = handle.read()
            return out

        for run in ("one", "two"):
            fleet = make_fleet(app_factory, tmp_path / run, seed=3)
            fleet.run_ticks(15, checkpoint_barrier=True)
            fleet.quiesce()
            fleet.close()
        assert digest(tmp_path / "one") == digest(tmp_path / "two")


class TestRecoverParity:
    def test_process_run_recovers_like_thread_run(self, app_factory, tmp_path):
        for backend in ("thread", "process"):
            fleet = ShardFleet(
                app_factory,
                tmp_path / backend,
                num_shards=2,
                backend=backend,
                algorithm="copy-on-update",
                seed=21,
                pool_size=2,
                min_checkpoint_interval_ticks=3,
            )
            fleet.run_ticks(18, checkpoint_barrier=True)
            fleet.quiesce()
            if backend == "thread":
                fleet.crash()
            else:
                fleet.crash()
        thread_rec = ShardFleet.recover(
            app_factory, tmp_path / "thread", num_shards=2, seed=21
        )
        process_rec = ShardFleet.recover(
            app_factory, tmp_path / "process", num_shards=2, seed=21
        )
        for a, b in zip(thread_rec, process_rec):
            assert a.game.next_tick == b.game.next_tick
            assert a.game.table.equals(b.game.table)
            a.persistence.close()
            b.persistence.close()
