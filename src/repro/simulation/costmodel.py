"""The analytic cost model of Section 4.2.

All durations are in seconds.  With ``Sobj`` the atomic-object size, ``n``
the number of atomic objects, and the Table 3 constants:

* synchronous in-memory copy of ``k`` contiguous objects::

      dT_sync(k) = Omem + k * Sobj / Bmem

  summed over all contiguous groups of the objects to be copied;

* asynchronous write of ``k`` objects::

      dT_async(k) = k * Sobj / Bdisk            (log organization)
      dT_async(k) ~ n * Sobj / Bdisk            (double backup, sorted writes)

  the double-backup sorted-write pattern needs a full disk rotation per track
  of the backup file, so its elapsed time is independent of ``k`` ("slightly
  counter-intuitive (but correct)");

* per-update overhead during copy-on-update checkpointing::

      dT_overhead = Obit + Olock + dT_sync(1)

  where ``Olock`` applies only on a failed bit test (first touch) and
  ``dT_sync(1)`` only when an old value must be saved;

* recovery::

      dT_recovery = dT_restore + dT_replay
      dT_restore  = n * Sobj / Bdisk                       (full image on disk)
      dT_restore  = (k*C + n) * Sobj / Bdisk               (partial-redo logs)
"""

from __future__ import annotations

import numpy as np

from repro.config import HardwareParameters, StateGeometry
from repro.core.plan import UpdateEffects
from repro.errors import SimulationError


def contiguous_groups(sorted_ids: np.ndarray) -> int:
    """Number of maximal runs of consecutive ids in a sorted id array."""
    if sorted_ids.size == 0:
        return 0
    return int(1 + np.count_nonzero(np.diff(sorted_ids) > 1))


class CostModel:
    """Prices the framework subroutines for one hardware/geometry pair."""

    def __init__(self, hardware: HardwareParameters, geometry: StateGeometry) -> None:
        self._hardware = hardware
        self._geometry = geometry
        object_bytes = geometry.object_bytes
        self._mem_seconds_per_object = object_bytes / hardware.memory_bandwidth
        self._disk_seconds_per_object = object_bytes / hardware.disk_bandwidth
        self._full_disk_write = geometry.num_objects * self._disk_seconds_per_object

    @property
    def hardware(self) -> HardwareParameters:
        """The Table 3 constants in use."""
        return self._hardware

    @property
    def geometry(self) -> StateGeometry:
        """The state geometry in use."""
        return self._geometry

    # ------------------------------------------------------------------
    # Synchronous in-memory copies (Copy-To-Memory)
    # ------------------------------------------------------------------

    def sync_copy_time(self, sorted_ids: np.ndarray) -> float:
        """dT_sync summed over the contiguous groups of ``sorted_ids``."""
        k = int(sorted_ids.size)
        if k == 0:
            return 0.0
        groups = contiguous_groups(sorted_ids)
        return (
            groups * self._hardware.memory_latency
            + k * self._mem_seconds_per_object
        )

    def full_sync_copy_time(self) -> float:
        """dT_sync(n) for the whole state as one contiguous run."""
        return (
            self._hardware.memory_latency
            + self._geometry.num_objects * self._mem_seconds_per_object
        )

    def single_object_copy_time(self) -> float:
        """dT_sync(1): saving one old value during copy-on-update."""
        return self._hardware.memory_latency + self._mem_seconds_per_object

    # ------------------------------------------------------------------
    # Asynchronous writes to stable storage
    # ------------------------------------------------------------------

    def log_write_time(self, write_count: int) -> float:
        """dT_async(k) for a sequential log write."""
        if write_count < 0:
            raise SimulationError(f"write_count must be >= 0, got {write_count}")
        return write_count * self._disk_seconds_per_object

    def double_backup_write_time(self, write_count: int) -> float:
        """dT_async(k) for sorted writes into a double backup.

        Independent of ``k`` (one rotation per track of the backup file)
        except for the trivial ``k = 0`` case, where nothing is written.
        """
        if write_count < 0:
            raise SimulationError(f"write_count must be >= 0, got {write_count}")
        if write_count == 0:
            return 0.0
        return self._full_disk_write

    # ------------------------------------------------------------------
    # Per-update overhead (Handle-Update)
    # ------------------------------------------------------------------

    def update_overhead(self, effects: UpdateEffects) -> float:
        """Total tick overhead for one tick's worth of update effects."""
        hw = self._hardware
        return (
            effects.bit_tests * hw.bit_test_overhead
            + effects.lock_count * hw.lock_overhead
            + effects.copy_count * self.single_object_copy_time()
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def restore_time_full_image(self) -> float:
        """dT_restore when a full consistent image is read sequentially."""
        return self._full_disk_write

    def restore_time_log(self, writes_per_checkpoint: float,
                         full_dump_period: int) -> float:
        """dT_restore for the partial-redo logs: (k*C + n) * Sobj / Bdisk."""
        if writes_per_checkpoint < 0:
            raise SimulationError(
                f"writes_per_checkpoint must be >= 0, got {writes_per_checkpoint}"
            )
        if full_dump_period < 1:
            raise SimulationError(
                f"full_dump_period must be >= 1, got {full_dump_period}"
            )
        log_objects = writes_per_checkpoint * full_dump_period
        return (
            log_objects * self._disk_seconds_per_object + self._full_disk_write
        )
