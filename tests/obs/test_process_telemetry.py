"""Process-backend telemetry: parent scrapes vs. worker ground truth,
dead-worker readability, and the cross-process trace pipeline."""

import multiprocessing
import os
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import StateGeometry
from repro.engine.fleet import ShardFleet
from repro.obs.export import validate_chrome_trace, write_chrome_trace
from repro.obs.trace import configure_tracing

GEOMETRY = StateGeometry(rows=400, columns=10)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend needs the fork start method",
)


@pytest.fixture
def app_factory(random_walk_app):
    app_class = type(random_walk_app)
    return lambda index: app_class(GEOMETRY)


def make_fleet(app_factory, directory, num_shards=2, **kwargs):
    kwargs.setdefault("algorithm", "copy-on-update")
    kwargs.setdefault("seed", 5)
    kwargs.setdefault("min_checkpoint_interval_ticks", 3)
    return ShardFleet(
        app_factory, directory, num_shards, backend="process", **kwargs
    )


class TestScrapeAgreement:
    # app_factory is a pure factory (no per-example state), so reusing it
    # across generated inputs is safe.
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        ticks=st.integers(min_value=1, max_value=6),
        commands=st.lists(
            st.integers(min_value=0, max_value=4), min_size=2, max_size=2
        ),
    )
    def test_parent_scrape_equals_worker_totals(
        self, app_factory, tmp_path_factory, ticks, commands
    ):
        """After quiesce, the shared-memory rows the parent scrapes agree
        exactly with the work the fleet was asked to do."""
        directory = tmp_path_factory.mktemp("scrape")
        fleet = make_fleet(app_factory, directory)
        try:
            for index, count in enumerate(commands):
                if count:
                    accepted = fleet.submit_commands(
                        index, [b"heal:1"] * count
                    )
                    assert accepted == count
            fleet.run_ticks(ticks)
            fleet.quiesce()
            snapshot = fleet.telemetry()
            assert snapshot.backend == "process"
            for index, shard in enumerate(snapshot.shards):
                assert shard.alive
                assert shard.ticks_run == ticks
                assert shard.commands_drained == commands[index]
                assert shard.bytes_written > 0
            total_drained = sum(s.commands_drained for s in snapshot.shards)
            assert total_drained == sum(commands)
        finally:
            fleet.close()

    def test_histograms_fill_from_worker_ticks(self, app_factory, tmp_path):
        fleet = make_fleet(app_factory, tmp_path)
        try:
            fleet.run_ticks(8)
            snapshot = fleet.telemetry()
            # Every worker published one tick-duration sample per tick.
            for shard in snapshot.shards:
                assert shard.tick_p50_us > 0
                assert shard.tick_p99_us >= shard.tick_p50_us
            assert snapshot.tick_p99_us > 0
        finally:
            fleet.close()


class TestDeadWorker:
    def test_last_published_values_survive_the_worker(self, app_factory,
                                                      tmp_path):
        """A SIGKILLed worker's metrics row lives in the shared arena, so
        the parent still reads its final published values."""
        fleet = make_fleet(app_factory, tmp_path)
        try:
            fleet.run_ticks(5)
            fleet.crash_worker(0, when="kill")
            deadline = time.monotonic() + 5.0
            while not fleet.dead_shards() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert fleet.dead_shards() == [0]
            snapshot = fleet.telemetry()
            dead, live = snapshot.shards
            assert dead.alive is False
            assert dead.ticks_run == 5  # the corpse's row is still readable
            assert dead.tick_p50_us > 0
            assert live.alive is True
        finally:
            fleet.close()


class TestCrossProcessTracing:
    def test_worker_spans_export_as_valid_chrome_trace(self, app_factory,
                                                       tmp_path):
        configure_tracing(True)
        try:
            fleet = make_fleet(app_factory, tmp_path)
            try:
                fleet.run_ticks(4)
                events = fleet.trace_events()
            finally:
                fleet.close()
        finally:
            tracer = configure_tracing(False)
            tracer.drain()
        parent_pid = os.getpid()
        worker_pids = {e["pid"] for e in events} - {parent_pid}
        assert worker_pids, "no worker-side spans crossed the trace ring"
        names = {e["name"] for e in events}
        assert "shard_tick" in names
        assert "fleet_run_ticks" in names
        path = str(tmp_path / "trace.json")
        write_chrome_trace(
            path, events,
            process_names={pid: f"worker {pid}" for pid in worker_pids},
        )
        assert validate_chrome_trace(path) == len(events) + len(worker_pids)

    def test_tracing_disabled_fleet_emits_nothing(self, app_factory,
                                                  tmp_path):
        fleet = make_fleet(app_factory, tmp_path)
        try:
            fleet.run_ticks(3)
            assert fleet.trace_events() == []
        finally:
            fleet.close()
