"""The merged fleet snapshot: per-shard schema and telemetry dataclasses.

Two halves:

* :data:`SHARD_METRIC_SPECS` -- the per-shard metrics row every backend
  publishes (tick-duration histogram, commands drained, staging time, cut
  lag).  On the process backend the row is an int64 slot in the shard's
  :class:`~repro.state.shared.SharedArena` written by the worker's tick
  loop and scraped by the parent with zero syscalls; on the thread backend
  it is an ordinary in-process registry row written by the driver thread.
  Same layout either way, so :meth:`~repro.engine.fleet.ShardFleet.telemetry`
  merges them identically.

* :class:`FleetTelemetry` / :class:`ShardTelemetry` / :class:`PoolTelemetry`
  -- the detached, JSON-serializable snapshot assembled by the fleet,
  served through the gateway's ``STATS`` frame, and printed by
  ``python -m repro.obs.dump``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import (
    DURATION_BUCKETS_US,
    HistogramSnapshot,
    MetricSpec,
    MetricsLayout,
    global_registry,
    merge_histograms,
)

#: The per-shard metrics row.  Single writer *per field*, exactly like the
#: control row: the shard's tick loop (the worker process, or the driver
#: thread on the thread backend) owns ``tick_us`` / ``commands_drained`` /
#: ``staging_us`` / ``cut_lag_ticks``; the fleet parent, which is the ring
#: producer, owns ``ring_high_water_bytes``.
SHARD_METRIC_SPECS: Tuple[MetricSpec, ...] = (
    MetricSpec("tick_us", "histogram", DURATION_BUCKETS_US),
    MetricSpec("commands_drained", "counter"),
    MetricSpec("staging_us", "counter"),
    MetricSpec("cut_lag_ticks", "gauge"),
    MetricSpec("ring_high_water_bytes", "gauge"),
)

#: The one layout both sides of a shared shard-metrics slot agree on.
SHARD_METRICS_LAYOUT = MetricsLayout(SHARD_METRIC_SPECS)

#: Arena slot name of the per-shard metrics row.
SHARD_METRICS_SLOT = "obs_metrics"


def shard_metrics_slot_spec():
    """Arena slot spec of one shard's metrics row (1 row per shard arena)."""
    return SHARD_METRICS_LAYOUT.slot_spec(1, slot=SHARD_METRICS_SLOT)


@dataclass(frozen=True)
class ShardTelemetry:
    """One shard's slice of the fleet snapshot."""

    index: int
    alive: bool
    ticks_run: int
    tick_p50_us: float
    tick_p99_us: float
    tick_mean_us: float
    commands_drained: int
    #: Microseconds the worker spent gathering cut-consistent payloads.
    staging_us: int
    #: Ticks run since the newest cut handed to the checkpoint path.
    cut_lag_ticks: int
    #: Ticks run beyond the newest *durable* cut (replay work on a crash).
    checkpoint_age_ticks: int
    bytes_written: int
    ring_pending_bytes: int
    ring_capacity_bytes: int
    #: Fullest the shard's command ingress has ever been, in ring bytes.
    ring_high_water_bytes: int


@dataclass(frozen=True)
class PoolTelemetry:
    """The shared checkpoint writer pool's slice of the snapshot."""

    num_workers: int
    queue_depth: int
    max_queue_depth: int
    jobs_submitted: int
    jobs_completed: int
    jobs_abandoned: int
    bytes_written: int
    busy_seconds: float
    mean_batch_size: float
    coalesced_jobs: int
    chunked_jobs: int
    max_checkpoint_age_ticks: int

    @classmethod
    def from_stats(cls, stats, num_workers: int) -> "PoolTelemetry":
        """Build from a :class:`~repro.engine.writer_pool.PoolStats`."""
        return cls(
            num_workers=num_workers,
            queue_depth=stats.queue_depth,
            max_queue_depth=stats.max_queue_depth,
            jobs_submitted=stats.jobs_submitted,
            jobs_completed=stats.jobs_completed,
            jobs_abandoned=stats.jobs_abandoned,
            bytes_written=stats.bytes_written,
            busy_seconds=stats.busy_seconds,
            mean_batch_size=stats.mean_batch_size,
            coalesced_jobs=stats.coalesced_jobs,
            chunked_jobs=stats.chunked_jobs,
            max_checkpoint_age_ticks=stats.max_checkpoint_age_ticks,
        )


@dataclass(frozen=True)
class FleetTelemetry:
    """One consistent-enough view of the whole serving stack.

    Scrape consistency: every number is read without locks from
    single-writer cells, so fields may be a tick apart from each other but
    each is individually exact (never torn).  The fleet-wide percentiles
    come from merging the shards' fixed-bucket histograms, so they are
    O(shards * buckets) to compute however long the fleet has run.
    """

    backend: str
    num_shards: int
    shards: List[ShardTelemetry]
    #: Fleet-merged tick-duration percentiles, microseconds.
    tick_p50_us: float
    tick_p99_us: float
    tick_mean_us: float
    max_checkpoint_age_ticks: int
    ring_high_water_bytes: int
    pool: Optional[PoolTelemetry] = None
    #: Process-global recovery counters (stalls, bytes restored, ...).
    recovery: Dict[str, int] = field(default_factory=dict)
    #: Gateway serving counters, when served through a front door.
    gateway: Optional[Dict[str, int]] = None

    def as_dict(self) -> Dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict) -> "FleetTelemetry":
        shards = [ShardTelemetry(**shard) for shard in data.get("shards", [])]
        pool = data.get("pool")
        return cls(
            backend=data["backend"],
            num_shards=data["num_shards"],
            shards=shards,
            tick_p50_us=data["tick_p50_us"],
            tick_p99_us=data["tick_p99_us"],
            tick_mean_us=data["tick_mean_us"],
            max_checkpoint_age_ticks=data["max_checkpoint_age_ticks"],
            ring_high_water_bytes=data["ring_high_water_bytes"],
            pool=PoolTelemetry(**pool) if pool else None,
            recovery=dict(data.get("recovery", {})),
            gateway=data.get("gateway"),
        )

    @classmethod
    def from_json(cls, blob: str) -> "FleetTelemetry":
        return cls.from_dict(json.loads(blob))


def recovery_counters() -> Dict[str, int]:
    """Snapshot of the process-global recovery counters."""
    row = global_registry()
    return {
        "recoveries_completed": row.value("recoveries_completed"),
        "recovery_stalls": row.value("recovery_stalls"),
        "recovery_bytes_restored": row.value("recovery_bytes_restored"),
        "recovery_replay_ticks": row.value("recovery_replay_ticks"),
    }


def assemble_fleet_telemetry(
    backend: str,
    shards: List[ShardTelemetry],
    tick_histograms: List[Optional[HistogramSnapshot]],
    pool: Optional[PoolTelemetry] = None,
    gateway: Optional[Dict[str, int]] = None,
) -> FleetTelemetry:
    """Fold per-shard rows into the one merged snapshot."""
    merged = merge_histograms([h for h in tick_histograms if h is not None])
    return FleetTelemetry(
        backend=backend,
        num_shards=len(shards),
        shards=shards,
        tick_p50_us=merged.percentile(0.50) if merged else 0.0,
        tick_p99_us=merged.percentile(0.99) if merged else 0.0,
        tick_mean_us=merged.mean if merged else 0.0,
        max_checkpoint_age_ticks=max(
            (shard.checkpoint_age_ticks for shard in shards), default=0
        ),
        ring_high_water_bytes=max(
            (shard.ring_high_water_bytes for shard in shards), default=0
        ),
        pool=pool,
        recovery=recovery_counters(),
        gateway=gateway,
    )
