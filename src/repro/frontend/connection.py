"""Connection server: sessions, command routing, and rate limiting.

Clients never talk to the game server directly; a connection server
authenticates them into *sessions* and forwards their commands into the
shard's durable command path (where they are logged and replayed on
recovery).  Session bookkeeping and admission control live in the shared
:class:`~repro.frontend.sessions.SessionRegistry` -- the same machinery the
fleet-wide :class:`~repro.frontend.gateway.GatewayServer` uses -- so there
is exactly one command-admission path however a client arrives.  On top of
the per-tick budget, ``max_pending_commands`` bounds how many commands one
session may queue ahead of the next tick; both violations raise the typed
:class:`~repro.frontend.sessions.CommandOverflowError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.shard import MMOShard
from repro.frontend.sessions import (
    ClientSession,
    CommandOverflowError,
    SessionError,
    SessionRegistry,
)
from repro.persistence.server import TradeResult

__all__ = [
    "ClientSession",
    "CommandOverflowError",
    "ConnectionServer",
    "ConnectionStats",
    "SessionError",
]


@dataclass
class ConnectionStats:
    """Aggregate counters across all sessions."""

    sessions_opened: int = 0
    sessions_closed: int = 0
    commands_routed: int = 0
    commands_rejected: int = 0
    trades_routed: int = 0


class ConnectionServer:
    """Routes clients into one shard (the middle tier of Figure 1)."""

    def __init__(self, shard: MMOShard,
                 commands_per_tick_limit: int = 16,
                 max_pending_commands: Optional[int] = 256) -> None:
        self._shard = shard
        self._registry = SessionRegistry(
            commands_per_tick_limit=commands_per_tick_limit,
            max_pending_commands=max_pending_commands,
        )
        self.stats = ConnectionStats()

    @property
    def shard(self) -> MMOShard:
        """The shard this connection server fronts."""
        return self._shard

    @property
    def session_count(self) -> int:
        """Number of currently connected clients."""
        return self._registry.count

    @property
    def registry(self) -> SessionRegistry:
        """The underlying session registry (shared admission machinery)."""
        return self._registry

    @property
    def geometry(self):
        """World geometry, for load drivers that target units."""
        return self._shard.game.table.geometry

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def connect(self, player_name: str) -> int:
        """Open a session; returns its id."""
        session = self._registry.connect(
            player_name, tick=self._shard.game.ticks_run
        )
        self.stats.sessions_opened += 1
        return session.session_id

    def disconnect(self, session_id: int) -> None:
        """Close a session; its queued commands still execute."""
        self._registry.disconnect(session_id)
        self.stats.sessions_closed += 1

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def send_command(self, session_id: int, command: bytes) -> None:
        """Forward one client command into the shard's durable command path.

        Raises :class:`CommandOverflowError` (a :class:`SessionError`) when
        the session's per-tick budget or pending-command bound is exhausted
        -- the command is dropped, as a flooding client's would be.
        """
        try:
            self._registry.admit(session_id)
        except CommandOverflowError:
            self.stats.commands_rejected += 1
            raise
        self._shard.game.submit_command(command)
        self.stats.commands_routed += 1

    def request_trade(self, session_id: int, item_id: int, seller_id: int,
                      buyer_id: int, price: int) -> TradeResult:
        """Route an ACID trade to the persistence server."""
        session = self._registry.get(session_id)
        result = self._shard.trade_item(item_id, seller_id, buyer_id, price)
        session.trades_requested += 1
        self.stats.trades_routed += 1
        return result

    # ------------------------------------------------------------------
    # Tick integration
    # ------------------------------------------------------------------

    def run_tick(self) -> int:
        """Advance the shard one tick and reset per-tick command budgets.

        Every pending command is applied by this tick (the game server
        drains its whole backlog at the tick boundary), so pending counts
        drop to zero alongside the per-tick budgets.
        """
        updates = self._shard.run_tick()
        self._registry.end_tick()
        self._registry.mark_all_applied()
        return updates

    def session(self, session_id: int) -> ClientSession:
        """Look up one session (for tests and tooling)."""
        return self._registry.get(session_id)
