"""Algorithm selection: the paper's Section 8 recommendations, executable.

Given a workload (an update trace) and a configuration, the advisor runs the
simulator for all six algorithms and ranks them by the paper's own decision
procedure:

1. algorithms whose worst tick stays within the half-tick latency limit
   beat algorithms that violate it ("pauses longer than half the length of a
   tick introduce latency that has to be dealt with ... via latency masking
   techniques");
2. within a latency class, lower recovery time wins (recommendation 3:
   double-backup dirty-object methods "exhibit recovery times either better
   or comparable to other methods");
3. ties break on average overhead.

On the paper's workloads this procedure selects Copy-on-Update
(recommendation 4); at extreme update rates where *every* method blows the
limit, it falls back to the lowest-latency violator -- Naive-Snapshot
(recommendation 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import SimulationConfig
from repro.simulation.results import SimulationResult
from repro.simulation.simulator import CheckpointSimulator, TraceLike


@dataclass(frozen=True)
class AlgorithmAssessment:
    """One algorithm's standing in the recommendation ranking."""

    rank: int
    algorithm_key: str
    algorithm_name: str
    fits_latency_limit: bool
    max_overhead: float
    avg_overhead: float
    recovery_time: float
    rationale: str


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict for one workload."""

    best: AlgorithmAssessment
    ranking: Tuple[AlgorithmAssessment, ...]
    #: True when no algorithm respects the latency limit (the paper's
    #: "extreme update rates" regime: invest in latency masking).
    requires_latency_masking: bool
    #: True when the trace was too short for at least two completed
    #: checkpoints per algorithm after warmup -- peak statistics may then
    #: miss the checkpoint boundary entirely.  Re-run with more ticks.
    low_confidence: bool = False

    def describe(self) -> str:
        """Multi-line explanation of the verdict."""
        lines = [
            f"recommended: {self.best.algorithm_name} -- {self.best.rationale}"
        ]
        if self.low_confidence:
            lines.append(
                "warning: fewer than two checkpoints completed in the "
                "measured window; extend the trace for reliable peaks"
            )
        if self.requires_latency_masking:
            lines.append(
                "warning: every method violates the half-tick latency limit "
                "on this workload; plan for latency-masking techniques "
                "(paper recommendation 2)"
            )
        for assessment in self.ranking:
            lines.append(
                f"  {assessment.rank}. {assessment.algorithm_name:<28} "
                f"peak {assessment.max_overhead * 1e3:6.2f} ms  "
                f"avg {assessment.avg_overhead * 1e3:6.3f} ms  "
                f"recovery {assessment.recovery_time:6.2f} s  "
                f"{'fits limit' if assessment.fits_latency_limit else 'VIOLATES limit'}"
            )
        return "\n".join(lines)


def _rationale(result: SimulationResult, fits: bool, best_fits: bool) -> str:
    if fits:
        return (
            "respects the half-tick latency limit with the lowest recovery "
            "time in its class"
        )
    if not best_fits:
        return (
            "no method fits the latency limit at this update rate; this one "
            "has the smallest peak pause"
        )
    return "violates the latency limit on this workload"


def recommend(
    trace: TraceLike,
    config: SimulationConfig,
    simulator: Optional[CheckpointSimulator] = None,
) -> Recommendation:
    """Simulate all six algorithms on ``trace`` and rank them per Section 8."""
    if simulator is None:
        simulator = CheckpointSimulator(config)
    results = simulator.run_all(trace)

    def sort_key(result: SimulationResult):
        fits = not result.exceeds_latency_limit()
        if fits:
            return (0, result.recovery_time, result.avg_overhead)
        # Violators rank below all fitters, ordered by peak then recovery.
        return (1, result.max_overhead, result.recovery_time)

    ordered = sorted(results, key=sort_key)
    any_fits = any(not result.exceeds_latency_limit() for result in results)

    ranking: List[AlgorithmAssessment] = []
    for rank, result in enumerate(ordered, start=1):
        fits = not result.exceeds_latency_limit()
        ranking.append(
            AlgorithmAssessment(
                rank=rank,
                algorithm_key=result.algorithm_key,
                algorithm_name=result.algorithm_name,
                fits_latency_limit=fits,
                max_overhead=result.max_overhead,
                avg_overhead=result.avg_overhead,
                recovery_time=result.recovery_time,
                rationale=_rationale(result, fits, rank == 1 and not any_fits),
            )
        )
    best = ranking[0]
    if not any_fits:
        best = AlgorithmAssessment(
            rank=best.rank,
            algorithm_key=best.algorithm_key,
            algorithm_name=best.algorithm_name,
            fits_latency_limit=False,
            max_overhead=best.max_overhead,
            avg_overhead=best.avg_overhead,
            recovery_time=best.recovery_time,
            rationale=(
                "lowest peak pause among universally-violating methods "
                "(pair with latency masking)"
            ),
        )
        ranking[0] = best
    warmup = config.warmup_ticks
    low_confidence = any(
        sum(
            1
            for record in result.checkpoints
            if record.completed and record.start_tick >= warmup
        )
        < 2
        for result in results
    )
    return Recommendation(
        best=best,
        ranking=tuple(ranking),
        requires_latency_masking=not any_fits,
        low_confidence=low_confidence,
    )
