"""Shared-memory segments backing game state across process boundaries.

The process-backed fleet (``ShardFleet(backend="process")``) runs each
shard's mutator loop in a worker process while the parent's checkpoint
writer pool lands the bytes on disk.  For that split to be zero-copy, the
state a checkpoint reads must live in memory both processes map:

* :class:`SharedArena` -- one shared-memory segment subdivided into named,
  64-byte-aligned numpy arrays ("slots").  The arena is a plain file in
  ``/dev/shm`` (tmpfs; falls back to the temp directory on platforms
  without it) mapped ``MAP_SHARED``, deliberately *not*
  ``multiprocessing.shared_memory``: owning the file ourselves sidesteps
  the resource-tracker's attach/unlink races and makes the on-disk name --
  ``<tag>.<owner-pid>.<token>`` -- carry the lifecycle discipline.
* :class:`SharedGameStateTable` -- a :class:`~repro.state.table.GameStateTable`
  whose cell buffer is an arena slot, so a worker's live world is readable
  by the parent (and vice versa) without serialization.

Lifecycle discipline ("tmp-name + owner-pid"): the *parent* creates every
segment before forking workers and is the only process that ever unlinks
one, so a crashed or killed worker cannot leak -- the parent's
``close``/``crash`` paths (and a GC finalizer as a last resort) remove the
file.  If the parent itself dies ungracefully, the segment name still
records the dead owner's pid: :func:`reap_stale_segments` scans the segment
directory and unlinks any segment whose owner is no longer alive, which the
process fleet runs defensively at startup.
"""

from __future__ import annotations

import errno
import mmap
import os
import secrets
import tempfile
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import StateGeometry
from repro.errors import StateError
from repro.state.table import GameStateTable

#: Default segment-name prefix; the leak check and the reaper key off it.
DEFAULT_TAG = "repro-shm"

#: Slot alignment, matching a cache line so adjacent slots never false-share.
SLOT_ALIGN = 64

#: A slot spec: ``(name, shape, dtype)``.
SlotSpec = Tuple[str, Tuple[int, ...], np.dtype]


def segment_directory() -> str:
    """Directory shared-memory segments live in.

    ``/dev/shm`` (tmpfs -- true shared memory) when present and writable;
    otherwise the system temp directory, where the segments are ordinary
    file-backed shared mappings with identical semantics and merely a
    page-cache-mediated cost profile.
    """
    shm = "/dev/shm"
    if os.path.isdir(shm) and os.access(shm, os.W_OK):
        return shm
    return tempfile.gettempdir()


def _segment_name(tag: str) -> str:
    """``<tag>.<pid>.<token>``: the pid is the owner the reaper checks."""
    return f"{tag}.{os.getpid()}.{secrets.token_hex(4)}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def reap_stale_segments(
    tag: str = DEFAULT_TAG, directory: Optional[str] = None
) -> List[str]:
    """Unlink segments whose owner process is dead; returns removed paths.

    The safety net for a SIGKILLed *parent* (workers can never leak: they do
    not own segments).  Safe to run concurrently with live fleets -- only
    segments naming a dead owner pid are touched.
    """
    directory = directory or segment_directory()
    removed = []
    prefix = tag + "."
    try:
        names = os.listdir(directory)
    except OSError:
        return removed
    for name in names:
        if not name.startswith(prefix):
            continue
        parts = name[len(prefix):].split(".")
        try:
            owner = int(parts[0])
        except (ValueError, IndexError):
            continue
        if _pid_alive(owner):
            continue
        path = os.path.join(directory, name)
        try:
            os.unlink(path)
            removed.append(path)
        except OSError:
            pass
    return removed


class SharedArena:
    """One shared-memory segment subdivided into named numpy arrays.

    Created by the owning process with :meth:`create` (the slots determine
    the layout), inherited by forked children as-is, or attached by name
    with :meth:`attach` (spawned children must be given the same slot spec).
    ``array(name)`` returns a live numpy view; every process sees every
    other's writes to it.
    """

    def __init__(
        self,
        path: str,
        slots: Sequence[SlotSpec],
        create: bool,
        tag: str = DEFAULT_TAG,
    ) -> None:
        offsets: Dict[str, Tuple[int, Tuple[int, ...], np.dtype]] = {}
        offset = 0
        for name, shape, dtype in slots:
            if name in offsets:
                raise StateError(f"duplicate arena slot {name!r}")
            dtype = np.dtype(dtype)
            nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            if nbytes < 0:
                raise StateError(f"negative slot size for {name!r}")
            offsets[name] = (offset, tuple(shape), dtype)
            offset += -(-nbytes // SLOT_ALIGN) * SLOT_ALIGN
        self._slots = offsets
        self._size = max(offset, mmap.PAGESIZE)
        self._path = path
        self._tag = tag
        self._owner_pid = os.getpid() if create else None
        self._closed = False
        if create:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
        else:
            fd = os.open(path, os.O_RDWR)
        try:
            if create:
                os.ftruncate(fd, self._size)  # zero-filled by the kernel
            elif os.fstat(fd).st_size < self._size:
                raise StateError(
                    f"segment {path} is smaller than the slot layout "
                    f"({os.fstat(fd).st_size} < {self._size} bytes)"
                )
            self._map = mmap.mmap(fd, self._size, flags=mmap.MAP_SHARED)
        except BaseException:
            os.close(fd)
            if create:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            raise
        os.close(fd)
        self._views: Dict[str, np.ndarray] = {}
        if create:
            # Last-resort cleanup if the owner drops the arena without
            # calling unlink (the fleet's close/crash paths do it properly).
            self._finalizer = weakref.finalize(
                self, _unlink_quietly, path, os.getpid()
            )
        else:
            self._finalizer = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        slots: Sequence[SlotSpec],
        tag: str = DEFAULT_TAG,
        directory: Optional[str] = None,
    ) -> "SharedArena":
        """Allocate a fresh zero-filled segment owned by this process."""
        directory = directory or segment_directory()
        for _ in range(8):
            path = os.path.join(directory, _segment_name(tag))
            try:
                return cls(path, slots, create=True, tag=tag)
            except OSError as error:
                if error.errno != errno.EEXIST:
                    raise
        raise StateError(f"could not allocate a unique segment under {directory}")

    @classmethod
    def attach(
        cls, path: str, slots: Sequence[SlotSpec], tag: str = DEFAULT_TAG
    ) -> "SharedArena":
        """Map an existing segment (non-owning: never unlinks it)."""
        return cls(path, slots, create=False, tag=tag)

    # ------------------------------------------------------------------
    # Introspection and access
    # ------------------------------------------------------------------

    @property
    def path(self) -> str:
        """Filesystem path of the backing segment."""
        return self._path

    @property
    def size(self) -> int:
        """Mapped size in bytes (slot layout rounded up to a page)."""
        return self._size

    @property
    def owner_pid(self) -> Optional[int]:
        """Pid that created (and must unlink) the segment; None if attached."""
        return self._owner_pid

    @property
    def is_owner(self) -> bool:
        """True in the process that created the segment.

        A forked child inherits the parent's arena object but must never
        unlink it, so ownership is re-checked against the live pid.
        """
        return self._owner_pid == os.getpid()

    def slot_names(self) -> List[str]:
        """Names of the arena's slots, in layout order."""
        return list(self._slots)

    def array(self, name: str) -> np.ndarray:
        """Live shared view of slot ``name`` (same array on repeat calls)."""
        if self._closed:
            raise StateError(f"arena {self._path} is closed")
        view = self._views.get(name)
        if view is None:
            try:
                offset, shape, dtype = self._slots[name]
            except KeyError:
                raise StateError(
                    f"arena has no slot {name!r}; slots: {self.slot_names()}"
                ) from None
            count = int(np.prod(shape, dtype=np.int64))
            view = np.frombuffer(
                self._map, dtype=dtype, count=count, offset=offset
            ).reshape(shape)
            self._views[name] = view
        return view

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        try:
            self._map.close()
        except BufferError:
            # A live numpy view still pins the mapping; the memory is
            # reclaimed when the last view is garbage-collected.  Unlink
            # still works -- POSIX removes the name, not the mapping.
            pass

    def unlink(self) -> None:
        """Remove the segment file (owner only; idempotent).

        Mapped views -- ours or a worker's -- stay valid until unmapped;
        unlink removes the *name* so nothing new can attach and the kernel
        frees the memory once the last mapping goes away.
        """
        if not self.is_owner:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
        try:
            os.unlink(self._path)
        except FileNotFoundError:
            pass

    def destroy(self) -> None:
        """Owner teardown: unlink the name, then drop the mapping."""
        self.unlink()
        self.close()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.destroy()


def _unlink_quietly(path: str, owner_pid: int) -> None:
    if os.getpid() != owner_pid:
        return  # a forked child GC'ing its inherited copy must not unlink
    try:
        os.unlink(path)
    except OSError:
        pass


class SharedGameStateTable(GameStateTable):
    """A game-state table whose cell buffer lives in a :class:`SharedArena`.

    Behaviourally identical to :class:`~repro.state.table.GameStateTable`
    (it *is* one); the only difference is where the bytes live.  Use
    :meth:`slot_spec` when laying out the arena so the slot is sized and
    typed correctly.
    """

    SLOT = "table"

    def __init__(
        self,
        geometry: StateGeometry,
        arena: SharedArena,
        dtype=np.uint32,
        slot: str = SLOT,
    ) -> None:
        super().__init__(geometry, dtype=dtype, buffer=arena.array(slot))
        self._arena = arena

    @property
    def arena(self) -> SharedArena:
        """The arena holding the cell buffer."""
        return self._arena

    @staticmethod
    def slot_spec(geometry: StateGeometry, dtype, slot: str = SLOT) -> SlotSpec:
        """Arena slot spec for a table of this geometry and dtype."""
        padded = geometry.num_objects * geometry.cells_per_object
        return (slot, (padded,), np.dtype(dtype))
