"""Naive-Snapshot: quiesce, eagerly copy everything, write asynchronously.

"The simplest consistent checkpointing technique is to quiesce the system at
the end of a tick and eagerly create a consistent copy of the state in main
memory.  We then write the state to stable storage asynchronously."
(Section 3.2.)  Following the paper's experiments, the double-backup disk
structure is used.

Naive-Snapshot does no per-update work at all -- no dirty bits, no locks --
which is why it has the lowest *total* overhead at extreme update rates
(Section 5.2), but it concentrates a full-state memory copy (~17 ms for the
paper's 40 MB state) into a single tick.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import CheckpointPlan, DiskLayout, UpdateEffects
from repro.core.policy import CheckpointPolicy


class NaiveSnapshot(CheckpointPolicy):
    """Eager copy of all objects; double-backup disk organization."""

    key = "naive-snapshot"
    name = "Naive-Snapshot"
    eager_copy = True
    copies_dirty_only = False
    layout = DiskLayout.DOUBLE_BACKUP
    SUBROUTINES = {
        "Copy-To-Memory": "All objects",
        "Write-Copies-To-Stable-Storage": "All objects, log",
        "Handle-Update": "No-op",
        "Write-Objects-To-Stable-Storage": "No-op",
    }

    def __init__(self, num_objects: int, full_dump_period: int = 9) -> None:
        super().__init__(num_objects, full_dump_period)
        # The whole state is one contiguous run, copied every checkpoint.
        self._all_ids = np.arange(num_objects, dtype=np.int64)

    def _begin(self, checkpoint_index: int) -> CheckpointPlan:
        return CheckpointPlan(
            checkpoint_index=checkpoint_index,
            eager_copy_ids=self._all_ids,
            write_ids=None,
            layout=self.layout,
        )

    def _handle(self, unique_objects: np.ndarray, update_count: int) -> UpdateEffects:
        return UpdateEffects.none()
