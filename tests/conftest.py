"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    PAPER_HARDWARE,
    SimulationConfig,
    StateGeometry,
)
from repro.engine.app import TickApplication, TickUpdatesPlan


@pytest.fixture
def tiny_geometry() -> StateGeometry:
    """4,000 cells in 32 objects -- enough structure, instant tests."""
    return StateGeometry(rows=400, columns=10)


@pytest.fixture
def tiny_config(tiny_geometry) -> SimulationConfig:
    return SimulationConfig(hardware=PAPER_HARDWARE, geometry=tiny_geometry)


class RandomWalkApp(TickApplication):
    """A minimal deterministic tick application for engine tests.

    Every tick bumps a random sample of cells by a random amount -- enough
    churn to dirty objects unevenly while staying trivially deterministic.
    """

    def __init__(self, geometry: StateGeometry, updates_per_tick: int = 50):
        self._geometry = geometry
        self._updates_per_tick = updates_per_tick

    @property
    def geometry(self) -> StateGeometry:
        return self._geometry

    @property
    def dtype(self):
        return np.float32

    def initialize(self, table, rng: np.random.Generator) -> None:
        table.cells[:] = rng.random(table.cells.shape).astype(np.float32)

    def plan_tick(self, table, rng: np.random.Generator, tick: int):
        n = self._updates_per_tick
        rows = rng.integers(0, self._geometry.rows, n)
        columns = rng.integers(0, self._geometry.columns, n)
        values = (table.cells[rows, columns] + rng.random(n)).astype(np.float32)
        return TickUpdatesPlan(rows=rows, columns=columns, values=values)

    def tick_object_scope(self, geometry, rng, tick, commands):
        # The cell draws come before the value draw, so replaying just the
        # index draws on the scratch generator predicts the exact touch set.
        n = self._updates_per_tick
        rows = rng.integers(0, geometry.rows, n)
        columns = rng.integers(0, geometry.columns, n)
        return geometry.object_of_cell(geometry.cell_index(rows, columns))


@pytest.fixture
def random_walk_app(tiny_geometry) -> RandomWalkApp:
    return RandomWalkApp(tiny_geometry)
