"""Ablation studies beyond the paper's sweeps.

The paper fixes several design constants and names their exploration as
future work ("we plan to explore how choices for different hardware
parameters affect the performance of the various recovery algorithms").
These experiments sweep them:

* ``objsize``  -- atomic-object size ``Sobj`` (paper: one 512 B disk sector);
* ``fulldump`` -- the partial-redo full-dump period ``C`` (paper: implicit);
* ``disk``     -- disk bandwidth, from 2009 spinning rust to the RAM-SSDs the
  paper cites EVE Online buying at $90,000;
* ``tickrate`` -- 30 Hz vs 60 Hz simulation loops.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.analysis.tables import TextTable
from repro.config import (
    PAPER_CONFIG,
    PAPER_HARDWARE,
    SimulationConfig,
    StateGeometry,
)
from repro.experiments.common import (
    DEFAULT_SKEW,
    DEFAULT_UPDATES_PER_TICK,
    ExperimentScale,
    FigureResult,
    FULL_SCALE,
    format_seconds,
)
from repro.simulation.sweep import SweepEngine, SweepTask
from repro.units import format_rate, megabytes
from repro.workloads.spec import TraceSpec


def _run_grid(
    engine: Optional[SweepEngine],
    keyed_configs: Sequence,
    algorithms,
    num_ticks: int,
    seed: int,
    updates_per_tick: int = DEFAULT_UPDATES_PER_TICK,
):
    """Run ``algorithms`` at every ``(key, config)`` point of an ablation.

    Points that share a geometry share a trace spec (only the config
    differs), so the sweep engine generates -- or cache-loads -- their Zipf
    trace exactly once.  Returns ``(key -> results, engine)``.
    """
    engine = engine if engine is not None else SweepEngine(jobs=1)
    tasks = [
        SweepTask(
            key=key,
            config=config,
            spec=TraceSpec.create(
                "zipf",
                config.geometry,
                updates_per_tick=updates_per_tick,
                skew=DEFAULT_SKEW,
                num_ticks=num_ticks,
                seed=seed,
            ),
            algorithms=tuple(algorithms),
        )
        for key, config in keyed_configs
    ]
    return engine.run(tasks), engine


def run_object_size(
    scale: ExperimentScale = FULL_SCALE,
    object_sizes: Sequence[int] = (128, 512, 2_048, 8_192),
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> FigureResult:
    """Sensitivity to the atomic-object size ``Sobj``."""
    algorithms = ("naive-snapshot", "copy-on-update")
    table = TextTable(
        "Ablation: atomic-object size (64,000 updates/tick, skew 0.8)",
        ["Sobj [B]", "algorithm", "avg overhead", "time to checkpoint",
         "recovery"],
    )
    keyed_configs = []
    for object_bytes in object_sizes:
        geometry = StateGeometry(
            rows=PAPER_CONFIG.geometry.rows,
            columns=PAPER_CONFIG.geometry.columns,
            cell_bytes=PAPER_CONFIG.geometry.cell_bytes,
            object_bytes=object_bytes,
        )
        config = replace(
            PAPER_CONFIG, geometry=geometry, warmup_ticks=scale.warmup_ticks
        )
        keyed_configs.append((object_bytes, config))
    grid, engine = _run_grid(
        engine, keyed_configs, algorithms, scale.num_ticks, seed
    )
    raw = {}
    for object_bytes, results in grid.items():
        for result in results:
            table.add_row(
                [
                    object_bytes,
                    result.algorithm_name,
                    format_seconds(result.avg_overhead),
                    format_seconds(result.avg_checkpoint_time),
                    format_seconds(result.recovery_time),
                ]
            )
            raw[(object_bytes, result.algorithm_key)] = result.summary()
    table.add_note(
        "smaller objects cut copy volume but multiply per-object bit/lock "
        "overheads; the paper fixes Sobj to one 512 B disk sector"
    )
    return FigureResult(
        experiment_id="ablation_objsize",
        description="Atomic-object size sensitivity",
        tables=[table],
        raw={f"{size}:{key}": value for (size, key), value in raw.items()},
        perf=engine.stats.as_dict(),
    )


def run_full_dump_period(
    scale: ExperimentScale = FULL_SCALE,
    periods: Sequence[int] = (2, 5, 9, 20, 50),
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> FigureResult:
    """The log methods' full-dump period C: checkpoint vs recovery trade."""
    algorithms = ("partial-redo", "cou-partial-redo")
    table = TextTable(
        "Ablation: full-dump period C (64,000 updates/tick, skew 0.8)",
        ["C", "algorithm", "avg time to checkpoint", "recovery"],
    )
    keyed_configs = [
        (
            period,
            replace(
                PAPER_CONFIG,
                full_dump_period=period,
                warmup_ticks=scale.warmup_ticks,
            ),
        )
        for period in periods
    ]
    grid, engine = _run_grid(
        engine, keyed_configs, algorithms, scale.num_ticks, seed
    )
    raw = {}
    for period, results in grid.items():
        for result in results:
            table.add_row(
                [
                    period,
                    result.algorithm_name,
                    format_seconds(result.avg_checkpoint_time),
                    format_seconds(result.recovery_time),
                ]
            )
            raw[f"{period}:{result.algorithm_key}"] = result.summary()
    table.add_note(
        "larger C amortizes the full dump (better checkpoint time) but "
        "lengthens the log scan at restore -- the (k*C + n) term"
    )
    return FigureResult(
        experiment_id="ablation_fulldump",
        description="Partial-redo full-dump period",
        tables=[table],
        raw=raw,
        perf=engine.stats.as_dict(),
    )


def run_disk_bandwidth(
    scale: ExperimentScale = FULL_SCALE,
    bandwidths_mb: Sequence[float] = (30, 60, 120, 480, 3_000),
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> FigureResult:
    """Disk bandwidth sweep: 2009 disks through RAM-SSDs."""
    algorithms = ("naive-snapshot", "copy-on-update", "cou-partial-redo")
    table = TextTable(
        "Ablation: disk bandwidth (64,000 updates/tick, skew 0.8)",
        ["Bdisk", "algorithm", "time to checkpoint", "recovery"],
    )
    keyed_configs = [
        (
            bandwidth_mb,
            replace(
                PAPER_CONFIG,
                hardware=replace(
                    PAPER_HARDWARE, disk_bandwidth=megabytes(bandwidth_mb)
                ),
                warmup_ticks=scale.warmup_ticks,
            ),
        )
        for bandwidth_mb in bandwidths_mb
    ]
    grid, engine = _run_grid(
        engine, keyed_configs, algorithms, scale.num_ticks, seed
    )
    raw = {}
    for bandwidth_mb, results in grid.items():
        for result in results:
            table.add_row(
                [
                    format_rate(result.config.hardware.disk_bandwidth),
                    result.algorithm_name,
                    format_seconds(result.avg_checkpoint_time),
                    format_seconds(result.recovery_time),
                ]
            )
            raw[f"{bandwidth_mb}:{result.algorithm_key}"] = result.summary()
    table.add_note(
        "checkpoint and recovery times scale with 1/Bdisk -- but note the "
        "back-to-back checkpointing policy's side effect: a faster disk "
        "shortens the checkpoint period, so copy-on-update repays its "
        "per-checkpoint copy burst more often and its *overhead* rises. "
        "With fast disks, checkpoint frequency should be capped rather than "
        "maximized."
    )
    return FigureResult(
        experiment_id="ablation_disk",
        description="Disk-bandwidth sensitivity",
        tables=[table],
        raw=raw,
        perf=engine.stats.as_dict(),
    )


def run_checkpoint_interval(
    scale: ExperimentScale = FULL_SCALE,
    intervals: Sequence[int] = (1, 4, 12, 30),
    disk_bandwidth_mb: float = 480,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> FigureResult:
    """Capping checkpoint frequency on a fast disk (beyond the paper).

    The paper checkpoints "as frequently as possible" -- optimal when a
    full-state write takes ~0.68 s anyway.  On faster disks that policy
    floods the game with per-checkpoint copy bursts; a minimum interval
    between checkpoint starts trades a bounded increase in replay time for
    a large cut in overhead.
    """
    algorithms = ("copy-on-update", "naive-snapshot")
    table = TextTable(
        f"Ablation: minimum checkpoint interval at "
        f"{disk_bandwidth_mb:g} MB/s disk (64,000 updates/tick)",
        ["interval [ticks]", "algorithm", "avg overhead", "peak pause",
         "recovery"],
    )
    hardware = replace(
        PAPER_HARDWARE, disk_bandwidth=megabytes(disk_bandwidth_mb)
    )
    keyed_configs = [
        (
            interval,
            replace(
                PAPER_CONFIG,
                hardware=hardware,
                warmup_ticks=scale.warmup_ticks,
                min_checkpoint_interval_ticks=interval,
            ),
        )
        for interval in intervals
    ]
    grid, engine = _run_grid(
        engine, keyed_configs, algorithms, scale.num_ticks, seed
    )
    raw = {}
    for interval, results in grid.items():
        for result in results:
            table.add_row(
                [
                    interval,
                    result.algorithm_name,
                    format_seconds(result.avg_overhead),
                    format_seconds(result.max_overhead),
                    format_seconds(result.recovery_time),
                ]
            )
            raw[f"{interval}:{result.algorithm_key}"] = result.summary()
    table.add_note(
        "back-to-back checkpointing (interval 1) maximizes copy bursts on a "
        "fast disk; widening the interval cuts copy-on-update overhead "
        "roughly in proportion while recovery grows only by the interval"
    )
    return FigureResult(
        experiment_id="ablation_interval",
        description="Checkpoint-frequency cap on fast disks",
        tables=[table],
        raw=raw,
        perf=engine.stats.as_dict(),
    )


def run_tick_rate(
    scale: ExperimentScale = FULL_SCALE,
    frequencies: Sequence[float] = (30.0, 60.0),
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> FigureResult:
    """30 Hz vs 60 Hz: the latency limit halves at 60 Hz."""
    algorithms = (
        "naive-snapshot", "atomic-copy", "copy-on-update", "dribble"
    )
    table = TextTable(
        "Ablation: tick frequency (64,000 updates/tick, skew 0.8)",
        ["Ftick", "algorithm", "avg overhead", "peak pause",
         "violates half-tick limit"],
    )
    keyed_configs = [
        (
            frequency,
            replace(
                PAPER_CONFIG,
                hardware=PAPER_HARDWARE.with_tick_frequency(frequency),
                warmup_ticks=scale.warmup_ticks,
            ),
        )
        for frequency in frequencies
    ]
    grid, engine = _run_grid(
        engine, keyed_configs, algorithms, scale.num_ticks, seed
    )
    raw = {}
    for frequency, results in grid.items():
        for result in results:
            table.add_row(
                [
                    f"{frequency:g} Hz",
                    result.algorithm_name,
                    format_seconds(result.avg_overhead),
                    format_seconds(result.max_overhead),
                    "yes" if result.exceeds_latency_limit() else "no",
                ]
            )
            raw[f"{frequency:g}:{result.algorithm_key}"] = result.summary()
    table.add_note(
        "at 60 Hz the half-tick latency limit drops to 8.3 ms: the ~18 ms "
        "eager pause violates it by even more, and even copy-on-update's "
        "~13 ms first-tick peak now breaks the bound -- at 60 Hz this state "
        "size needs smaller shards or latency masking"
    )
    return FigureResult(
        experiment_id="ablation_tickrate",
        description="Tick-frequency sensitivity",
        tables=[table],
        raw=raw,
        perf=engine.stats.as_dict(),
    )
