"""Command-line entry point: ``python -m repro.experiments <ids>``.

Examples::

    python -m repro.experiments fig2              # one figure, full scale
    python -m repro.experiments fig2 fig4 --quick # two figures, quick scale
    python -m repro.experiments all --quick       # everything
    python -m repro.experiments fig2 --jobs 8     # parallel sweep workers

Sweep-backed experiments run through
:class:`~repro.simulation.sweep.SweepEngine`: ``--jobs`` fans the
(workload point, algorithm) grid over worker processes, and generated
traces are cached on disk between runs (``--no-cache`` / ``--cache-dir``
control this).  Per-experiment engine stats land in ``--bench-out``
(default ``BENCH_sweep.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.cpu import available_cpu_count
from repro.experiments.common import FULL_SCALE, QUICK_SCALE
from repro.experiments.registry import (
    EXPERIMENT_IDS,
    experiment_parameters,
    run_experiment,
)
from repro.simulation.sweep import SweepEngine
from repro.workloads.cache import TraceCache, default_cache_dir


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'An Evaluation of "
            "Checkpoint Recovery for Massively Multiplayer Online Games' "
            "(VLDB 2009)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENT_IDS)}) or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sweeps and fewer ticks (seconds instead of minutes)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    parser.add_argument(
        "--async-writer",
        action="store_true",
        help=(
            "run engine-backed experiments with the background checkpoint "
            "writer thread instead of the serial per-tick drain"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for sweep-backed experiments "
            "(default: all cores; 1 = serial)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk trace cache (always regenerate workloads)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            f"trace cache directory (default {default_cache_dir()}, "
            f"or $REPRO_CACHE_DIR)"
        ),
    )
    parser.add_argument(
        "--bench-out",
        default="BENCH_sweep.json",
        help=(
            "write per-experiment sweep-engine stats to this JSON file "
            "('' disables; default BENCH_sweep.json)"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--export-dir",
        default=None,
        help="also export each experiment as CSV/JSON into this directory",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the selected experiments and print their reports."""
    args = build_parser().parse_args(argv)
    requested = list(args.experiments)
    if "all" in requested:
        requested = list(EXPERIMENT_IDS)
    unknown = [name for name in requested if name not in EXPERIMENT_IDS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}\n"
            f"known: {', '.join(EXPERIMENT_IDS)}",
            file=sys.stderr,
        )
        return 2
    if args.jobs is not None and args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2

    scale = QUICK_SCALE if args.quick else FULL_SCALE
    cache = TraceCache(directory=args.cache_dir, enabled=not args.no_cache)
    sections = []
    bench = {
        "scale": scale.name,
        "jobs": args.jobs if args.jobs is not None else available_cpu_count(),
        "cache": {
            "enabled": cache.enabled,
            "directory": str(cache.directory),
        },
        "experiments": {},
    }
    for experiment_id in requested:
        accepted = experiment_parameters(experiment_id)
        kwargs = {}
        if "seed" in accepted:
            kwargs["seed"] = args.seed
        if "engine" in accepted:
            kwargs["engine"] = SweepEngine(jobs=args.jobs, cache=cache)
        if "async_writer" in accepted:
            kwargs["async_writer"] = args.async_writer
        started = time.perf_counter()
        result = run_experiment(experiment_id, scale=scale, **kwargs)
        elapsed = time.perf_counter() - started
        report = result.render()
        sections.append(report)
        print(report)
        print(f"({experiment_id} completed in {elapsed:.1f} s, "
              f"scale={scale.name})\n")
        record = {"wall_time_s": elapsed}
        if result.perf:
            record.update(result.perf)
        bench["experiments"][experiment_id] = record
        if args.export_dir:
            from repro.analysis.export import export_figure

            for path in export_figure(result, args.export_dir):
                print(f"exported {path}")
    bench["total_wall_time_s"] = sum(
        record["wall_time_s"] for record in bench["experiments"].values()
    )
    bench["total_cache_hits"] = sum(
        record.get("cache_hits", 0) for record in bench["experiments"].values()
    )
    bench["total_cache_misses"] = sum(
        record.get("cache_misses", 0)
        for record in bench["experiments"].values()
    )
    if args.bench_out:
        with open(args.bench_out, "w") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"sweep stats written to {args.bench_out}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write("\n".join(sections))
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
