"""Ablation benchmarks: design constants the paper fixes, swept."""

from conftest import run_once

from repro.experiments import ablations


def test_object_size(benchmark, bench_scale, report_sink):
    """Atomic-object size sensitivity (paper fixes Sobj = 512 B)."""
    result = run_once(benchmark, ablations.run_object_size, bench_scale)
    report_sink("ablation_objsize", result.render())
    raw = result.raw
    # Larger objects -> fewer objects -> fewer per-object overheads for
    # copy-on-update, but coarser dirty tracking.
    assert raw["128:copy-on-update"]["avg_overhead_s"] > 0
    assert raw["8192:copy-on-update"]["avg_objects_written"] < raw[
        "128:copy-on-update"
    ]["avg_objects_written"]


def test_full_dump_period(benchmark, bench_scale, report_sink):
    """Full-dump period C: checkpoint-time vs recovery-time trade-off."""
    result = run_once(benchmark, ablations.run_full_dump_period, bench_scale)
    report_sink("ablation_fulldump", result.render())
    raw = result.raw
    # Recovery time grows with C (the (k*C + n) restore term).
    assert (
        raw["2:cou-partial-redo"]["recovery_s"]
        < raw["50:cou-partial-redo"]["recovery_s"]
    )


def test_disk_bandwidth(benchmark, bench_scale, report_sink):
    """Disk-bandwidth sweep: 2009 disks through RAM-SSDs."""
    result = run_once(benchmark, ablations.run_disk_bandwidth, bench_scale)
    report_sink("ablation_disk", result.render())
    raw = result.raw
    # Checkpoint time scales ~1/Bdisk for the full-state writers.
    slow = raw["30:copy-on-update"]["avg_checkpoint_s"]
    fast = raw["3000:copy-on-update"]["avg_checkpoint_s"]
    assert fast < slow / 20
    # In-game overhead is memory-bound: barely moves with disk speed.
    assert raw["3000:copy-on-update"]["avg_overhead_s"] > 0.2 * raw[
        "30:copy-on-update"
    ]["avg_overhead_s"]


def test_tick_rate(benchmark, bench_scale, report_sink):
    """30 Hz vs 60 Hz: the latency limit halves, eager methods lose more."""
    result = run_once(benchmark, ablations.run_tick_rate, bench_scale)
    report_sink("ablation_tickrate", result.render())
    raw = result.raw
    assert raw["60:naive-snapshot"]["exceeds_latency_limit"]
    assert not raw["30:copy-on-update"]["exceeds_latency_limit"]


def test_alternatives(benchmark, bench_scale, report_sink):
    """Sections 3.1/7 quantified: physical logging vs disk; K-safety."""
    from repro.experiments import alternatives_study

    result = run_once(benchmark, alternatives_study.run, bench_scale)
    report_sink("alternatives", result.render())
    raw = result.raw
    high_rate = max(bench_scale.updates_sweep)
    assert not raw["logging"][high_rate]["feasible"]
    assert raw["availability"]["checkpoint recovery"]["four_nines"]
    assert raw["availability"]["checkpoint recovery"]["utilization"] > 0.9
    assert raw["availability"]["2-safe replication"]["utilization"] == 0.5


def test_checkpoint_interval(benchmark, bench_scale, report_sink):
    """Checkpoint-frequency cap on fast disks (beyond the paper)."""
    result = run_once(benchmark, ablations.run_checkpoint_interval,
                      bench_scale)
    report_sink("ablation_interval", result.render())
    raw = result.raw
    assert (
        raw["30:copy-on-update"]["avg_overhead_s"]
        < raw["1:copy-on-update"]["avg_overhead_s"]
    )
    assert (
        raw["30:copy-on-update"]["recovery_s"]
        > raw["1:copy-on-update"]["recovery_s"]
    )
