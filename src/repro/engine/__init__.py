"""A real durable game server built on the checkpointing framework.

Unlike the analytic simulator, this package moves actual bytes: the
:class:`~repro.engine.server.DurableGameServer` runs a deterministic
:class:`~repro.engine.app.TickApplication` tick by tick, checkpointing its
:class:`~repro.state.table.GameStateTable` to real files through any of the
six algorithms -- serially on the game thread, or overlapped with ticks by
the :class:`~repro.engine.writer.AsyncCheckpointWriter` thread -- logging
every tick to the logical :class:`~repro.storage.action_log.ActionLog`, and
surviving crashes: :class:`~repro.engine.recovery.RecoveryManager` restores
the newest consistent checkpoint and replays the log to the exact crash
tick.  :class:`~repro.engine.fleet.ShardFleet` scales the same machinery to
N concurrent shards -- as threads sharing the GIL, or with
``backend="process"`` as worker processes over shared-memory state tables
(:mod:`repro.engine.shard_worker`), one core per shard.
"""

from repro.engine.app import TickApplication, TickUpdatesPlan
from repro.engine.executor import RealExecutor
from repro.engine.fleet import (
    FLEET_BACKENDS,
    FLEET_RECOVERY_MODES,
    FleetRunReport,
    ShardFleet,
)
from repro.engine.shard_worker import WorkerCheckpointProxy
from repro.engine.recovery import (
    RECOVERY_MODES,
    RecoveryManager,
    RecoveryReport,
)
from repro.engine.server import DurableGameServer
from repro.engine.shard import MMOShard, ShardRecovery
from repro.engine.writer import AsyncCheckpointWriter, CheckpointJob, WriterStats
from repro.engine.writer_pool import CheckpointWriterPool, PoolStats, PoolWriter

__all__ = [
    "AsyncCheckpointWriter",
    "FLEET_BACKENDS",
    "FLEET_RECOVERY_MODES",
    "RECOVERY_MODES",
    "CheckpointJob",
    "CheckpointWriterPool",
    "DurableGameServer",
    "FleetRunReport",
    "MMOShard",
    "PoolStats",
    "PoolWriter",
    "RealExecutor",
    "RecoveryManager",
    "RecoveryReport",
    "ShardFleet",
    "ShardRecovery",
    "TickApplication",
    "TickUpdatesPlan",
    "WorkerCheckpointProxy",
    "WriterStats",
]
