"""Behavioural tests for Copy-on-Update-Partial-Redo."""

import numpy as np

from repro.core.algorithms import CopyOnUpdatePartialRedo
from repro.core.plan import DiskLayout


class TestCopyOnUpdatePartialRedo:
    def test_classification(self):
        assert not CopyOnUpdatePartialRedo.eager_copy
        assert CopyOnUpdatePartialRedo.copies_dirty_only
        assert CopyOnUpdatePartialRedo.layout is DiskLayout.LOG

    def test_never_copies_eagerly(self):
        policy = CopyOnUpdatePartialRedo(16, full_dump_period=2)
        for _ in range(4):
            plan = policy.begin_checkpoint()
            assert plan.eager_copy_ids.size == 0
            policy.finish_checkpoint()

    def test_full_dump_cadence(self):
        policy = CopyOnUpdatePartialRedo(16, full_dump_period=4)
        dumps = []
        for _ in range(8):
            plan = policy.begin_checkpoint()
            dumps.append(plan.is_full_dump)
            policy.finish_checkpoint()
        assert dumps == [False, False, False, True] * 2

    def test_partial_checkpoint_copies_write_set_only(self):
        policy = CopyOnUpdatePartialRedo(16, full_dump_period=100)
        policy.begin_checkpoint()  # cold start writes everything
        policy.finish_checkpoint()
        policy.handle_updates(np.array([2]), 1)
        policy.begin_checkpoint()  # write set = {2}
        effects = policy.handle_updates(np.array([2, 7]), 2)
        assert effects.copy_ids.tolist() == [2]
        assert effects.lock_count == 2

    def test_full_dump_copies_all_first_touches(self):
        policy = CopyOnUpdatePartialRedo(16, full_dump_period=1)
        plan = policy.begin_checkpoint()
        assert plan.is_full_dump
        effects = policy.handle_updates(np.array([1, 2]), 2)
        assert effects.copy_ids.tolist() == [1, 2]

    def test_full_dump_clears_dirty_set(self):
        policy = CopyOnUpdatePartialRedo(16, full_dump_period=2)
        policy.begin_checkpoint()
        policy.handle_updates(np.array([9]), 1)
        policy.finish_checkpoint()
        plan = policy.begin_checkpoint()       # full dump (index 1)
        assert plan.is_full_dump
        policy.finish_checkpoint()
        plan = policy.begin_checkpoint()       # partial after the dump
        assert plan.write_ids.size == 0

    def test_update_during_full_dump_redirties(self):
        policy = CopyOnUpdatePartialRedo(16, full_dump_period=1)
        policy.begin_checkpoint()
        policy.handle_updates(np.array([6]), 1)
        policy.finish_checkpoint()
        plan = policy.begin_checkpoint()       # full dump again (C = 1)
        assert plan.is_full_dump               # write set is everything
        policy.finish_checkpoint()
        # With C = 100 the dirty carry-over is observable:
        policy2 = CopyOnUpdatePartialRedo(16, full_dump_period=100)
        policy2.begin_checkpoint()
        policy2.handle_updates(np.array([6]), 1)
        policy2.finish_checkpoint()
        plan = policy2.begin_checkpoint()
        assert plan.write_ids.tolist() == [6]
