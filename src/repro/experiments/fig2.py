"""Figure 2: scaling on the number of updates per tick.

Three panels over the Zipf workload (skew 0.8, 10M cells):

* (a) average overhead time per tick,
* (b) average time to checkpoint,
* (c) estimated recovery time,

for all six algorithms, updates/tick from 1,000 to 256,000.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.analysis.ascii_chart import line_chart
from repro.analysis.tables import TextTable
from repro.config import PAPER_CONFIG, SimulationConfig
from repro.core.registry import ALGORITHM_KEYS, algorithm_class
from repro.experiments.common import (
    DEFAULT_SKEW,
    ExperimentScale,
    FigureResult,
    FULL_SCALE,
    format_seconds,
)
from repro.simulation.sweep import SweepEngine, SweepTask
from repro.workloads.spec import TraceSpec


def sweep_results(
    scale: ExperimentScale,
    config: SimulationConfig = PAPER_CONFIG,
    skew: float = DEFAULT_SKEW,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> Dict[int, List]:
    """Run all six algorithms at every update rate; returns rate -> results."""
    config = replace(config, warmup_ticks=scale.warmup_ticks)
    engine = engine if engine is not None else SweepEngine(jobs=1)
    tasks = [
        SweepTask(
            key=updates_per_tick,
            config=config,
            spec=TraceSpec.create(
                "zipf",
                config.geometry,
                updates_per_tick=updates_per_tick,
                skew=skew,
                num_ticks=scale.num_ticks,
                seed=seed,
            ),
        )
        for updates_per_tick in scale.updates_sweep
    ]
    return engine.run(tasks)


def _panel_table(
    panel: str,
    title: str,
    results: Dict[int, List],
    metric,
) -> TextTable:
    rates = sorted(results)
    table = TextTable(
        title, ["algorithm"] + [f"{rate:,}" for rate in rates]
    )
    for index, key in enumerate(ALGORITHM_KEYS):
        name = algorithm_class(key).name
        row = [name]
        for rate in rates:
            row.append(format_seconds(metric(results[rate][index])))
        table.add_row(row)
    return table


def _panel_chart(title: str, results: Dict[int, List], metric) -> str:
    rates = sorted(results)
    series = {}
    for index, key in enumerate(ALGORITHM_KEYS):
        name = algorithm_class(key).name
        series[name] = [max(metric(results[rate][index]), 1e-7) for rate in rates]
    return line_chart(
        rates, series, log_x=True, log_y=True, title=title, y_label="sec"
    )


def run(
    scale: ExperimentScale = FULL_SCALE,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> FigureResult:
    """Reproduce Figure 2 (all three panels)."""
    engine = engine if engine is not None else SweepEngine(jobs=1)
    results = sweep_results(scale, seed=seed, engine=engine)

    overhead_table = _panel_table(
        "a", "Figure 2(a): updates per tick vs avg overhead time",
        results, lambda r: r.avg_overhead,
    )
    overhead_table.add_note(
        "paper: Naive-Snapshot flat at ~0.85 ms; copy-on-update methods up to "
        "5x lower below 8,000 updates/tick, up to 2.7x higher above"
    )
    overhead_table.add_note(
        "paper @256k: Atomic-Copy-Dirty-Objects 1.4 ms vs Naive-Snapshot 1.0 ms"
    )

    checkpoint_table = _panel_table(
        "b", "Figure 2(b): updates per tick vs avg time to checkpoint",
        results, lambda r: r.avg_checkpoint_time,
    )
    checkpoint_table.add_note(
        "paper: full-state methods constant ~0.68 s; Partial-Redo methods "
        "0.1 s at 1,000 updates/tick (6.8x gain)"
    )

    recovery_table = _panel_table(
        "c", "Figure 2(c): updates per tick vs estimated recovery time",
        results, lambda r: r.recovery_time,
    )
    recovery_table.add_note(
        "paper: full-state methods ~1.4 s for all rates; Partial-Redo methods "
        "7.2 s at 256,000 updates/tick (5.4x worse than Naive-Snapshot)"
    )

    figure = FigureResult(
        experiment_id="fig2",
        description=(
            "Overhead, checkpoint, and recovery times when scaling the "
            "number of updates per tick (Zipf skew 0.8, 10M cells)"
        ),
        tables=[overhead_table, checkpoint_table, recovery_table],
        charts=[
            _panel_chart("Figure 2(a) overhead [s]", results,
                         lambda r: r.avg_overhead),
            _panel_chart("Figure 2(b) checkpoint [s]", results,
                         lambda r: r.avg_checkpoint_time),
            _panel_chart("Figure 2(c) recovery [s]", results,
                         lambda r: r.recovery_time),
        ],
    )
    figure.raw = {
        rate: {r.algorithm_key: r.summary() for r in runs}
        for rate, runs in results.items()
    }
    figure.perf = engine.stats.as_dict()
    return figure
