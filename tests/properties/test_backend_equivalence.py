"""Property: thread and process fleet backends are observationally equal.

For any algorithm, seed, and tick count, running the same fleet under
``backend="thread"`` and ``backend="process"`` with the per-tick
checkpoint barrier must produce byte-identical checkpoint directory
trees and identical run reports.  This is the contract that makes the
process backend a pure performance knob: nothing about durability or
recovery semantics depends on where the tick loop runs.
"""

import hashlib
import multiprocessing
import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import StateGeometry
from repro.engine.fleet import ShardFleet
from tests.conftest import RandomWalkApp

GEOMETRY = StateGeometry(rows=256, columns=8)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend needs the fork start method",
)

ALGORITHMS = st.sampled_from(
    ["naive-snapshot", "dribble", "atomic-copy", "copy-on-update"]
)


def tree_digest(root):
    """Map of relative path -> sha256 for every file under root."""
    digests = {}
    for dirpath, _, files in os.walk(root):
        for name in files:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                digest = hashlib.sha256(handle.read()).hexdigest()
            digests[os.path.relpath(path, root)] = digest
    return digests


def run_fleet(backend, directory, algorithm, seed, ticks):
    fleet = ShardFleet(
        lambda index: RandomWalkApp(GEOMETRY),
        directory,
        num_shards=2,
        backend=backend,
        algorithm=algorithm,
        seed=seed,
        pool_size=2,
        min_checkpoint_interval_ticks=4,
    )
    try:
        report = fleet.run_ticks(ticks, checkpoint_barrier=True)
        fleet.quiesce()
    finally:
        fleet.close()
    return report


class TestBackendEquivalence:
    @given(
        algorithm=ALGORITHMS,
        seed=st.integers(min_value=0, max_value=2**16),
        ticks=st.integers(min_value=5, max_value=20),
    )
    @settings(max_examples=8, deadline=None)
    def test_backends_produce_identical_checkpoints(
        self, algorithm, seed, ticks
    ):
        root = tempfile.mkdtemp(prefix="backend-eq-")
        try:
            reports = {}
            for backend in ("thread", "process"):
                reports[backend] = run_fleet(
                    backend,
                    os.path.join(root, backend),
                    algorithm,
                    seed,
                    ticks,
                )
            thread_tree = tree_digest(os.path.join(root, "thread"))
            process_tree = tree_digest(os.path.join(root, "process"))
            assert thread_tree == process_tree
            assert thread_tree  # the run actually wrote something
            for backend, report in reports.items():
                assert report.ticks_per_shard == ticks, backend
                assert all(
                    stats.ticks_run == ticks for stats in report.shard_stats
                ), backend
        finally:
            shutil.rmtree(root, ignore_errors=True)
