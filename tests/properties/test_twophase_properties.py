"""Property test: 2PC atomicity under random interleavings and crashes.

Random sequences of cross-shard transfers (some doomed to abort) are run
with a crash injected after a random protocol step; after recovery and
in-doubt resolution, every item exists on exactly one shard and no entity
remains locked.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.persistence.server import PersistenceServer
from repro.persistence.store import TransactionError
from repro.persistence.twophase import CrossShardCoordinator

NUM_ITEMS = 3

# Each step: (transfer which item slot, direction a->b?, crash after?)
transfer_steps = st.lists(
    st.tuples(
        st.integers(0, NUM_ITEMS - 1),
        st.booleans(),
        st.booleans(),
    ),
    min_size=1,
    max_size=6,
)


def item_locations(shard_a, shard_b):
    """Map item kind -> list of shards currently holding it."""
    locations = {f"relic-{slot}": [] for slot in range(NUM_ITEMS)}
    for name, shard in (("a", shard_a), ("b", shard_b)):
        for item in shard.store.items.values():
            if item.kind in locations:
                locations[item.kind].append(name)
    return locations


@given(steps=transfer_steps)
@settings(max_examples=40, deadline=None)
def test_every_relic_on_exactly_one_shard(tmp_path_factory, steps):
    root = tmp_path_factory.mktemp("twophase")
    shard_a = PersistenceServer(root / "a")
    shard_b = PersistenceServer(root / "b")
    coordinator = CrossShardCoordinator(root / "c")

    alice = shard_a.create_character("alice", gold=0)
    bob = shard_b.create_character("bob", gold=0)
    kind_by_slot = {}
    for slot in range(NUM_ITEMS):
        kind = f"relic-{slot}"
        kind_by_slot[slot] = kind
        shard_a.grant_item(alice, kind)

    crashed = False
    for slot, a_to_b, crash_after in steps:
        kind = kind_by_slot[slot]
        # Find the relic wherever it currently lives.
        source, target, owner = None, None, None
        for shard, other, other_owner in (
            (shard_a, shard_b, bob), (shard_b, shard_a, alice)
        ):
            for item in shard.store.items.values():
                if item.kind == kind:
                    source, target, owner = shard, other, other_owner
                    break
            if source is not None:
                break
        if source is None:
            break  # unreachable if the invariant holds; the assert catches it
        if a_to_b and source is not shard_a:
            continue  # requested direction doesn't match reality; skip
        item_id = next(
            item.item_id for item in source.store.items.values()
            if item.kind == kind
        )
        try:
            coordinator.transfer_item(source, target, item_id, owner)
        except TransactionError:
            pass
        if crash_after:
            shard_a.crash()
            shard_b.crash()
            coordinator.crash()
            crashed = True
            break

    if crashed:
        shard_a = PersistenceServer.recover(root / "a")
        shard_b = PersistenceServer.recover(root / "b")
        coordinator = CrossShardCoordinator.recover(root / "c")
        coordinator.resolve_in_doubt([shard_a, shard_b])

    locations = item_locations(shard_a, shard_b)
    for kind, holders in locations.items():
        assert len(holders) == 1, f"{kind} exists on {holders}"
    assert not shard_a.in_doubt_transactions()
    assert not shard_b.in_doubt_transactions()

    shard_a.close()
    shard_b.close()
    coordinator.close()
