"""The 13 attribute columns of a Knights and Archers unit (Table 5)."""

from __future__ import annotations

import enum


class Column(enum.IntEnum):
    """Column indices into the game-state table (13 attributes per unit)."""

    POS_X = 0
    POS_Y = 1
    HEALTH = 2
    STATE = 3        # 0 = inactive (logged off), 1 = active
    TEAM = 4         # 0 or 1
    UNIT_TYPE = 5    # see UnitType
    TARGET = 6       # row id of the current target, -1 if none
    COOLDOWN = 7     # ticks until the unit may attack again
    STAMINA = 8      # drains while moving, recovers at rest
    KILLS = 9        # enemies defeated
    DAMAGE_DEALT = 10
    HEALING_DONE = 11
    MORALE = 12      # drifts with nearby ally density


class UnitType(enum.IntEnum):
    """The three character classes of the prototype game."""

    KNIGHT = 0
    ARCHER = 1
    HEALER = 2


#: Human-readable column names, index-aligned with :class:`Column`.
COLUMN_NAMES = tuple(column.name.lower() for column in Column)

#: Number of attribute columns (must match GAME_GEOMETRY.columns).
NUM_COLUMNS = len(Column)
