"""Atomic-Copy-Dirty-Objects: eager copy of dirty objects, double backup.

"This algorithm refines Naive-Snapshot by copying only the 'dirty' state that
has changed since the last checkpoint. ... we perform our copies eagerly
during the natural period of quiescence at the end of each tick.  We follow
Salem and Garcia-Molina and organize our checkpoints in a double-backup
structure on disk." (Section 3.2.)

Each object carries two dirty bits, one per backup; checkpoints alternate
between the backups and write their dirty objects in offset order (sorted
I/O).  Per update, the method only maintains the dirty bits -- the ``Obit``
cost that makes it slower than Naive-Snapshot above ~10,000 updates/tick.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import CheckpointPlan, DiskLayout, UpdateEffects, empty_ids
from repro.core.policy import CheckpointPolicy
from repro.state.dirty import DoubleBackupBits


class AtomicCopyDirtyObjects(CheckpointPolicy):
    """Eager copy of dirty objects; double-backup disk organization."""

    key = "atomic-copy"
    name = "Atomic-Copy-Dirty-Objects"
    eager_copy = True
    copies_dirty_only = True
    layout = DiskLayout.DOUBLE_BACKUP
    SUBROUTINES = {
        "Copy-To-Memory": "Dirty objects",
        "Write-Copies-To-Stable-Storage": "Dirty objects, double backup",
        "Handle-Update": "No-op",
        "Write-Objects-To-Stable-Storage": "No-op",
    }

    def __init__(self, num_objects: int, full_dump_period: int = 9) -> None:
        super().__init__(num_objects, full_dump_period)
        self._bits = DoubleBackupBits(num_objects)

    def _begin(self, checkpoint_index: int) -> CheckpointPlan:
        write_set = self._bits.begin_checkpoint()
        return CheckpointPlan(
            checkpoint_index=checkpoint_index,
            eager_copy_ids=write_set,
            write_ids=write_set,
            layout=self.layout,
        )

    def _finish(self) -> None:
        self._bits.finish_checkpoint()

    def _handle(self, unique_objects: np.ndarray, update_count: int) -> UpdateEffects:
        self._bits.mark_updated(unique_objects)
        # Dirty-bit maintenance is charged per update; the eager copy at the
        # checkpoint boundary means no locks or per-update copies are needed.
        return UpdateEffects(
            bit_tests=update_count,
            first_touch_ids=empty_ids(),
            copy_ids=empty_ids(),
        )
