"""The abstract checkpointing policy interface.

A :class:`CheckpointPolicy` captures everything algorithm-specific about a
checkpointing method while staying free of cost accounting and I/O: it
maintains the dirty-tracking structures and answers two questions --

* at a checkpoint boundary, *which objects* must be eagerly copied and which
  must be written to stable storage (:meth:`begin_checkpoint`), and
* for each tick's updates, *which objects* incur bit tests, locks, and
  old-value copies (:meth:`handle_updates`).

The analytic simulator prices the answers with the Section 4.2 cost model;
the real engine executes them against actual memory and files.  Class-level
metadata (:attr:`eager_copy`, :attr:`copies_dirty_only`, :attr:`layout`,
:attr:`SUBROUTINES`) reproduces the paper's Table 1 and Table 2.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Dict

import numpy as np

from repro.core.plan import CheckpointPlan, DiskLayout, UpdateEffects
from repro.errors import ConfigurationError


class CheckpointPolicy(ABC):
    """Decision logic of one checkpointing algorithm.

    Lifecycle: the driver calls :meth:`handle_updates` once per tick with the
    unique updated objects, and at tick boundaries alternates
    :meth:`begin_checkpoint` / :meth:`finish_checkpoint` (checkpoints are
    taken back-to-back, so after the first boundary there is always an active
    checkpoint).
    """

    #: Stable registry key, e.g. ``"copy-on-update"``.
    key: ClassVar[str]
    #: Human-readable name as printed in the paper's figures.
    name: ClassVar[str]
    #: Table 1 column: eager in-memory copy (True) vs copy-on-update (False).
    eager_copy: ClassVar[bool]
    #: Table 1 row: copies only dirty objects (True) vs all objects (False).
    copies_dirty_only: ClassVar[bool]
    #: Table 1 disk organization.
    layout: ClassVar[DiskLayout]
    #: Table 2 row: what each framework subroutine does for this algorithm.
    SUBROUTINES: ClassVar[Dict[str, str]]

    def __init__(self, num_objects: int, full_dump_period: int = 9) -> None:
        if num_objects <= 0:
            raise ConfigurationError(
                f"num_objects must be positive, got {num_objects}"
            )
        if full_dump_period < 1:
            raise ConfigurationError(
                f"full_dump_period must be >= 1, got {full_dump_period}"
            )
        self._num_objects = num_objects
        self._full_dump_period = full_dump_period
        self._checkpoint_index = 0
        self._active = False

    @property
    def num_objects(self) -> int:
        """Number of atomic objects in the state this policy tracks."""
        return self._num_objects

    @property
    def full_dump_period(self) -> int:
        """``C``: full-state log flush every C-th checkpoint (log methods)."""
        return self._full_dump_period

    @property
    def checkpoints_started(self) -> int:
        """How many checkpoints have been started so far."""
        return self._checkpoint_index

    @property
    def checkpoint_active(self) -> bool:
        """True while a checkpoint is between begin and finish."""
        return self._active

    # ------------------------------------------------------------------
    # Driver interface
    # ------------------------------------------------------------------

    def begin_checkpoint(self) -> CheckpointPlan:
        """Start a new checkpoint; returns what to copy and write."""
        if self._active:
            raise ConfigurationError(
                f"{self.name}: begin_checkpoint while a checkpoint is active"
            )
        plan = self._begin(self._checkpoint_index)
        self._checkpoint_index += 1
        self._active = True
        return plan

    def finish_checkpoint(self) -> None:
        """Mark the active checkpoint durable on stable storage."""
        if not self._active:
            raise ConfigurationError(
                f"{self.name}: finish_checkpoint without an active checkpoint"
            )
        self._finish()
        self._active = False

    def handle_updates(
        self, unique_objects: np.ndarray, update_count: int
    ) -> UpdateEffects:
        """Record one tick's updates.

        Parameters
        ----------
        unique_objects:
            Deduplicated ids of the atomic objects updated this tick.
        update_count:
            Total number of cell updates this tick (with duplicates) -- the
            number of dirty-bit tests the inner loop performs.
        """
        if update_count < unique_objects.size:
            raise ConfigurationError(
                "update_count cannot be smaller than the number of unique "
                f"objects ({update_count} < {unique_objects.size})"
            )
        return self._handle(np.asarray(unique_objects, dtype=np.int64),
                            int(update_count))

    # ------------------------------------------------------------------
    # Algorithm-specific hooks
    # ------------------------------------------------------------------

    @abstractmethod
    def _begin(self, checkpoint_index: int) -> CheckpointPlan:
        """Build the plan for checkpoint ``checkpoint_index``."""

    @abstractmethod
    def _handle(self, unique_objects: np.ndarray, update_count: int) -> UpdateEffects:
        """Maintain dirty state for one tick's updates and report effects."""

    def _finish(self) -> None:
        """Hook run when the active checkpoint becomes durable (optional)."""

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------

    def _is_full_dump(self, checkpoint_index: int) -> bool:
        """True when ``checkpoint_index`` is an every-C-th full log flush."""
        return (checkpoint_index + 1) % self._full_dump_period == 0

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} objects={self._num_objects} "
            f"checkpoints={self._checkpoint_index}>"
        )
