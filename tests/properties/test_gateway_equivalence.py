"""Property test: gateway-batched delivery is tick-equivalent to direct
driving.

For any per-tick command script, routing the commands through the front
door -- session admission, the bounded per-shard queue, one batched
hand-off per tick, APPLIED-range acks -- produces byte-for-byte the same
world state as submitting the same commands directly to a
:class:`DurableGameServer` and ticking it.  The serving tier adds latency
and backpressure, never semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.fleet import ShardFleet
from repro.engine.server import DurableGameServer
from repro.frontend import FrontDoor
from repro.game.knights_archers import KnightsArchersGame
from repro.game.scenario import BattleScenario

NUM_UNITS = 64

units = st.integers(min_value=0, max_value=NUM_UNITS - 1)
coordinates = st.integers(min_value=0, max_value=100)
commands = st.one_of(
    units.map(lambda u: f"heal:{u}".encode()),
    units.map(lambda u: f"activate:{u}".encode()),
    units.map(lambda u: f"deactivate:{u}".encode()),
    st.tuples(units, coordinates, coordinates).map(
        lambda t: f"teleport:{t[0]}:{t[1]}:{t[2]}".encode()
    ),
)
#: One inner list per tick; commands are state-changing, so any dropped,
#: duplicated, or re-ordered delivery breaks table equality.
scripts = st.lists(
    st.lists(commands, max_size=3), min_size=1, max_size=5
)


def make_app():
    return KnightsArchersGame(BattleScenario(num_units=NUM_UNITS))


@given(script=scripts)
@settings(max_examples=20, deadline=None)
def test_gateway_delivery_matches_direct_driving(tmp_path_factory, script):
    root = tmp_path_factory.mktemp("gateway-equivalence")

    # Through the front door: two sessions sharing one shard, commands
    # interleaved round-robin, one drive_tick per script entry.
    fleet = ShardFleet(lambda index: make_app(), root / "fleet",
                       num_shards=1, seed=21)
    frontdoor = FrontDoor(fleet)
    sessions = [frontdoor.connect(name).session_id for name in ("a", "b")]
    applied = 0
    for tick_commands in script:
        for position, command in enumerate(tick_commands):
            frontdoor.send_command(sessions[position % 2], command)
        outcome = frontdoor.drive_tick()
        assert outcome.report.ok
        applied += sum(
            event.last_seq - event.first_seq + 1
            for event in outcome.applied
        )
    assert applied == sum(len(entry) for entry in script)
    assert frontdoor.stats.commands_admitted == applied

    # Direct driving: same app, same seed, same commands, same ticks.
    reference = DurableGameServer(make_app(), root / "direct", seed=21)
    for tick_commands in script:
        for command in tick_commands:
            reference.submit_command(command)
        reference.run_tick()

    assert fleet.shards[0].game.table.equals(reference.table)
    reference.close()
    fleet.close()
