"""Micro-benchmarks of the substrates (classic pytest-benchmark loops).

These are not paper artifacts; they document the throughput of the building
blocks so regressions in the hot paths (trace generation, per-tick set
algebra, storage I/O, game ticks) show up in benchmark history.
"""

import numpy as np
import pytest

from repro.config import PAPER_CONFIG, PAPER_GEOMETRY, StateGeometry
from repro.core.registry import make_policy
from repro.game import BattleScenario, KnightsArchersGame
from repro.simulation.simulator import CheckpointSimulator, PrecomputedObjectTrace
from repro.state.dirty import DoubleBackupBits, EpochSet
from repro.state.table import GameStateTable
from repro.storage.double_backup import DoubleBackupStore
from repro.workloads.zipf import ZipfDistribution, ZipfTrace


class TestWorkloadGeneration:
    def test_zipf_sampling_64k(self, benchmark):
        """Drawing one 64,000-update tick from the Zipf row distribution."""
        dist = ZipfDistribution(PAPER_GEOMETRY.rows, 0.8)
        rng = np.random.default_rng(0)
        benchmark(dist.sample, 64_000, rng)

    def test_tick_reduction_64k(self, benchmark):
        """Mapping 64,000 cell updates to unique atomic objects."""
        trace = ZipfTrace(PAPER_GEOMETRY, 64_000, 0.8, num_ticks=1, seed=0)
        cells = next(iter(trace))

        def reduce_tick():
            return np.unique(PAPER_GEOMETRY.object_of_cell(cells))

        benchmark(reduce_tick)


class TestSimulatorThroughput:
    @pytest.mark.parametrize("algorithm", ["naive-snapshot", "copy-on-update"])
    def test_simulated_ticks_per_second(self, benchmark, algorithm):
        """Simulating 30 paper-scale ticks at 64,000 updates/tick."""
        simulator = CheckpointSimulator(PAPER_CONFIG)
        trace = PrecomputedObjectTrace(
            ZipfTrace(PAPER_GEOMETRY, 64_000, 0.8, num_ticks=30, seed=0)
        )
        benchmark.pedantic(
            simulator.run, args=(algorithm, trace), rounds=3, iterations=1
        )


class TestDirtyTracking:
    def test_epoch_set_add_new(self, benchmark):
        epoch_set = EpochSet(PAPER_GEOMETRY.num_objects)
        ids = np.random.default_rng(0).integers(
            0, PAPER_GEOMETRY.num_objects, size=40_000
        )
        unique = np.unique(ids)

        def round_trip():
            epoch_set.reset()
            return epoch_set.add_new(unique)

        benchmark(round_trip)

    def test_double_backup_bits_cycle(self, benchmark):
        bits = DoubleBackupBits(PAPER_GEOMETRY.num_objects)
        ids = np.unique(
            np.random.default_rng(0).integers(
                0, PAPER_GEOMETRY.num_objects, size=40_000
            )
        )

        def cycle():
            bits.mark_updated(ids)
            write_set = bits.begin_checkpoint()
            bits.finish_checkpoint()
            return write_set

        benchmark(cycle)


class TestStorageThroughput:
    def test_double_backup_write_1mb(self, benchmark, tmp_path):
        geometry = StateGeometry(rows=32_768, columns=8)  # 1 MB state
        table = GameStateTable(geometry)
        table.fill_random(np.random.default_rng(0))
        ids = np.arange(geometry.num_objects)
        payload = table.object_bytes(ids)
        epoch = [0]

        with DoubleBackupStore(tmp_path, geometry) as store:
            def checkpoint():
                epoch[0] += 1
                store.begin_checkpoint(epoch[0] % 2, epoch[0])
                store.write_objects(ids, payload)
                store.commit_checkpoint(tick=epoch[0])

            benchmark(checkpoint)

    def test_double_backup_restore_1mb(self, benchmark, tmp_path):
        geometry = StateGeometry(rows=32_768, columns=8)
        table = GameStateTable(geometry)
        ids = np.arange(geometry.num_objects)
        with DoubleBackupStore(tmp_path, geometry) as store:
            store.begin_checkpoint(0, 1)
            store.write_objects(ids, table.object_bytes(ids))
            store.commit_checkpoint(tick=0)
            benchmark(store.read_image, 0)


class TestGameThroughput:
    def test_game_tick_8k_units(self, benchmark):
        scenario = BattleScenario(num_units=8_192)
        game = KnightsArchersGame(scenario)
        table = GameStateTable(scenario.geometry, dtype=np.float32)
        rng = np.random.default_rng(0)
        game.initialize(table, rng)
        tick_counter = [0]

        def one_tick():
            plan = game.plan_tick(table, rng, tick_counter[0])
            table.apply_updates(plan.rows, plan.columns, plan.values)
            tick_counter[0] += 1
            return plan.update_count

        benchmark(one_tick)


class TestPolicyThroughput:
    @pytest.mark.parametrize(
        "algorithm", ["dribble", "copy-on-update", "atomic-copy"]
    )
    def test_handle_updates_40k_objects(self, benchmark, algorithm):
        policy = make_policy(algorithm, PAPER_GEOMETRY.num_objects)
        policy.begin_checkpoint()
        unique = np.unique(
            np.random.default_rng(0).integers(
                0, PAPER_GEOMETRY.num_objects, size=64_000
            )
        )
        benchmark(policy.handle_updates, unique, 64_000)


class TestPersistenceThroughput:
    def test_trade_commit_rate(self, benchmark, tmp_path):
        """ACID trades per second through validate + WAL + apply."""
        from repro.persistence.server import PersistenceServer

        server = PersistenceServer(tmp_path, snapshot_every=10_000)
        alice = server.create_character("alice", gold=10**9)
        bob = server.create_character("bob", gold=10**9)
        sword = server.grant_item(alice, "sword")
        state = {"owner": alice, "other": bob}

        def trade():
            result = server.trade_item(
                sword, state["owner"], state["other"], 1
            )
            state["owner"], state["other"] = state["other"], state["owner"]
            return result

        benchmark(trade)
        server.close()

    def test_cross_shard_transfer_rate(self, benchmark, tmp_path):
        """Full 2PC round trips per second (two WALs + decision log)."""
        from repro.persistence.server import PersistenceServer
        from repro.persistence.twophase import CrossShardCoordinator

        source = PersistenceServer(tmp_path / "a", snapshot_every=10_000)
        target = PersistenceServer(tmp_path / "b", snapshot_every=10_000)
        coordinator = CrossShardCoordinator(tmp_path / "c")
        alice = source.create_character("alice", gold=0)
        bob = target.create_character("bob", gold=0)
        state = {
            "item": source.grant_item(alice, "sword"),
            "direction": (source, target, bob),
        }

        def transfer():
            src, dst, owner = state["direction"]
            coordinator.transfer_item(src, dst, state["item"], owner)
            # The item got a fresh id on the destination; find it.
            state["item"] = max(dst.store.items)
            if dst is target:
                state["direction"] = (target, source, alice)
            else:
                state["direction"] = (source, target, bob)

        benchmark(transfer)
        for server in (source, target):
            server.close()
        coordinator.close()


class TestFrontendThroughput:
    def test_command_routing_rate(self, benchmark, tmp_path):
        """Commands per second through session lookup + rate limiting."""
        from repro.engine.shard import MMOShard
        from repro.frontend.connection import ConnectionServer
        from repro.game.knights_archers import KnightsArchersGame
        from repro.game.scenario import BattleScenario

        shard = MMOShard(
            KnightsArchersGame(BattleScenario(num_units=512)), tmp_path
        )
        connection = ConnectionServer(shard, commands_per_tick_limit=10**9)
        session_id = connection.connect("bench")
        benchmark(connection.send_command, session_id, b"heal:1")
        shard.close()
