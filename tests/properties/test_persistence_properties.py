"""Property test: the persistence server equals a shadow model under random
transaction streams and crash points (ACID redo correctness)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.persistence.server import PersistenceServer
from repro.persistence.store import ItemStore, TransactionError

# A step is one attempted transaction, drawn from a small id universe so that
# both valid and invalid attempts occur.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("character"), st.integers(0, 200)),
        st.tuples(
            st.just("grant"), st.integers(1, 6)
        ),
        st.tuples(
            st.just("trade"),
            st.integers(1, 8),   # item id guess
            st.integers(1, 6),   # seller guess
            st.integers(1, 6),   # buyer guess
            st.integers(1, 120), # price
        ),
        st.tuples(st.just("deposit"), st.integers(1, 6), st.integers(1, 50)),
        st.tuples(st.just("destroy"), st.integers(1, 8)),
    ),
    min_size=1,
    max_size=25,
)


def apply_step(server, shadow, step):
    """Attempt one transaction on the server and mirror it on the shadow."""
    kind = step[0]
    try:
        if kind == "character":
            character_id = server.create_character(
                f"char{step[1]}", gold=step[1]
            )
            shadow.apply_create_character(character_id, f"char{step[1]}",
                                          step[1])
        elif kind == "grant":
            item_id = server.store.next_item_id
            server.grant_item(step[1], "token")
            shadow.apply_create_item(item_id, "token", step[1])
        elif kind == "trade":
            _, item_id, seller, buyer, price = step
            server.trade_item(item_id, seller, buyer, price)
            shadow.apply_transfer_gold(buyer, seller, price)
            shadow.apply_transfer_item(item_id, seller, buyer)
        elif kind == "deposit":
            server.deposit_gold(step[1], step[2])
            shadow.apply_adjust_gold(step[1], step[2])
        elif kind == "destroy":
            server.destroy_item(step[1])
            shadow.apply_delete_item(step[1])
    except TransactionError:
        pass  # rejected on the server => not mirrored; states stay in sync


@given(script=steps, snapshot_every=st.sampled_from([3, 1_000]),
       crash_after=st.integers(0, 25))
@settings(max_examples=50, deadline=None)
def test_server_matches_shadow_and_survives_crash(
    tmp_path_factory, script, snapshot_every, crash_after
):
    directory = tmp_path_factory.mktemp("persistence")
    server = PersistenceServer(directory, snapshot_every=snapshot_every)
    shadow = ItemStore()

    for index, step in enumerate(script):
        apply_step(server, shadow, step)
        if index == crash_after:
            break

    # Live state equals the shadow model.
    assert server.store.equals(shadow)
    committed = ItemStore.from_snapshot_bytes(server.store.snapshot_bytes())
    server.crash()

    # Crash + redo reproduces exactly the committed state.  (Value equality,
    # not snapshot-byte equality: pickle memoizes shared strings, so two
    # equal stores can serialize to different byte strings.)
    recovered = PersistenceServer.recover(directory)
    assert recovered.store.equals(committed)
    assert recovered.store.equals(shadow)
    recovered.close()
