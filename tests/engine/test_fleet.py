"""Tests for the multi-shard fleet driver."""

import time

import numpy as np
import pytest

from repro.config import StateGeometry
from repro.engine.fleet import ShardFleet, shard_directory
from repro.errors import CheckpointWriterError, EngineError

GEOMETRY = StateGeometry(rows=400, columns=10)


@pytest.fixture
def app_factory(random_walk_app):
    app_class = type(random_walk_app)
    return lambda index: app_class(GEOMETRY)


def make_fleet(app_factory, directory, num_shards=3, **kwargs):
    kwargs.setdefault("algorithm", "copy-on-update")
    kwargs.setdefault("seed", 5)
    kwargs.setdefault("async_writer", True)
    return ShardFleet(app_factory, directory, num_shards, **kwargs)


class TestConstruction:
    def test_invalid_shard_count_rejected(self, app_factory, tmp_path):
        with pytest.raises(EngineError):
            ShardFleet(app_factory, tmp_path, num_shards=0)

    def test_shards_get_distinct_directories(self, app_factory, tmp_path):
        with make_fleet(app_factory, tmp_path) as fleet:
            directories = {shard.directory for shard in fleet.shards}
            assert len(directories) == 3
            assert str(shard_directory(tmp_path, 0)) in {
                str(d) for d in directories
            }


class TestRuns:
    def test_parallel_run_reports_throughput(self, app_factory, tmp_path):
        with make_fleet(app_factory, tmp_path) as fleet:
            report = fleet.run_ticks(20, parallel=True)
            assert report.num_shards == 3
            assert report.ticks_per_shard == 20
            assert report.ticks_per_second > 0
            assert len(report.shard_stats) == 3
            assert all(s.ticks_run == 20 for s in report.shard_stats)

    def test_serial_run_matches_shape(self, app_factory, tmp_path):
        with make_fleet(app_factory, tmp_path, async_writer=False) as fleet:
            report = fleet.run_ticks(10, parallel=False)
            assert all(s.ticks_run == 10 for s in report.shard_stats)

    def test_parallel_and_serial_runs_agree(self, app_factory, tmp_path):
        """Thread-per-shard scheduling must not change any shard's state."""
        cells = {}
        for label, parallel in (("par", True), ("ser", False)):
            with make_fleet(app_factory, tmp_path / label) as fleet:
                fleet.run_ticks(15, parallel=parallel)
                cells[label] = [
                    s.game.table.cells.copy() for s in fleet.shards
                ]
        for par, ser in zip(cells["par"], cells["ser"]):
            assert np.array_equal(par, ser)


class TestRecovery:
    def test_crash_and_recover_every_shard(self, app_factory, tmp_path):
        fleet = make_fleet(app_factory, tmp_path)
        fleet.run_ticks(25, parallel=True)
        live = [shard.game.table.cells.copy() for shard in fleet.shards]
        fleet.crash()
        reports = ShardFleet.recover(app_factory, tmp_path, 3, seed=5)
        assert len(reports) == 3
        for recovered, expected in zip(reports, live):
            assert np.array_equal(recovered.game.table.cells, expected)
            recovered.persistence.close()

    def test_parallel_and_serial_recovery_agree(self, app_factory, tmp_path):
        """Recovery thread scheduling must not change any recovered state."""
        fleet = make_fleet(app_factory, tmp_path, num_shards=4)
        fleet.run_ticks(25, parallel=True)
        live = [shard.game.table.cells.copy() for shard in fleet.shards]
        fleet.crash()
        states = {}
        for label, parallel in (("serial", False), ("parallel", True)):
            reports = ShardFleet.recover(
                app_factory, tmp_path, 4, seed=5, parallel=parallel
            )
            states[label] = [
                report.game.table.cells.copy() for report in reports
            ]
            for report in reports:
                report.persistence.close()
        for serial, parallel_, expected in zip(
            states["serial"], states["parallel"], live
        ):
            assert np.array_equal(serial, parallel_)
            assert np.array_equal(serial, expected)

    def test_parallel_recovery_respects_max_workers(
        self, app_factory, tmp_path
    ):
        fleet = make_fleet(app_factory, tmp_path)
        fleet.run_ticks(10)
        fleet.crash()
        reports = ShardFleet.recover(
            app_factory, tmp_path, 3, seed=5, parallel=True, max_workers=2
        )
        assert len(reports) == 3
        for report in reports:
            assert report.game.table.cells.size == GEOMETRY.num_cells
            report.persistence.close()

    def test_crash_twice_rejected(self, app_factory, tmp_path):
        fleet = make_fleet(app_factory, tmp_path)
        fleet.run_ticks(5)
        fleet.crash()
        with pytest.raises(EngineError):
            fleet.crash()


class TestCheckpointAge:
    def test_ages_tracked_per_shard_and_aggregated(
        self, app_factory, tmp_path
    ):
        with make_fleet(app_factory, tmp_path, pool_size=2) as fleet:
            assert fleet.checkpoint_ages() == [0, 0, 0]
            assert fleet.max_checkpoint_age == 0
            fleet.run_ticks(12, parallel=True)
            deadline = time.monotonic() + 10.0
            while (
                any(
                    shard.game.last_committed_checkpoint_tick is None
                    for shard in fleet.shards
                )
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            ages = fleet.checkpoint_ages()
            assert len(ages) == 3
            # Every shard committed at least one cut, so the replay debt
            # is bounded by the ticks run, and usually far smaller.
            assert all(0 <= age < 12 for age in ages)
            assert fleet.max_checkpoint_age == max(ages)

    def test_invalid_pool_admission_rejected(self, app_factory, tmp_path):
        with pytest.raises(CheckpointWriterError):
            make_fleet(
                app_factory, tmp_path, pool_size=1, pool_admission="lifo"
            )


class TestRecoveryModes:
    def run_and_crash(self, app_factory, tmp_path, num_shards=3):
        fleet = make_fleet(app_factory, tmp_path, num_shards=num_shards)
        fleet.run_ticks(25, parallel=True)
        live = [shard.game.table.cells.copy() for shard in fleet.shards]
        fleet.crash()
        return live

    def test_all_modes_recover_identically(self, app_factory, tmp_path):
        live = self.run_and_crash(app_factory, tmp_path)
        for mode in ("serial", "parallel", "pipelined"):
            reports = ShardFleet.recover(
                app_factory, tmp_path, 3, seed=5, mode=mode
            )
            expected_shard_mode = (
                "pipelined" if mode == "pipelined" else "serial"
            )
            for report, expected in zip(reports, live):
                assert report.game.mode == expected_shard_mode
                assert np.array_equal(report.game.table.cells, expected)
                report.persistence.close()

    def test_per_shard_mode_list(self, app_factory, tmp_path):
        live = self.run_and_crash(app_factory, tmp_path)
        reports = ShardFleet.recover(
            app_factory, tmp_path, 3, seed=5,
            mode=["serial", "pipelined", "serial"],
        )
        assert [r.game.mode for r in reports] == [
            "serial", "pipelined", "serial"
        ]
        for report, expected in zip(reports, live):
            assert np.array_equal(report.game.table.cells, expected)
            report.persistence.close()

    def test_invalid_modes_rejected(self, app_factory, tmp_path):
        with pytest.raises(EngineError):
            ShardFleet.recover(app_factory, tmp_path, 2, mode="warp")
        with pytest.raises(EngineError):
            ShardFleet.recover(
                app_factory, tmp_path, 2, mode=["serial"]
            )
        with pytest.raises(EngineError):
            ShardFleet.recover(
                app_factory, tmp_path, 2, mode=["serial", "parallel"]
            )
