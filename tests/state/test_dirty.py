"""Tests for the dirty-tracking structures."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.state.dirty import (
    DoubleBackupBits,
    EpochSet,
    PolarityBitmap,
    RegionResidency,
    StripeLockSet,
)


class TestPolarityBitmap:
    def test_starts_clear(self):
        bitmap = PolarityBitmap(8)
        assert bitmap.count_set() == 0
        assert not bitmap.test([0, 3, 7]).any()

    def test_fill_starts_set(self):
        bitmap = PolarityBitmap(8, fill=True)
        assert bitmap.count_set() == 8
        assert bitmap.test([0, 7]).all()

    def test_set_and_clear(self):
        bitmap = PolarityBitmap(10)
        bitmap.set([1, 3, 5])
        assert bitmap.test([1, 3, 5]).all()
        assert not bitmap.test([0, 2, 4]).any()
        bitmap.clear([3])
        assert bitmap.test([1]).all()
        assert not bitmap.test([3]).any()

    def test_set_ids_sorted(self):
        bitmap = PolarityBitmap(10)
        bitmap.set([7, 2, 5])
        assert bitmap.set_ids().tolist() == [2, 5, 7]

    def test_flip_all_inverts(self):
        bitmap = PolarityBitmap(6)
        bitmap.set([0, 1])
        bitmap.flip_all()
        assert bitmap.set_ids().tolist() == [2, 3, 4, 5]

    def test_flip_all_is_o1_clear_when_all_set(self):
        bitmap = PolarityBitmap(6)
        bitmap.set_all()
        bitmap.flip_all()
        assert bitmap.count_set() == 0
        # And the map is fully usable afterwards.
        bitmap.set([4])
        assert bitmap.set_ids().tolist() == [4]

    def test_double_flip_is_identity(self):
        bitmap = PolarityBitmap(5)
        bitmap.set([1, 4])
        before = bitmap.values()
        bitmap.flip_all()
        bitmap.flip_all()
        assert np.array_equal(bitmap.values(), before)

    def test_set_all_clear_all(self):
        bitmap = PolarityBitmap(4)
        bitmap.set_all()
        assert bitmap.count_set() == 4
        bitmap.clear_all()
        assert bitmap.count_set() == 0

    def test_values_returns_copy(self):
        bitmap = PolarityBitmap(4)
        values = bitmap.values()
        values[0] = True
        assert bitmap.count_set() == 0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            PolarityBitmap(0)


class TestEpochSet:
    def test_starts_empty(self):
        epoch_set = EpochSet(8)
        assert epoch_set.count() == 0
        assert not epoch_set.contains([0, 7]).any()

    def test_add_new_reports_fresh_only(self):
        epoch_set = EpochSet(8)
        fresh = epoch_set.add_new(np.array([1, 2, 3]))
        assert fresh.tolist() == [1, 2, 3]
        fresh = epoch_set.add_new(np.array([2, 3, 4]))
        assert fresh.tolist() == [4]

    def test_reset_is_o1_empty(self):
        epoch_set = EpochSet(8)
        epoch_set.add([0, 1, 2, 3, 4, 5, 6, 7])
        epoch_set.reset()
        assert epoch_set.count() == 0
        fresh = epoch_set.add_new(np.array([0, 1]))
        assert fresh.tolist() == [0, 1]

    def test_members_sorted(self):
        epoch_set = EpochSet(10)
        epoch_set.add([9, 0, 4])
        assert epoch_set.members().tolist() == [0, 4, 9]

    def test_many_resets_do_not_alias(self):
        epoch_set = EpochSet(4)
        for _ in range(1000):
            epoch_set.add([2])
            epoch_set.reset()
        assert epoch_set.count() == 0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            EpochSet(0)


class TestDoubleBackupBits:
    def test_everything_initially_dirty_for_both(self):
        bits = DoubleBackupBits(5)
        assert bits.dirty_counts() == (5, 5)

    def test_first_checkpoint_writes_everything(self):
        bits = DoubleBackupBits(5)
        write_set = bits.begin_checkpoint()
        assert write_set.tolist() == [0, 1, 2, 3, 4]

    def test_alternation(self):
        bits = DoubleBackupBits(4)
        assert bits.current_backup == 0
        bits.begin_checkpoint()
        bits.finish_checkpoint()
        assert bits.current_backup == 1
        bits.begin_checkpoint()
        bits.finish_checkpoint()
        assert bits.current_backup == 0

    def test_update_dirties_both_backups(self):
        bits = DoubleBackupBits(4)
        bits.begin_checkpoint()          # clears backup 0's bits
        bits.finish_checkpoint()
        bits.begin_checkpoint()          # clears backup 1's bits
        bits.finish_checkpoint()
        assert bits.dirty_counts() == (0, 0)
        bits.mark_updated(np.array([2]))
        assert bits.dirty_counts() == (1, 1)

    def test_update_during_checkpoint_redirties_current_backup(self):
        bits = DoubleBackupBits(4)
        bits.begin_checkpoint()           # backup 0 write set = all, cleared
        bits.mark_updated(np.array([1]))  # arrives mid-checkpoint
        bits.finish_checkpoint()
        # Two checkpoints later we are back on backup 0: object 1 must be in
        # its write set again (backup 0's image holds the pre-update value).
        bits.begin_checkpoint()           # backup 1
        bits.finish_checkpoint()
        write_set = bits.begin_checkpoint()  # backup 0 again
        assert 1 in write_set.tolist()

    def test_steady_state_writes_only_dirty(self):
        bits = DoubleBackupBits(6)
        for _ in range(2):  # flush both backups completely
            bits.begin_checkpoint()
            bits.finish_checkpoint()
        bits.mark_updated(np.array([0, 5]))
        write_set = bits.begin_checkpoint()
        assert write_set.tolist() == [0, 5]
        bits.finish_checkpoint()


class TestStripeLockSet:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StripeLockSet(0)
        with pytest.raises(ConfigurationError):
            StripeLockSet(8, num_stripes=0)

    def test_stripes_clamped_to_object_count(self):
        assert StripeLockSet(4, num_stripes=64).num_stripes == 4

    def test_stripes_of_is_sorted_unique(self):
        locks = StripeLockSet(32, num_stripes=4)
        stripes = locks.stripes_of(np.array([31, 0, 8, 9, 0]))
        assert stripes.tolist() == sorted(set(stripes.tolist()))
        # Range partition: contiguous ids share a stripe.
        assert locks.stripes_of(np.array([0, 1])).size == 1

    def test_acquire_release_round_trip(self):
        locks = StripeLockSet(32, num_stripes=4)
        ids = np.array([0, 15, 31])
        stripes = locks.acquire(ids)
        assert all(locks._locks[s].locked() for s in stripes)
        locks.release(stripes)
        assert not any(lock.locked() for lock in locks._locks)

    def test_locked_context_manager(self):
        locks = StripeLockSet(32, num_stripes=8)
        with locks.locked(np.array([3, 20])) as stripes:
            assert all(locks._locks[s].locked() for s in stripes)
        assert not any(lock.locked() for lock in locks._locks)

    def test_overlapping_batches_exclude_each_other(self):
        import threading

        locks = StripeLockSet(32, num_stripes=4)
        order = []

        def contender():
            with locks.locked(np.array([1])):
                order.append("contender")

        with locks.locked(np.array([0, 1])):
            thread = threading.Thread(target=contender)
            thread.start()
            thread.join(timeout=0.2)
            assert thread.is_alive()  # blocked on the shared stripe
            order.append("holder")
        thread.join(timeout=5.0)
        assert order == ["holder", "contender"]


class TestPolarityBitmapRanges:
    def test_set_and_clear_range(self):
        bitmap = PolarityBitmap(10)
        bitmap.set_range(2, 6)
        assert bitmap.set_ids().tolist() == [2, 3, 4, 5]
        bitmap.clear_range(3, 5)
        assert bitmap.set_ids().tolist() == [2, 5]

    def test_ranges_honor_inversion(self):
        bitmap = PolarityBitmap(6, fill=True)
        bitmap.clear_range(0, 3)
        assert bitmap.set_ids().tolist() == [3, 4, 5]
        bitmap.flip_all()
        assert bitmap.set_ids().tolist() == [0, 1, 2]
        bitmap.set_range(4, 6)
        assert bitmap.set_ids().tolist() == [0, 1, 2, 4, 5]


class TestRegionResidency:
    def test_starts_empty(self):
        residency = RegionResidency(8)
        assert residency.watermark == 0
        assert not residency.complete
        assert not residency.is_resident([0, 7]).any()

    def test_in_order_marks_advance_watermark(self):
        residency = RegionResidency(10)
        assert residency.mark_resident(0, 4) == 4
        assert residency.mark_resident(4, 10) == 10
        assert residency.complete

    def test_out_of_order_marks_absorbed_at_the_gap(self):
        residency = RegionResidency(12)
        residency.mark_resident(8, 12)
        assert residency.watermark == 0
        residency.mark_resident(4, 8)
        assert residency.watermark == 0
        # Filling the front absorbs both waiting regions in one jump.
        assert residency.mark_resident(0, 4) == 12
        assert residency.complete

    def test_wait_for_returns_immediately_when_satisfied(self):
        residency = RegionResidency(4)
        residency.mark_resident(0, 3)
        assert residency.wait_for(3)
        assert not residency.wait_for(4, timeout=0.01)

    def test_wait_for_wakes_on_mark(self):
        import threading

        residency = RegionResidency(6)
        done = []

        def waiter():
            done.append(residency.wait_for(6, timeout=10.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        residency.mark_resident(0, 6)
        thread.join(timeout=10.0)
        assert done == [True]

    def test_invalid_ranges_rejected(self):
        residency = RegionResidency(4)
        with pytest.raises(ConfigurationError):
            residency.mark_resident(-1, 2)
        with pytest.raises(ConfigurationError):
            residency.mark_resident(0, 5)
        with pytest.raises(ConfigurationError):
            RegionResidency(0)
