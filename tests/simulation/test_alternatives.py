"""Tests for the rejected-alternatives models."""

import pytest

from repro.config import PAPER_GEOMETRY, PAPER_HARDWARE
from repro.errors import SimulationError
from repro.simulation.alternatives import (
    SECONDS_PER_YEAR,
    assess_checkpoint_recovery,
    assess_k_safety,
    assess_physical_logging,
)


class TestPhysicalLogging:
    def test_low_rates_feasible(self):
        assessment = assess_physical_logging(
            1_000, PAPER_HARDWARE, PAPER_GEOMETRY
        )
        assert assessment.feasible
        assert assessment.bandwidth_fraction < 0.05

    def test_high_rates_exhaust_the_disk(self):
        """The paper's claim: physically logging the stream "could easily
        exhaust the available disk bandwidth"."""
        assessment = assess_physical_logging(
            256_000, PAPER_HARDWARE, PAPER_GEOMETRY
        )
        assert not assessment.feasible
        assert assessment.bandwidth_fraction > 1.0

    def test_object_granularity_is_worse(self):
        cell = assess_physical_logging(
            64_000, PAPER_HARDWARE, PAPER_GEOMETRY, cell_granularity=True
        )
        page = assess_physical_logging(
            64_000, PAPER_HARDWARE, PAPER_GEOMETRY, cell_granularity=False
        )
        assert page.bytes_per_second_required > cell.bytes_per_second_required

    def test_linear_in_rate(self):
        one = assess_physical_logging(1_000, PAPER_HARDWARE, PAPER_GEOMETRY)
        ten = assess_physical_logging(10_000, PAPER_HARDWARE, PAPER_GEOMETRY)
        assert ten.bytes_per_second_required == pytest.approx(
            10 * one.bytes_per_second_required
        )

    def test_negative_rate_rejected(self):
        with pytest.raises(SimulationError):
            assess_physical_logging(-1, PAPER_HARDWARE, PAPER_GEOMETRY)


class TestAvailability:
    def test_checkpoint_recovery_meets_four_nines(self):
        """The paper: "at the failure rates observed for current server
        hardware, there is more than adequate room" for checkpoint
        recovery within 99.99% uptime."""
        assessment = assess_checkpoint_recovery(
            recovery_seconds=1.4, crashes_per_year=12
        )
        assert assessment.meets_four_nines()
        assert assessment.downtime_seconds_per_year == pytest.approx(16.8)

    def test_many_minutes_of_recovery_still_fits(self):
        # Even several minutes per crash stays within ~1 hour/year.
        assessment = assess_checkpoint_recovery(
            recovery_seconds=240, crashes_per_year=12
        )
        assert assessment.meets_four_nines()

    def test_extreme_recovery_breaks_the_bar(self):
        assessment = assess_checkpoint_recovery(
            recovery_seconds=3_600, crashes_per_year=12
        )
        assert not assessment.meets_four_nines()

    def test_k_safety_utilization(self):
        assert assess_k_safety(2, 12).utilization == pytest.approx(0.5)
        assert assess_k_safety(4, 12).utilization == pytest.approx(0.25)

    def test_overhead_fraction_reduces_utilization(self):
        assessment = assess_checkpoint_recovery(
            1.4, 12, overhead_fraction=0.06
        )
        assert assessment.utilization == pytest.approx(0.94)

    def test_availability_definition(self):
        assessment = assess_checkpoint_recovery(
            recovery_seconds=SECONDS_PER_YEAR / 100, crashes_per_year=1
        )
        assert assessment.availability == pytest.approx(0.99)

    def test_validation(self):
        with pytest.raises(SimulationError):
            assess_k_safety(1, 12)
        with pytest.raises(SimulationError):
            assess_checkpoint_recovery(1.0, 12, overhead_fraction=1.0)
        with pytest.raises(SimulationError):
            assess_checkpoint_recovery(-1.0, 12)
