"""The update-trace protocol and its in-memory materialization.

A trace is a sequence of ticks; each tick is a 1-D ``int64`` array of flat
cell indices (row-major: ``row * columns + column``) that were updated during
that tick, *in update order and with duplicates* -- an object may be updated
more than once per tick and the cost model charges a dirty-bit test for every
update.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, List, Sequence

import numpy as np

from repro.config import StateGeometry
from repro.errors import TraceError


class UpdateTrace(ABC):
    """Abstract base class for update traces.

    Concrete traces are deterministic: iterating :meth:`ticks` twice yields
    identical update streams, which recovery replay relies on.
    """

    def __init__(self, geometry: StateGeometry, num_ticks: int) -> None:
        if num_ticks < 0:
            raise TraceError(f"num_ticks must be >= 0, got {num_ticks}")
        self._geometry = geometry
        self._num_ticks = num_ticks

    @property
    def geometry(self) -> StateGeometry:
        """Geometry of the state table this trace updates."""
        return self._geometry

    @property
    def num_ticks(self) -> int:
        """Number of ticks in the trace."""
        return self._num_ticks

    @abstractmethod
    def ticks(self) -> Iterator[np.ndarray]:
        """Yield one ``int64`` array of flat cell indices per tick."""

    def __iter__(self) -> Iterator[np.ndarray]:
        return self.ticks()

    def __len__(self) -> int:
        return self._num_ticks

    def materialize(self) -> "MaterializedTrace":
        """Evaluate the whole trace into memory."""
        return MaterializedTrace(self._geometry, list(self.ticks()))

    def _check_cells(self, cells: np.ndarray) -> np.ndarray:
        """Validate one tick's cell array (used by concrete subclasses)."""
        cells = np.ascontiguousarray(cells, dtype=np.int64)
        if cells.ndim != 1:
            raise TraceError(f"tick updates must be 1-D, got shape {cells.shape}")
        if cells.size and (cells.min() < 0 or cells.max() >= self._geometry.num_cells):
            raise TraceError(
                "tick updates contain cell indices outside "
                f"[0, {self._geometry.num_cells})"
            )
        return cells


class MaterializedTrace(UpdateTrace):
    """A trace held fully in memory as a list of per-tick cell arrays."""

    def __init__(
        self, geometry: StateGeometry, tick_updates: Sequence[np.ndarray]
    ) -> None:
        super().__init__(geometry, len(tick_updates))
        self._tick_updates: List[np.ndarray] = [
            self._check_cells(cells) for cells in tick_updates
        ]

    def ticks(self) -> Iterator[np.ndarray]:
        return iter(self._tick_updates)

    def tick(self, index: int) -> np.ndarray:
        """Random access to one tick's updates."""
        return self._tick_updates[index]

    def total_updates(self) -> int:
        """Total number of cell updates across all ticks."""
        return sum(cells.size for cells in self._tick_updates)

    def slice(self, start: int, stop: int) -> "MaterializedTrace":
        """Sub-trace covering ticks ``[start, stop)``."""
        if not 0 <= start <= stop <= self._num_ticks:
            raise TraceError(
                f"invalid tick slice [{start}, {stop}) of {self._num_ticks} ticks"
            )
        return MaterializedTrace(self._geometry, self._tick_updates[start:stop])

    def materialize(self) -> "MaterializedTrace":
        return self


class GeneratedTrace(UpdateTrace):
    """Base class for seeded, lazily-generated traces.

    Subclasses implement :meth:`_generate_tick`, which receives a fresh
    per-iteration random generator so that every call to :meth:`ticks`
    reproduces the same stream.
    """

    def __init__(self, geometry: StateGeometry, num_ticks: int, seed: int) -> None:
        super().__init__(geometry, num_ticks)
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """Seed controlling the trace's random stream."""
        return self._seed

    def _generate_tick(self, tick: int, rng: np.random.Generator) -> np.ndarray:
        """Produce the cell-index array for one tick.

        Memoryless generators implement this; stateful ones (e.g. the
        game-like trace with its evolving active set) override :meth:`ticks`
        directly instead.
        """
        raise NotImplementedError(
            f"{type(self).__name__} must implement _generate_tick or "
            "override ticks()"
        )

    def _make_rng(self) -> np.random.Generator:
        return np.random.default_rng(self._seed)

    def ticks(self) -> Iterator[np.ndarray]:
        rng = self._make_rng()
        for tick in range(self._num_ticks):
            yield self._check_cells(self._generate_tick(tick, rng))
