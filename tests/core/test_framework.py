"""Tests for the checkpointing algorithmic framework driver."""

import numpy as np
import pytest

from repro.core.framework import CheckpointFramework, SubroutineExecutor
from repro.core.registry import make_policy


class ScriptedExecutor(SubroutineExecutor):
    """Records calls; completion is controlled by the test."""

    def __init__(self):
        self.copy_calls = []
        self.write_calls = []
        self.update_calls = []
        self.finished = True

    def copy_to_memory(self, plan):
        self.copy_calls.append(plan)
        return 0.005

    def begin_stable_write(self, plan):
        self.write_calls.append(plan)
        self.finished = False

    def stable_write_finished(self):
        return self.finished

    def handle_updates(self, effects):
        self.update_calls.append(effects)
        return 0.001


@pytest.fixture
def framework():
    return CheckpointFramework(
        make_policy("copy-on-update", 16), ScriptedExecutor()
    )


class TestEndOfTick:
    def test_first_boundary_starts_a_checkpoint(self, framework):
        boundary = framework.end_of_tick()
        assert boundary.started is not None
        assert boundary.finished is None
        assert boundary.sync_pause == 0.005
        assert framework.active_plan is boundary.started

    def test_no_new_checkpoint_while_write_in_flight(self, framework):
        framework.end_of_tick()
        boundary = framework.end_of_tick()
        assert boundary.started is None
        assert boundary.finished is None
        assert boundary.sync_pause == 0.0

    def test_finish_then_start_same_boundary(self, framework):
        first = framework.end_of_tick()
        framework.executor.finished = True
        boundary = framework.end_of_tick()
        assert boundary.finished is first.started
        assert boundary.started is not None
        assert boundary.started.checkpoint_index == 1

    def test_back_to_back_checkpoint_indices(self, framework):
        indices = []
        for _ in range(4):
            framework.executor.finished = True
            boundary = framework.end_of_tick()
            indices.append(boundary.started.checkpoint_index)
        assert indices == [0, 1, 2, 3]

    def test_policy_sees_finish(self, framework):
        framework.end_of_tick()
        assert framework.policy.checkpoint_active
        framework.executor.finished = True
        framework.end_of_tick()
        # A new checkpoint began immediately, so still active, but two began.
        assert framework.policy.checkpoints_started == 2


class TestProcessUpdates:
    def test_routes_effects_to_executor(self, framework):
        framework.end_of_tick()
        overhead = framework.process_updates(np.array([1, 2]), 5)
        assert overhead == 0.001
        executor = framework.executor
        assert len(executor.update_calls) == 1
        assert executor.update_calls[0].bit_tests == 5

    def test_subroutine_order_copy_before_write(self, framework):
        framework.end_of_tick()
        executor = framework.executor
        assert len(executor.copy_calls) == 1
        assert len(executor.write_calls) == 1
        # Copy-To-Memory ran before Write-*-To-Stable-Storage (same plan).
        assert executor.copy_calls[0] is executor.write_calls[0]
