"""Behavioural tests for Naive-Snapshot."""

import numpy as np

from repro.core.algorithms import NaiveSnapshot
from repro.core.plan import DiskLayout


class TestNaiveSnapshot:
    def test_classification(self):
        assert NaiveSnapshot.eager_copy
        assert not NaiveSnapshot.copies_dirty_only
        assert NaiveSnapshot.layout is DiskLayout.DOUBLE_BACKUP

    def test_eagerly_copies_everything_every_checkpoint(self):
        policy = NaiveSnapshot(16)
        for _ in range(3):
            plan = policy.begin_checkpoint()
            assert plan.eager_copy_ids.tolist() == list(range(16))
            assert plan.writes_everything()
            policy.finish_checkpoint()

    def test_eager_copy_is_one_contiguous_run(self):
        policy = NaiveSnapshot(16)
        plan = policy.begin_checkpoint()
        diffs = np.diff(plan.eager_copy_ids)
        assert (diffs == 1).all()

    def test_no_per_update_work(self):
        policy = NaiveSnapshot(16)
        policy.begin_checkpoint()
        effects = policy.handle_updates(np.array([0, 5, 9]), 100)
        assert effects.bit_tests == 0
        assert effects.lock_count == 0
        assert effects.copy_count == 0

    def test_never_full_dump(self):
        policy = NaiveSnapshot(16, full_dump_period=2)
        for _ in range(4):
            plan = policy.begin_checkpoint()
            assert not plan.is_full_dump
            policy.finish_checkpoint()
