"""Shared experiment infrastructure: scales, sweeps, and result bundles."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.analysis.tables import TextTable

#: The Table 4 updates-per-tick sweep (1,000 ... 256,000; default 64,000).
UPDATES_PER_TICK_SWEEP: Tuple[int, ...] = (
    1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000, 256_000
)

#: The Table 4 skew sweep (0 ... 0.99; default 0.8).
SKEW_SWEEP: Tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 0.99)

#: Table 4 defaults (the bold values).
DEFAULT_UPDATES_PER_TICK = 64_000
DEFAULT_SKEW = 0.8


@dataclass(frozen=True)
class ExperimentScale:
    """How much work an experiment run does.

    The paper simulates 1,000 ticks; because all costs are analytic, the
    per-tick pattern repeats with the checkpoint period (at most ~21 ticks),
    so shorter runs with a warmup window reproduce the same averages.  The
    ``full`` preset keeps enough ticks for tight estimates; ``quick`` keeps
    CI and tests fast.
    """

    name: str
    num_ticks: int
    warmup_ticks: int
    updates_sweep: Tuple[int, ...]
    skew_sweep: Tuple[float, ...]
    game_units: int
    validation_ticks: int
    validation_sweep: Tuple[int, ...]

    def with_overrides(self, **overrides) -> "ExperimentScale":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


FULL_SCALE = ExperimentScale(
    name="full",
    num_ticks=240,
    warmup_ticks=40,
    updates_sweep=UPDATES_PER_TICK_SWEEP,
    skew_sweep=SKEW_SWEEP,
    # The vectorized Knights and Archers game holds ~50 ticks/s at the
    # paper's full 400,128-unit scale, so fig5's "game" source runs the real
    # thing (its trace averages ~34k updates/tick vs Table 5's 35,590).
    game_units=400_128,
    validation_ticks=120,
    validation_sweep=(1_000, 4_000, 16_000, 64_000, 256_000),
)

QUICK_SCALE = ExperimentScale(
    name="quick",
    num_ticks=100,
    warmup_ticks=30,
    updates_sweep=(1_000, 8_000, 64_000, 256_000),
    skew_sweep=(0.0, 0.8, 0.99),
    game_units=8_192,
    validation_ticks=45,
    validation_sweep=(1_000, 16_000, 64_000),
)


@dataclass
class FigureResult:
    """Everything one experiment produced, ready to print."""

    experiment_id: str
    description: str
    tables: List[TextTable] = field(default_factory=list)
    charts: List[str] = field(default_factory=list)
    #: Raw metric values keyed however the experiment likes (for tests).
    raw: Dict = field(default_factory=dict)
    #: Sweep-engine execution record (jobs, cache hits/misses, wall time) for
    #: drivers that run through :class:`repro.simulation.sweep.SweepEngine`;
    #: the CLI aggregates these into ``BENCH_sweep.json``.
    perf: Dict = field(default_factory=dict)

    def render(self) -> str:
        """Full text report: header, tables, charts."""
        lines = [
            f"[{self.experiment_id}] {self.description}",
            "",
        ]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        for chart in self.charts:
            lines.append(chart)
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def __str__(self) -> str:
        return self.render()


def format_seconds(value: float) -> str:
    """Compact seconds formatting for table cells (msec below 1 s)."""
    if value != value:  # NaN
        return "-"
    if value >= 1.0:
        return f"{value:.3f} s"
    return f"{value * 1e3:.3f} ms"


def format_count(value: float) -> str:
    """Thousands-separated integer formatting for table cells."""
    return f"{value:,.0f}"
