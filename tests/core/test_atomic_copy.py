"""Behavioural tests for Atomic-Copy-Dirty-Objects."""

import numpy as np

from repro.core.algorithms import AtomicCopyDirtyObjects
from repro.core.plan import DiskLayout


def drain_initial_checkpoints(policy):
    """Complete both cold-start full checkpoints so bitmaps are steady."""
    for _ in range(2):
        policy.begin_checkpoint()
        policy.finish_checkpoint()


class TestAtomicCopyDirtyObjects:
    def test_classification(self):
        assert AtomicCopyDirtyObjects.eager_copy
        assert AtomicCopyDirtyObjects.copies_dirty_only
        assert AtomicCopyDirtyObjects.layout is DiskLayout.DOUBLE_BACKUP

    def test_steady_state_writes_only_dirty(self):
        policy = AtomicCopyDirtyObjects(16)
        drain_initial_checkpoints(policy)
        policy.handle_updates(np.array([2, 9]), 2)
        plan = policy.begin_checkpoint()
        assert plan.eager_copy_ids.tolist() == [2, 9]
        assert plan.write_ids.tolist() == [2, 9]

    def test_per_update_work_is_bits_only(self):
        policy = AtomicCopyDirtyObjects(16)
        policy.begin_checkpoint()
        effects = policy.handle_updates(np.array([1, 2]), 50)
        assert effects.bit_tests == 50
        assert effects.lock_count == 0
        assert effects.copy_count == 0

    def test_update_during_checkpoint_lands_in_both_backups_eventually(self):
        policy = AtomicCopyDirtyObjects(16)
        drain_initial_checkpoints(policy)
        policy.begin_checkpoint()              # backup 0, empty write set
        policy.handle_updates(np.array([5]), 1)
        policy.finish_checkpoint()
        plan_backup1 = policy.begin_checkpoint()
        assert plan_backup1.write_ids.tolist() == [5]
        policy.finish_checkpoint()
        plan_backup0 = policy.begin_checkpoint()
        assert plan_backup0.write_ids.tolist() == [5]

    def test_object_written_once_per_backup_despite_many_updates(self):
        policy = AtomicCopyDirtyObjects(16)
        drain_initial_checkpoints(policy)
        for _ in range(5):
            policy.handle_updates(np.array([7]), 1)
        plan = policy.begin_checkpoint()
        assert plan.write_ids.tolist() == [7]
        policy.finish_checkpoint()
        plan = policy.begin_checkpoint()
        assert plan.write_ids.tolist() == [7]
        policy.finish_checkpoint()
        # Clean now: both backups hold object 7.
        plan = policy.begin_checkpoint()
        assert plan.write_ids.size == 0
