#!/usr/bin/env python
"""A complete MMO shard: both persistence paths of the paper's Figure 1.

The high-rate path (character movement, combat -- hundreds of updates per
tick) goes through checkpoint recovery; the low-rate ACID path (item trades
for gold) goes through the persistence server's write-ahead log.  The shard
crashes mid-battle, mid-economy -- and both halves recover exactly.

Usage::

    python examples/mmo_shard.py [ticks]
"""

import sys
import tempfile

from repro.engine import MMOShard
from repro.game import BattleReport, BattleScenario, KnightsArchersGame
from repro.persistence.store import TransactionError


def main() -> None:
    ticks = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    scenario = BattleScenario(num_units=4_096)
    seed = 1_337

    with tempfile.TemporaryDirectory(prefix="repro-shard-") as ref_dir, \
            tempfile.TemporaryDirectory(prefix="repro-shard-") as dir_:
        def build(directory):
            shard = MMOShard(
                KnightsArchersGame(scenario), directory,
                algorithm="copy-on-update", seed=seed,
            )
            # Seed the economy: two merchants and some loot.
            alice = shard.persistence.create_character("alice", gold=500)
            bob = shard.persistence.create_character("bob", gold=500)
            sword = shard.persistence.grant_item(alice, "runed sword")
            shield = shard.persistence.grant_item(bob, "tower shield")
            return shard, alice, bob, sword, shield

        def play(shard, alice, bob, sword, shield):
            # Interleave world ticks with trades, like a live shard.
            shard.run_ticks(ticks // 3)
            shard.trade_item(sword, alice, bob, 120)
            shard.run_ticks(ticks // 3)
            shard.trade_item(shield, bob, alice, 80)
            try:  # an over-priced offer that must change nothing
                shard.trade_item(sword, bob, alice, 10_000)
            except TransactionError:
                pass
            shard.run_ticks(ticks - 2 * (ticks // 3))

        reference, *ref_handles = build(ref_dir)
        play(reference, *ref_handles)

        victim, alice, bob, sword, shield = build(dir_)
        play(victim, alice, bob, sword, shield)
        stats = victim.game.stats
        economy = victim.persistence.store
        print(
            f"shard ran {stats.ticks_run} ticks, "
            f"{stats.updates_applied:,} world updates, "
            f"{stats.checkpoints_completed} checkpoints; "
            f"{victim.persistence.last_transaction_id} ACID transactions"
        )
        print(f"economy: alice {economy.characters[alice].gold} gold, "
              f"bob {economy.characters[bob].gold} gold")

        print("\n*** SHARD CRASH *** (game server and persistence server)\n")
        from repro.persistence.store import ItemStore

        expected_economy = ItemStore.from_snapshot_bytes(
            victim.persistence.store.snapshot_bytes()
        )
        victim.crash()

        recovered = MMOShard.recover(
            KnightsArchersGame(scenario), dir_, seed=seed
        )
        world_exact = recovered.game.table.equals(reference.game.table)
        economy_exact = recovered.persistence.store.equals(expected_economy)
        print(f"world recovered exactly:   {world_exact} "
              f"(checkpoint cut tick {recovered.game.checkpoint_tick}, "
              f"{recovered.game.ticks_replayed} ticks replayed)")
        print(f"economy recovered exactly: {economy_exact} "
              f"(sword owner: "
              f"{recovered.persistence.store.items[sword].owner_id})")
        if not (world_exact and economy_exact):
            raise SystemExit("recovery mismatch -- this is a bug")

        print("\nscoreboard of the recovered world:")
        print(BattleReport.from_table(recovered.game.table).describe())
        recovered.persistence.close()
        reference.close()


if __name__ == "__main__":
    main()
