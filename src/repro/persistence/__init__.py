"""The persistence server of the paper's Figure 1 architecture.

"Current MMOs focus on providing transactional guarantees for a small subset
of updates ... For example, many MMOs allow players to trade or sell in-game
items ... These transactions frequently involve user interaction or
communication with an external system, and thus the update rate is fairly
low.  Recovery can therefore be handled by a standard DBMS with an
ARIES-style recovery manager." (Sections 2 and 2.2.)

This package is that back-end, miniaturized: a transactional item/account
store with a redo-only write-ahead log, periodic snapshots, and log-replay
recovery.  It complements the checkpoint-recovery fast path: the game server
(:mod:`repro.engine`) persists the high-rate local updates, while trades and
other ACID operations flow through :class:`PersistenceServer`.

Simplifications relative to a full ARIES (documented, deliberate): the store
is single-writer (MMO persistence servers serialize trades per shard), pages
are never stolen (in-memory state mutates only at commit), so the log needs
no undo records and recovery is pure redo from the newest snapshot.
"""

from repro.persistence.server import PersistenceServer, TradeResult
from repro.persistence.store import Character, Item, ItemStore
from repro.persistence.twophase import CrossShardCoordinator
from repro.persistence.wal import WriteAheadLog

__all__ = [
    "Character",
    "CrossShardCoordinator",
    "Item",
    "ItemStore",
    "PersistenceServer",
    "TradeResult",
    "WriteAheadLog",
]
