"""The transactional persistence server.

Public operations are whole transactions: each validates against the live
store, is durably logged (write-ahead), and only then applied.  Failed
validations leave no trace -- there is nothing to undo because nothing was
written.  :meth:`PersistenceServer.recover` rebuilds the exact committed
state after a crash from the newest snapshot plus redo of the log tail.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.errors import EngineError
from repro.persistence.store import ItemStore, TransactionError
from repro.persistence.wal import WriteAheadLog

#: Operation opcodes recorded in the WAL.
OP_CREATE_CHARACTER = "create_character"
OP_CREATE_ITEM = "create_item"
OP_TRANSFER_GOLD = "transfer_gold"
OP_ADJUST_GOLD = "adjust_gold"
OP_TRANSFER_ITEM = "transfer_item"
OP_DELETE_ITEM = "delete_item"


@dataclass(frozen=True)
class TradeResult:
    """Outcome of a trade transaction."""

    transaction_id: int
    item_id: int
    seller_id: int
    buyer_id: int
    price: int


class PersistenceServer:
    """A miniature ACID back-end for trades and other durable operations."""

    def __init__(self, directory: Union[str, os.PathLike],
                 sync: bool = False,
                 snapshot_every: int = 64) -> None:
        if snapshot_every < 1:
            raise EngineError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self._directory = os.fspath(directory)
        self._wal = WriteAheadLog(self._directory, sync=sync)
        self._snapshot_every = snapshot_every
        self._store = ItemStore()
        # Two-phase-commit participant state: prepared-but-undecided global
        # transactions and the entities they pin.
        self._in_doubt: Dict[str, List[tuple]] = {}
        self._locked_items: Set[int] = set()
        self._locked_characters: Set[int] = set()
        self._redo_pending()
        self._transactions_since_snapshot = 0
        self._crashed = False

    def _redo_pending(self) -> None:
        recovery = self._wal.recover()
        if recovery.snapshot is not None:
            self._store = ItemStore.from_snapshot_bytes(recovery.snapshot)
        for operations in recovery.redo_operations:
            self._apply_operations(operations)
        for global_id, operations in recovery.in_doubt.items():
            self._pin_prepared(global_id, operations)

    def _pin_prepared(self, global_id: str, operations: List[tuple]) -> None:
        """Track a prepared transaction: locks + reserved item ids."""
        self._in_doubt[global_id] = operations
        items, characters = _touched_entities(operations)
        self._locked_items |= items
        self._locked_characters |= characters
        for operation in operations:
            if operation[0] == OP_CREATE_ITEM:
                self._store.next_item_id = max(
                    self._store.next_item_id, operation[1] + 1
                )
            elif operation[0] == OP_CREATE_CHARACTER:
                self._store.next_character_id = max(
                    self._store.next_character_id, operation[1] + 1
                )

    def _unpin_prepared(self, global_id: str) -> List[tuple]:
        operations = self._in_doubt.pop(global_id)
        # Rebuild lock sets from the remaining in-doubt transactions (they
        # are few; trades are rare by the paper's premise).
        self._locked_items = set()
        self._locked_characters = set()
        for other in self._in_doubt.values():
            items, characters = _touched_entities(other)
            self._locked_items |= items
            self._locked_characters |= characters
        return operations

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def store(self) -> ItemStore:
        """The live committed state (read-only by convention)."""
        return self._store

    @property
    def directory(self) -> str:
        """Directory holding the WAL."""
        return self._directory

    @property
    def last_transaction_id(self) -> int:
        """Id of the most recently committed transaction."""
        return self._wal.last_transaction_id

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def _commit(self, operations: List[tuple]) -> int:
        """Validate, write-ahead, apply.  Returns the transaction id."""
        if self._crashed:
            raise EngineError("persistence server has crashed; recover it")
        self._check_locks(operations)
        # Validate against a scratch copy so failures leave no state behind.
        scratch = ItemStore.from_snapshot_bytes(self._store.snapshot_bytes())
        self._apply_operations(operations, target=scratch)
        # Durable first (write-ahead), then apply to the live store.
        transaction_id = self._wal.last_transaction_id + 1
        self._wal.log_transaction(transaction_id, operations)
        self._apply_operations(operations)
        self._transactions_since_snapshot += 1
        if self._transactions_since_snapshot >= self._snapshot_every:
            self._wal.log_snapshot(self._store.snapshot_bytes())
            self._transactions_since_snapshot = 0
        return transaction_id

    def _apply_operations(self, operations: List[tuple],
                          target: Optional[ItemStore] = None) -> None:
        store = target if target is not None else self._store
        for operation in operations:
            opcode, *args = operation
            if opcode == OP_CREATE_CHARACTER:
                store.apply_create_character(*args)
            elif opcode == OP_CREATE_ITEM:
                store.apply_create_item(*args)
            elif opcode == OP_TRANSFER_GOLD:
                store.apply_transfer_gold(*args)
            elif opcode == OP_ADJUST_GOLD:
                store.apply_adjust_gold(*args)
            elif opcode == OP_TRANSFER_ITEM:
                store.apply_transfer_item(*args)
            elif opcode == OP_DELETE_ITEM:
                store.apply_delete_item(*args)
            else:
                raise TransactionError(f"unknown operation {opcode!r}")

    # -- The public transactional API ----------------------------------

    def create_character(self, name: str, gold: int = 0) -> int:
        """Register a character; returns its id."""
        character_id = self._store.next_character_id
        self._commit([(OP_CREATE_CHARACTER, character_id, name, gold)])
        return character_id

    def grant_item(self, owner_id: int, kind: str) -> int:
        """Mint a new item for a character (quest reward, drop...)."""
        item_id = self._store.next_item_id
        self._commit([(OP_CREATE_ITEM, item_id, kind, owner_id)])
        return item_id

    def deposit_gold(self, character_id: int, amount: int) -> int:
        """Credit gold from outside the economy (quest reward, loot)."""
        if amount <= 0:
            raise TransactionError(
                f"deposit amount must be positive, got {amount}"
            )
        return self._commit([(OP_ADJUST_GOLD, character_id, amount)])

    def trade_item(self, item_id: int, seller_id: int, buyer_id: int,
                   price: int) -> TradeResult:
        """The paper's canonical ACID example: item against gold, atomically.

        Either the buyer pays and receives the item, or nothing happens --
        validated first, committed as one WAL record.
        """
        operations = [
            (OP_TRANSFER_GOLD, buyer_id, seller_id, price),
            (OP_TRANSFER_ITEM, item_id, seller_id, buyer_id),
        ]
        transaction_id = self._commit(operations)
        return TradeResult(
            transaction_id=transaction_id,
            item_id=item_id,
            seller_id=seller_id,
            buyer_id=buyer_id,
            price=price,
        )

    def destroy_item(self, item_id: int) -> int:
        """Consume/destroy an item."""
        return self._commit([(OP_DELETE_ITEM, item_id)])

    # ------------------------------------------------------------------
    # Two-phase commit (cross-shard transfers)
    # ------------------------------------------------------------------

    def _check_locks(self, operations: List[tuple]) -> None:
        items, characters = _touched_entities(operations)
        if items & self._locked_items or characters & self._locked_characters:
            raise TransactionError(
                "entities are locked by an in-flight cross-shard transfer"
            )

    def prepare_remote(self, global_id: str, operations: List[tuple]) -> bool:
        """Phase one: validate and durably vote yes (True) or no (False).

        A yes vote pins the touched entities until the coordinator's
        decision arrives -- possibly after this server crashed and
        recovered.
        """
        if self._crashed:
            raise EngineError("persistence server has crashed; recover it")
        if global_id in self._in_doubt:
            raise TransactionError(
                f"transaction {global_id!r} is already prepared"
            )
        try:
            self._check_locks(operations)
            scratch = ItemStore.from_snapshot_bytes(
                self._store.snapshot_bytes()
            )
            self._apply_operations(operations, target=scratch)
        except TransactionError:
            return False  # vote no; nothing was logged
        self._wal.log_prepare(global_id, operations)
        self._pin_prepared(global_id, operations)
        return True

    def resolve_remote(self, global_id: str, commit: bool) -> bool:
        """Phase two: apply the coordinator's decision (idempotent).

        Returns True if this call resolved a pending transaction, False if
        there was nothing to resolve (already decided, or never prepared
        here).
        """
        if self._crashed:
            raise EngineError("persistence server has crashed; recover it")
        if global_id not in self._in_doubt:
            return False
        self._wal.log_decision(global_id, commit)
        operations = self._unpin_prepared(global_id)
        if commit:
            self._apply_operations(operations)
        return True

    def in_doubt_transactions(self) -> Dict[str, List[tuple]]:
        """Prepared transactions awaiting the coordinator's decision."""
        return dict(self._in_doubt)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def checkpoint_now(self) -> None:
        """Embed a snapshot immediately (resets the redo horizon)."""
        if self._crashed:
            raise EngineError("persistence server has crashed; recover it")
        self._wal.log_snapshot(self._store.snapshot_bytes())
        self._transactions_since_snapshot = 0

    def compact_wal(self) -> int:
        """Snapshot, then drop the redundant WAL prefix; returns bytes freed.

        In-doubt prepared transactions survive compaction (their decisions
        may arrive after any number of restarts).
        """
        self.checkpoint_now()
        return self._wal.compact()

    # ------------------------------------------------------------------
    # Failure and recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: abandon the in-memory store."""
        self._crashed = True
        self._wal.close()

    def close(self) -> None:
        """Orderly shutdown."""
        if not self._crashed:
            self._wal.close()

    def __enter__(self) -> "PersistenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def recover(cls, directory: Union[str, os.PathLike],
                sync: bool = False) -> "PersistenceServer":
        """Reopen after a crash: snapshot + redo rebuilds committed state."""
        return cls(directory, sync=sync)


def _touched_entities(operations: List[tuple]) -> Tuple[Set[int], Set[int]]:
    """Item ids and character ids an operation list reads or writes."""
    items: Set[int] = set()
    characters: Set[int] = set()
    for operation in operations:
        opcode, *args = operation
        if opcode == OP_CREATE_CHARACTER:
            characters.add(args[0])
        elif opcode == OP_CREATE_ITEM:
            items.add(args[0])
            characters.add(args[2])
        elif opcode == OP_TRANSFER_GOLD:
            characters.add(args[0])
            characters.add(args[1])
        elif opcode == OP_ADJUST_GOLD:
            characters.add(args[0])
        elif opcode == OP_TRANSFER_ITEM:
            items.add(args[0])
            characters.add(args[1])
            characters.add(args[2])
        elif opcode == OP_DELETE_ITEM:
            items.add(args[0])
    return items, characters
