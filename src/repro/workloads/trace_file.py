"""Persist update traces as ``.npz`` files.

The prototype game is "instrumented ... to log every update to a trace file,
which we then use as input to our checkpoint simulator" (Section 4.4).  The
on-disk format is a single compressed ``.npz`` holding the concatenated cell
indices, per-tick offsets, and the geometry fields, so a trace round-trips
exactly (same ticks, same update order, same duplicates).
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.config import StateGeometry
from repro.errors import TraceError
from repro.workloads.base import MaterializedTrace, UpdateTrace

_FORMAT_VERSION = 1


def save_trace(trace: UpdateTrace, path: Union[str, os.PathLike]) -> None:
    """Write ``trace`` to ``path`` as a compressed ``.npz`` archive."""
    tick_arrays = list(trace.ticks())
    sizes = np.array([cells.size for cells in tick_arrays], dtype=np.int64)
    offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    if tick_arrays:
        updates = np.concatenate(tick_arrays) if offsets[-1] else np.empty(
            0, dtype=np.int64
        )
    else:
        updates = np.empty(0, dtype=np.int64)
    geometry = trace.geometry
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        updates=updates,
        offsets=offsets,
        rows=np.int64(geometry.rows),
        columns=np.int64(geometry.columns),
        cell_bytes=np.int64(geometry.cell_bytes),
        object_bytes=np.int64(geometry.object_bytes),
    )


def load_trace(path: Union[str, os.PathLike]) -> MaterializedTrace:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(path) as archive:
        try:
            version = int(archive["version"])
            updates = archive["updates"]
            offsets = archive["offsets"]
            geometry = StateGeometry(
                rows=int(archive["rows"]),
                columns=int(archive["columns"]),
                cell_bytes=int(archive["cell_bytes"]),
                object_bytes=int(archive["object_bytes"]),
            )
        except KeyError as exc:
            raise TraceError(f"{path} is not a repro trace file: missing {exc}")
    if version != _FORMAT_VERSION:
        raise TraceError(
            f"{path} has trace-format version {version}; "
            f"this library reads version {_FORMAT_VERSION}"
        )
    if offsets.size == 0 or offsets[0] != 0 or offsets[-1] != updates.size:
        raise TraceError(f"{path} has inconsistent tick offsets")
    if np.any(np.diff(offsets) < 0):
        raise TraceError(f"{path} has decreasing tick offsets")
    tick_arrays = [
        updates[offsets[i]: offsets[i + 1]] for i in range(offsets.size - 1)
    ]
    return MaterializedTrace(geometry, tick_arrays)
