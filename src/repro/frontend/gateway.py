"""The fleet-wide front door: placement, bounded queues, and the TCP gateway.

The paper's Figure 1 puts a connection-server tier between clients and the
sharded game servers.  This module is that tier at fleet scale, split into
two layers so the serving logic is testable without sockets:

* :class:`FrontDoor` -- the synchronous core.  It owns the
  :class:`~repro.frontend.sessions.SessionRegistry`, a least-loaded
  :class:`ShardPlacement`, and one bounded :class:`ShardCommandQueue` per
  shard.  ``submit`` admits a command (rate limit + backpressure, both
  typed rejections); ``drive_tick`` drains every queue, hands each shard
  its batch through the fleet's shared-memory command rings, runs one tick
  on every live shard via
  :meth:`~repro.engine.fleet.ShardFleet.try_run_ticks`, and returns the
  per-session outcome events (APPLIED ranges, typed rejections,
  re-placements).
* :class:`GatewayServer` -- the asyncio TCP skin.  Client sessions speak
  the length-prefixed frames of :mod:`repro.frontend.protocol`; a driver
  thread calls ``drive_tick`` at a fixed cadence and posts the resulting
  frames back onto the event loop.

Failure semantics: when a shard dies mid-serve, its batch for that tick is
*lost* (the commands were never durably logged), so every lost command gets
a ``REJECT(shard down)``; the dead shard's sessions are immediately
re-placed onto the least-loaded survivors (a fresh ``WELCOME`` tells the
client), and survivors never miss a tick -- one shard's failure is that
shard's clients' problem for exactly one round trip.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.fleet import FleetServeReport, ShardFleet
from repro.errors import BackpressureError, EngineError, ReproError
from repro.frontend import protocol
from repro.obs.metrics import (
    MetricSpec,
    MetricsLayout,
    MetricsRegistry,
    RowMetrics,
)
from repro.obs.telemetry import FleetTelemetry
from repro.obs.trace import get_tracer
from repro.frontend.sessions import (
    CommandOverflowError,
    SessionError,
    SessionRegistry,
)
from repro.state.ring import SharedCommandRing

#: Default seconds between gateway ticks (200 Hz serve loop).
DEFAULT_TICK_INTERVAL = 0.005


class GatewayError(ReproError):
    """The gateway cannot serve (e.g. every shard is down)."""


# ----------------------------------------------------------------------
# Outcome events (what drive_tick tells the transport layer to send)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Applied:
    """Seqs ``first_seq..last_seq`` of one session applied by ``tick``."""

    session_id: int
    first_seq: int
    last_seq: int
    tick: int

    def encode(self) -> bytes:
        return protocol.encode_applied(self.first_seq, self.last_seq,
                                       self.tick)


@dataclass(frozen=True)
class Rejected:
    """One command (or the session, ``seq=0``) was rejected."""

    session_id: int
    code: int
    seq: int
    message: str = ""

    def encode(self) -> bytes:
        return protocol.encode_reject(self.code, self.seq, self.message)


@dataclass(frozen=True)
class Placed:
    """The session is now served by ``shard_index`` (initial or re-placed)."""

    session_id: int
    shard_index: int

    def encode(self) -> bytes:
        return protocol.encode_welcome(self.session_id, self.shard_index)


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------


class ShardPlacement:
    """Least-loaded placement over the live shards of a fleet."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise GatewayError(f"need at least one shard, got {num_shards}")
        self._loads = [0] * num_shards
        self._down = set()

    @property
    def num_shards(self) -> int:
        return len(self._loads)

    @property
    def live_shards(self) -> List[int]:
        """Indexes still accepting placements, in index order."""
        return [i for i in range(len(self._loads)) if i not in self._down]

    def is_live(self, index: int) -> bool:
        return index not in self._down

    def load(self, index: int) -> int:
        """Sessions currently placed on shard ``index``."""
        return self._loads[index]

    def place(self) -> int:
        """Pick the least-loaded live shard and charge one session to it."""
        live = self.live_shards
        if not live:
            raise GatewayError("every shard is down; nothing can serve")
        index = min(live, key=lambda i: (self._loads[i], i))
        self._loads[index] += 1
        return index

    def release(self, index: int) -> None:
        """Return one session's slot on shard ``index``."""
        self._loads[index] = max(0, self._loads[index] - 1)

    def mark_down(self, index: int) -> None:
        """Stop placing onto shard ``index``; its load resets to zero
        (the caller re-places every affected session)."""
        self._down.add(index)
        self._loads[index] = 0

    def mark_up(self, index: int) -> None:
        """Let a recovered shard take placements again."""
        self._down.discard(index)


# ----------------------------------------------------------------------
# Bounded per-shard command queue
# ----------------------------------------------------------------------


class ShardCommandQueue:
    """Bounded FIFO of ``(session_id, seq, payload)`` awaiting one shard.

    Capacity is accounted in ring bytes (header + payload), the same
    currency the shard's shared-memory ring uses, so the gateway rejects at
    the fill level the ring would.  Entries a tick could not hand to the
    ring (it was momentarily fuller than the queue) are re-queued at the
    front and go out first next tick -- per-session FIFO order is never
    broken.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 1:
            raise GatewayError(
                f"capacity_bytes must be positive, got {capacity_bytes}"
            )
        self._entries: deque = deque()
        self._bytes = 0
        self._capacity = int(capacity_bytes)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def pending_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def try_push(self, session_id: int, seq: int, payload: bytes) -> bool:
        need = SharedCommandRing.record_bytes(payload)
        if self._bytes + need > self._capacity:
            return False
        self._entries.append((session_id, seq, payload))
        self._bytes += need
        return True

    def drain(self) -> List[Tuple[int, int, bytes]]:
        batch = list(self._entries)
        self._entries.clear()
        self._bytes = 0
        return batch

    def requeue(self, entries: List[Tuple[int, int, bytes]]) -> None:
        """Put undelivered entries back at the front, oldest first."""
        self._entries.extendleft(reversed(entries))
        for _, _, payload in entries:
            self._bytes += SharedCommandRing.record_bytes(payload)


# ----------------------------------------------------------------------
# The synchronous serving core
# ----------------------------------------------------------------------


#: Serving counters, declared once so the stats object and the telemetry
#: snapshot agree on names.
GATEWAY_METRIC_SPECS = tuple(
    MetricSpec(name, "counter")
    for name in (
        "sessions_opened",
        "sessions_closed",
        "sessions_replaced",
        "commands_admitted",
        "commands_applied",
        "rejected_rate_limit",
        "rejected_backpressure",
        "rejected_shard_down",
        "ticks_driven",
        "shards_lost",
    )
)

GATEWAY_METRICS_LAYOUT = MetricsLayout(GATEWAY_METRIC_SPECS)


class GatewayStats:
    """Aggregate serving counters, backed by a metrics registry row.

    Reads (``stats.commands_applied``) and in-place writes
    (``stats.commands_applied += 1``) keep the plain-attribute surface the
    rest of the gateway (and its tests) use, but the storage is int64
    registry slots so :meth:`FrontDoor.telemetry` scrapes the same fields
    the mutators write -- one source of truth, no copy drift.
    """

    _FIELDS = frozenset(spec.name for spec in GATEWAY_METRIC_SPECS)

    def __init__(self, row: Optional[RowMetrics] = None) -> None:
        if row is None:
            row = MetricsRegistry(GATEWAY_METRICS_LAYOUT, rows=1).row(0)
        object.__setattr__(self, "_row", row)

    def __getattr__(self, name: str) -> int:
        if name in self._FIELDS:
            return self._row.value(name)
        raise AttributeError(name)

    def __setattr__(self, name: str, value: int) -> None:
        if name not in self._FIELDS:
            raise AttributeError(f"unknown gateway counter {name!r}")
        self._row.set_value(name, value)

    def as_dict(self) -> Dict[str, int]:
        """Detached scalar snapshot of every counter."""
        return {name: int(v) for name, v in self._row.snapshot().items()}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"GatewayStats({body})"


@dataclass(frozen=True)
class TickOutcome:
    """One ``drive_tick``'s events plus the fleet's serve report."""

    tick: int
    events: List[object]
    report: FleetServeReport

    @property
    def applied(self) -> List[Applied]:
        return [e for e in self.events if isinstance(e, Applied)]

    @property
    def rejected(self) -> List[Rejected]:
        return [e for e in self.events if isinstance(e, Rejected)]


class FrontDoor:
    """Synchronous fleet front door: sessions, placement, bounded ingestion.

    Thread-safe: transport handlers call :meth:`connect` /
    :meth:`disconnect` / :meth:`submit` from any thread while one driver
    thread calls :meth:`drive_tick`.  The internal lock covers only the
    in-memory bookkeeping -- the fleet tick itself (the expensive part)
    runs unlocked, because only the driver thread ever touches the fleet,
    preserving the rings' single-producer discipline.
    """

    def __init__(
        self,
        fleet: ShardFleet,
        commands_per_tick_limit: int = 64,
        max_pending_commands: Optional[int] = 1024,
        queue_bytes: Optional[int] = None,
        transport: Optional[str] = None,
    ) -> None:
        self._fleet = fleet
        self._transport = transport
        self._registry = SessionRegistry(
            commands_per_tick_limit=commands_per_tick_limit,
            max_pending_commands=max_pending_commands,
        )
        self._placement = ShardPlacement(fleet.num_shards)
        capacity = (queue_bytes if queue_bytes is not None
                    else fleet.command_capacity_bytes)
        self._queues = [
            ShardCommandQueue(capacity) for _ in range(fleet.num_shards)
        ]
        self._lock = threading.Lock()
        self._tick = 0
        self.stats = GatewayStats()

    @property
    def fleet(self) -> ShardFleet:
        return self._fleet

    @property
    def num_shards(self) -> int:
        return self._placement.num_shards

    @property
    def session_count(self) -> int:
        with self._lock:
            return self._registry.count

    @property
    def live_shards(self) -> List[int]:
        with self._lock:
            return self._placement.live_shards

    @property
    def geometry(self):
        """World geometry, for load drivers that target units."""
        return self._fleet.geometry

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def connect(self, player_name: str) -> Placed:
        """Admit a client onto the least-loaded live shard."""
        with self._lock:
            shard_index = self._placement.place()
            session = self._registry.connect(
                player_name, tick=self._tick, shard_index=shard_index
            )
            self.stats.sessions_opened += 1
            return Placed(session_id=session.session_id,
                          shard_index=shard_index)

    def disconnect(self, session_id: int) -> None:
        """Close a session; commands already queued still execute."""
        with self._lock:
            session = self._registry.disconnect(session_id)
            if self._placement.is_live(session.shard_index):
                self._placement.release(session.shard_index)
            self.stats.sessions_closed += 1

    def session(self, session_id: int):
        """Look up one session (tests and tooling)."""
        with self._lock:
            return self._registry.get(session_id)

    # ------------------------------------------------------------------
    # Command admission
    # ------------------------------------------------------------------

    def submit(self, session_id: int, seq: Optional[int],
               payload: bytes) -> int:
        """Queue one command for the session's shard; returns that shard.

        ``seq`` is the client's per-session stamp; pass ``None`` to have
        the gateway stamp it (in-process callers like
        :class:`~repro.frontend.clients.BotSwarm` don't track seqs).

        Typed rejections, none of which queue anything:

        * :class:`~repro.frontend.sessions.CommandOverflowError` -- the
          session is over its per-tick budget or pending bound;
        * :class:`~repro.errors.BackpressureError` -- the shard's bounded
          command queue is full;
        * :class:`GatewayError` -- every shard is down;
        * :class:`~repro.frontend.sessions.SessionError` -- no such session.
        """
        if not isinstance(payload, bytes):
            raise SessionError(
                f"commands are raw bytes, got {type(payload).__name__}"
            )
        with self._lock:
            session = self._registry.get(session_id)
            if not self._placement.is_live(session.shard_index):
                # The shard died and drive_tick has not re-placed us yet
                # (or placement failed); try to re-place right now.
                session.shard_index = self._placement.place()
                self.stats.sessions_replaced += 1
            queue = self._queues[session.shard_index]
            need = SharedCommandRing.record_bytes(payload)
            if queue.pending_bytes + need > queue.capacity:
                self.stats.rejected_backpressure += 1
                raise BackpressureError(
                    f"shard {session.shard_index} command queue is full "
                    f"({queue.pending_bytes}/{queue.capacity} bytes)",
                    queue=f"gateway-shard-{session.shard_index:02d}",
                    depth=queue.pending_bytes,
                    capacity=queue.capacity,
                )
            try:
                self._registry.admit(session_id)
            except CommandOverflowError:
                self.stats.rejected_rate_limit += 1
                raise
            if seq is None:
                seq = session.next_seq
                session.next_seq += 1
            queue.try_push(session_id, seq, payload)
            self.stats.commands_admitted += 1
            return session.shard_index

    def send_command(self, session_id: int, command: bytes) -> int:
        """Single-command send with a server-stamped seq.

        The :class:`~repro.frontend.clients.BotSwarm`-facing surface shared
        with :class:`~repro.frontend.connection.ConnectionServer`.
        """
        return self.submit(session_id, None, command)

    def run_tick(self) -> TickOutcome:
        """Drive one gateway tick (the in-process load-driver surface)."""
        return self.drive_tick()

    # ------------------------------------------------------------------
    # The serve loop body
    # ------------------------------------------------------------------

    def drive_tick(self) -> TickOutcome:
        """Deliver every queued batch, tick every live shard, ack results.

        Single-tick pipeline: (1) under the lock, snapshot and clear each
        shard's queue; (2) unlocked, push each batch into its shard's
        shared ring (or pipe) and run one fleet tick -- commands a ring
        could not take this tick are re-queued in order; (3) under the
        lock, turn per-shard outcomes into events: contiguous APPLIED seq
        ranges per session for live shards, shard-down rejections and
        session re-placement for newly dead ones.
        """
        tracer = get_tracer()
        with self._lock:
            batches = [
                queue.drain() if self._placement.is_live(index) else []
                for index, queue in enumerate(self._queues)
            ]
        delivered: List[List[Tuple[int, int, bytes]]] = []
        leftover: List[List[Tuple[int, int, bytes]]] = []
        lost: List[List[Tuple[int, int, bytes]]] = []
        with tracer.span("gw_ingest"):
            for index, batch in enumerate(batches):
                sent, back, dead = [], [], []
                if batch:
                    try:
                        accepted = self._fleet.submit_commands(
                            index,
                            [payload for _, _, payload in batch],
                            transport=self._transport,
                        )
                        sent, back = batch[:accepted], batch[accepted:]
                    except (EngineError, BackpressureError):
                        # Worker already dead (or ring unusable): the whole
                        # batch is lost, never having reached a durable log.
                        dead = batch
                delivered.append(sent)
                leftover.append(back)
                lost.append(dead)

        report = self._fleet.try_run_ticks(1)

        events: List[object] = []
        with tracer.span("gw_ack"), self._lock:
            self._tick += 1
            self.stats.ticks_driven += 1
            for index in range(self.num_shards):
                was_live = self._placement.is_live(index)
                if report.errors[index] is not None or lost[index]:
                    if was_live:
                        events.extend(self._shard_down_locked(
                            index,
                            delivered[index] + leftover[index] + lost[index],
                        ))
                    continue
                if not was_live:
                    continue
                self._queues[index].requeue(leftover[index])
                events.extend(self._ack_locked(delivered[index]))
            self._registry.end_tick()
        return TickOutcome(tick=self._tick, events=events, report=report)

    def _ack_locked(
        self, entries: List[Tuple[int, int, bytes]]
    ) -> List[Applied]:
        """Coalesce one shard's applied entries into per-session seq runs."""
        events: List[Applied] = []
        run: Optional[Tuple[int, int, int]] = None  # (session, first, last)
        for session_id, seq, _ in entries:
            self.stats.commands_applied += 1
            try:
                self._registry.mark_applied(session_id, 1)
            except SessionError:
                continue  # disconnected while queued; applied, nobody cares
            if run is not None and run[0] == session_id and seq == run[2] + 1:
                run = (run[0], run[1], seq)
                continue
            if run is not None:
                events.append(Applied(run[0], run[1], run[2], self._tick))
            run = (session_id, seq, seq)
        if run is not None:
            events.append(Applied(run[0], run[1], run[2], self._tick))
        return events

    def _shard_down_locked(
        self, index: int, lost_entries: List[Tuple[int, int, bytes]]
    ) -> List[object]:
        """Mark a shard dead: reject its lost commands, re-place its
        sessions onto the survivors."""
        events: List[object] = []
        self._placement.mark_down(index)
        self.stats.shards_lost += 1
        # Commands still queued for the dead shard are equally lost.
        lost_entries = lost_entries + self._queues[index].drain()
        for session_id, seq, _ in lost_entries:
            self.stats.rejected_shard_down += 1
            events.append(Rejected(
                session_id=session_id,
                code=protocol.REJECT_SHARD_DOWN,
                seq=seq,
                message=f"shard {index} crashed before applying this",
            ))
        for session in list(self._registry.sessions()):
            if session.shard_index != index:
                continue
            session.commands_pending = 0
            try:
                session.shard_index = self._placement.place()
            except GatewayError:
                continue  # no shard left; submits will keep failing typed
            self.stats.sessions_replaced += 1
            events.append(Placed(session_id=session.session_id,
                                 shard_index=session.shard_index))
        return events

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def telemetry(self) -> FleetTelemetry:
        """Merged fleet snapshot with this gateway's serving section.

        Thread-safe against concurrent ``drive_tick`` calls: counters live
        in single-writer int64 slots, so reads here are always whole values
        (the *set* may straddle a tick, like any scrape).
        """
        with self._lock:
            gateway = dict(self.stats.as_dict())
            gateway["sessions"] = self._registry.count
            gateway["live_shards"] = len(self._placement.live_shards)
            gateway["queue_pending_bytes"] = sum(
                q.pending_bytes for q in self._queues
            )
            gateway["queue_capacity_bytes"] = sum(
                q.capacity for q in self._queues
            )
        return self._fleet.telemetry(gateway=gateway)


# ----------------------------------------------------------------------
# The asyncio TCP skin
# ----------------------------------------------------------------------


class GatewayServer:
    """Asyncio TCP gateway over a :class:`FrontDoor`.

    One task per client connection parses frames and calls into the front
    door; a dedicated **driver thread** runs ``drive_tick`` every
    ``tick_interval`` seconds and posts the outcome frames back onto the
    event loop with ``call_soon_threadsafe`` -- the event loop never blocks
    on a fleet tick, and the fleet never sees two concurrent drivers.
    """

    def __init__(
        self,
        frontdoor: FrontDoor,
        host: str = "127.0.0.1",
        port: int = 0,
        tick_interval: float = DEFAULT_TICK_INTERVAL,
    ) -> None:
        self._frontdoor = frontdoor
        self._host = host
        self._port = port
        self._tick_interval = tick_interval
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._driver: Optional[threading.Thread] = None
        self._stop = threading.Event()

    @property
    def frontdoor(self) -> FrontDoor:
        return self._frontdoor

    @property
    def address(self) -> Tuple[str, int]:
        """Bound (host, port) once started."""
        if self._server is None:
            raise GatewayError("gateway is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "GatewayServer":
        """Bind the listener and start the tick driver thread."""
        if self._server is not None:
            raise GatewayError("gateway already started")
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._port
        )
        self._stop.clear()
        self._driver = threading.Thread(
            target=self._drive_loop, name="repro-gateway-driver", daemon=True
        )
        self._driver.start()
        return self

    async def stop(self) -> None:
        """Stop the driver, close the listener and every client."""
        self._stop.set()
        if self._driver is not None:
            self._driver.join(timeout=30.0)
            self._driver = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers.values()):
            writer.close()
        self._writers.clear()

    async def __aenter__(self) -> "GatewayServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Tick driving
    # ------------------------------------------------------------------

    def _drive_loop(self) -> None:
        while not self._stop.is_set():
            started = time.perf_counter()
            outcome = self._frontdoor.drive_tick()
            if outcome.events and self._loop is not None:
                self._loop.call_soon_threadsafe(self._dispatch,
                                                outcome.events)
            elapsed = time.perf_counter() - started
            remaining = self._tick_interval - elapsed
            if remaining > 0:
                self._stop.wait(remaining)

    def _dispatch(self, events: List[object]) -> None:
        """Runs on the event loop: fan outcome frames out to sessions."""
        for event in events:
            writer = self._writers.get(event.session_id)
            if writer is None or writer.is_closing():
                continue
            writer.write(event.encode())

    def _stats_reply(self) -> bytes:
        """Build one STATS_REPLY frame (or a typed rejection on failure)."""
        try:
            payload = self._frontdoor.telemetry().to_json()
        except ReproError as error:
            return protocol.encode_reject(
                protocol.REJECT_BAD_REQUEST, 0, str(error)
            )
        return protocol.encode_stats_reply(payload)

    # ------------------------------------------------------------------
    # Per-connection protocol
    # ------------------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        session_id: Optional[int] = None
        try:
            # STATS is allowed before HELLO so scrapers (repro.obs.dump)
            # never have to open a playing session just to look.
            while True:
                hello = await protocol.read_frame(reader)
                if hello is None:
                    return
                if hello[0] == "stats":
                    writer.write(self._stats_reply())
                    await writer.drain()
                    continue
                break
            if hello[0] != "hello":
                writer.write(protocol.encode_reject(
                    protocol.REJECT_BAD_REQUEST, 0,
                    f"expected HELLO, got {hello[0]}",
                ))
                await writer.drain()
                return
            placed = self._frontdoor.connect(hello[1])
            session_id = placed.session_id
            self._writers[session_id] = writer
            writer.write(placed.encode())
            await writer.drain()
            while True:
                message = await protocol.read_frame(reader)
                if message is None:
                    return
                if message[0] == "stats":
                    writer.write(self._stats_reply())
                    await writer.drain()
                    continue
                if message[0] != "command":
                    writer.write(protocol.encode_reject(
                        protocol.REJECT_BAD_REQUEST, 0,
                        f"unexpected {message[0]} frame",
                    ))
                    continue
                _, seq, payload = message
                try:
                    self._frontdoor.submit(session_id, seq, payload)
                except CommandOverflowError as error:
                    writer.write(protocol.encode_reject(
                        protocol.REJECT_RATE_LIMIT, seq, str(error)
                    ))
                except BackpressureError as error:
                    writer.write(protocol.encode_reject(
                        protocol.REJECT_BACKPRESSURE, seq, str(error)
                    ))
                except GatewayError as error:
                    writer.write(protocol.encode_reject(
                        protocol.REJECT_SHARD_DOWN, seq, str(error)
                    ))
                await writer.drain()
        except (protocol.ProtocolError, ConnectionResetError, OSError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown while this client was mid-read
        finally:
            if session_id is not None:
                self._writers.pop(session_id, None)
                try:
                    self._frontdoor.disconnect(session_id)
                except SessionError:
                    pass
            try:
                writer.close()
            except Exception:
                pass
