"""Tests for the experiments CLI."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import EXPERIMENT_IDS, run_experiment
from repro.experiments.runner import build_parser, main


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        for artifact in ("table1", "table2", "table3", "table4", "table5",
                         "fig2", "fig3", "fig4", "fig5", "fig6"):
            assert artifact in EXPERIMENT_IDS

    def test_ablations_present(self):
        for artifact in ("ablation_objsize", "ablation_fulldump",
                         "ablation_disk", "ablation_tickrate"):
            assert artifact in EXPERIMENT_IDS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiments == ["table1"]
        assert not args.quick
        assert args.seed == 0

    def test_main_runs_table1(self, capsys):
        assert main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Copy-on-Update" in out

    def test_main_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_main_writes_report_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["table2", "--quick", "--out", str(out_file)]) == 0
        assert "Table 2" in out_file.read_text()
