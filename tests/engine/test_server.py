"""Tests for the durable game server."""

import pytest

from repro.core.registry import ALGORITHM_KEYS
from repro.engine.server import DurableGameServer
from repro.errors import EngineError


class TestTickLoop:
    def test_runs_and_counts(self, random_walk_app, tmp_path):
        with DurableGameServer(random_walk_app, tmp_path) as server:
            server.run_ticks(10)
            assert server.ticks_run == 10
            assert server.stats.ticks_run == 10
            assert server.stats.updates_applied == 500

    def test_checkpoints_happen(self, random_walk_app, tmp_path):
        with DurableGameServer(
            random_walk_app, tmp_path, writer_bytes_per_tick=2_048
        ) as server:
            server.run_ticks(40)
            assert server.stats.checkpoints_started >= 2
            assert server.stats.checkpoints_completed >= 1
            assert server.last_committed_checkpoint_tick is not None

    def test_bytes_written_grow(self, random_walk_app, tmp_path):
        with DurableGameServer(random_walk_app, tmp_path) as server:
            server.run_ticks(5)
            assert server.stats.bytes_written > 0

    def test_every_algorithm_runs(self, random_walk_app, tmp_path):
        for algorithm in ALGORITHM_KEYS:
            directory = tmp_path / algorithm
            with DurableGameServer(
                random_walk_app, directory, algorithm=algorithm
            ) as server:
                server.run_ticks(25)
                assert server.stats.checkpoints_completed >= 1, algorithm

    def test_algorithm_name_exposed(self, random_walk_app, tmp_path):
        with DurableGameServer(
            random_walk_app, tmp_path, algorithm="copy-on-update"
        ) as server:
            assert server.algorithm_name == "Copy-on-Update"

    def test_checkpoint_interval_spaces_starts(self, random_walk_app,
                                               tmp_path):
        with DurableGameServer(
            random_walk_app, tmp_path, min_checkpoint_interval_ticks=9,
            writer_bytes_per_tick=100_000,  # writes finish within a tick
        ) as server:
            starts = []
            last = server.stats.checkpoints_started
            for tick in range(40):
                server.run_tick()
                if server.stats.checkpoints_started > last:
                    starts.append(tick)
                    last = server.stats.checkpoints_started
            assert len(starts) >= 3
            assert all(b - a >= 9 for a, b in zip(starts, starts[1:]))

    def test_checkpoint_interval_recovery_still_exact(self, random_walk_app,
                                                      tmp_path):
        from repro.engine.recovery import RecoveryManager

        kwargs = dict(min_checkpoint_interval_ticks=11, seed=4)
        reference = DurableGameServer(random_walk_app, tmp_path / "ref",
                                      **kwargs)
        reference.run_ticks(50)
        victim = DurableGameServer(random_walk_app, tmp_path / "victim",
                                   **kwargs)
        victim.run_ticks(50)
        victim.crash()
        report = RecoveryManager(
            random_walk_app, victim.directory, seed=4
        ).recover()
        assert report.table.equals(reference.table)
        reference.close()

    def test_bad_checkpoint_interval_rejected(self, random_walk_app,
                                              tmp_path):
        with pytest.raises(EngineError):
            DurableGameServer(
                random_walk_app, tmp_path, min_checkpoint_interval_ticks=0
            )

    def test_sync_mode_runs_and_recovers(self, random_walk_app, tmp_path):
        """fsync-on-write mode: slower but the same durable behaviour."""
        from repro.engine.recovery import RecoveryManager

        reference = DurableGameServer(
            random_walk_app, tmp_path / "ref", seed=2, sync=True
        )
        reference.run_ticks(30)
        victim = DurableGameServer(
            random_walk_app, tmp_path / "victim", seed=2, sync=True
        )
        victim.run_ticks(30)
        victim.crash()
        report = RecoveryManager(
            random_walk_app, victim.directory, seed=2
        ).recover()
        assert report.table.equals(reference.table)
        reference.close()


class TestLifecycle:
    def test_crash_stops_ticks(self, random_walk_app, tmp_path):
        server = DurableGameServer(random_walk_app, tmp_path)
        server.run_ticks(3)
        server.crash()
        with pytest.raises(EngineError):
            server.run_tick()

    def test_closed_server_rejects_ticks(self, random_walk_app, tmp_path):
        server = DurableGameServer(random_walk_app, tmp_path)
        server.close()
        with pytest.raises(EngineError):
            server.run_tick()

    def test_double_close_is_noop(self, random_walk_app, tmp_path):
        server = DurableGameServer(random_walk_app, tmp_path)
        server.close()
        server.close()

    def test_crash_after_close_rejected(self, random_walk_app, tmp_path):
        server = DurableGameServer(random_walk_app, tmp_path)
        server.close()
        with pytest.raises(EngineError):
            server.crash()

    def test_refuses_dirty_directory(self, random_walk_app, tmp_path):
        server = DurableGameServer(random_walk_app, tmp_path)
        server.run_ticks(2)
        server.close()
        with pytest.raises(EngineError):
            DurableGameServer(random_walk_app, tmp_path)


class TestDeterminism:
    def test_two_servers_same_seed_identical(self, random_walk_app, tmp_path):
        a = DurableGameServer(random_walk_app, tmp_path / "a", seed=5)
        b = DurableGameServer(random_walk_app, tmp_path / "b", seed=5)
        a.run_ticks(30)
        b.run_ticks(30)
        assert a.table.equals(b.table)
        a.close()
        b.close()

    def test_different_seeds_differ(self, random_walk_app, tmp_path):
        a = DurableGameServer(random_walk_app, tmp_path / "a", seed=1)
        b = DurableGameServer(random_walk_app, tmp_path / "b", seed=2)
        a.run_ticks(5)
        b.run_ticks(5)
        assert not a.table.equals(b.table)
        a.close()
        b.close()
