"""Tests for the analytic cost model (Section 4.2 formulas)."""

import numpy as np
import pytest

from repro.config import PAPER_GEOMETRY, PAPER_HARDWARE, StateGeometry
from repro.core.plan import UpdateEffects, empty_ids
from repro.errors import SimulationError
from repro.simulation.costmodel import CostModel, contiguous_groups


@pytest.fixture
def paper_model():
    return CostModel(PAPER_HARDWARE, PAPER_GEOMETRY)


@pytest.fixture
def small_model():
    geometry = StateGeometry(rows=100, columns=10, cell_bytes=4, object_bytes=40)
    return CostModel(PAPER_HARDWARE, geometry)


class TestContiguousGroups:
    def test_empty(self):
        assert contiguous_groups(np.array([], dtype=np.int64)) == 0

    def test_single(self):
        assert contiguous_groups(np.array([5])) == 1

    def test_one_run(self):
        assert contiguous_groups(np.arange(10)) == 1

    def test_scattered(self):
        assert contiguous_groups(np.array([0, 2, 4, 6])) == 4

    def test_mixed(self):
        assert contiguous_groups(np.array([0, 1, 2, 9, 10, 20])) == 3


class TestSyncCopy:
    def test_full_state_copy_matches_paper(self, paper_model):
        """~17-18 ms for the 40 MB state at 2.2 GB/s (Section 5.2)."""
        assert paper_model.full_sync_copy_time() == pytest.approx(0.0182, rel=0.05)

    def test_sync_copy_contiguous_equals_full(self, paper_model):
        ids = np.arange(PAPER_GEOMETRY.num_objects)
        assert paper_model.sync_copy_time(ids) == pytest.approx(
            paper_model.full_sync_copy_time()
        )

    def test_scattered_pays_per_group_latency(self, paper_model):
        contiguous = paper_model.sync_copy_time(np.arange(100))
        scattered = paper_model.sync_copy_time(np.arange(100) * 2)
        assert scattered == pytest.approx(
            contiguous + 99 * PAPER_HARDWARE.memory_latency
        )

    def test_empty_copy_is_free(self, paper_model):
        assert paper_model.sync_copy_time(empty_ids()) == 0.0

    def test_single_object_copy(self, paper_model):
        expected = 100e-9 + 512 / 2.2e9
        assert paper_model.single_object_copy_time() == pytest.approx(expected)


class TestAsyncWrite:
    def test_log_write_linear_in_k(self, paper_model):
        one = paper_model.log_write_time(1)
        thousand = paper_model.log_write_time(1_000)
        assert thousand == pytest.approx(1_000 * one)

    def test_log_write_zero(self, paper_model):
        assert paper_model.log_write_time(0) == 0.0

    def test_full_log_write_matches_paper(self, paper_model):
        """Writing the whole 40 MB state at 60 MB/s takes ~0.67 s."""
        n = PAPER_GEOMETRY.num_objects
        assert paper_model.log_write_time(n) == pytest.approx(0.667, rel=0.01)

    def test_double_backup_independent_of_k(self, paper_model):
        """The "slightly counter-intuitive (but correct)" property."""
        full = paper_model.double_backup_write_time(PAPER_GEOMETRY.num_objects)
        assert paper_model.double_backup_write_time(1) == pytest.approx(full)
        assert paper_model.double_backup_write_time(1_000) == pytest.approx(full)

    def test_double_backup_zero_writes_nothing(self, paper_model):
        assert paper_model.double_backup_write_time(0) == 0.0

    def test_negative_k_rejected(self, paper_model):
        with pytest.raises(SimulationError):
            paper_model.log_write_time(-1)
        with pytest.raises(SimulationError):
            paper_model.double_backup_write_time(-1)


class TestUpdateOverhead:
    def test_formula(self, paper_model):
        effects = UpdateEffects(
            bit_tests=1_000,
            first_touch_ids=np.arange(10),
            copy_ids=np.arange(4),
        )
        expected = (
            1_000 * 2e-9
            + 10 * 145e-9
            + 4 * paper_model.single_object_copy_time()
        )
        assert paper_model.update_overhead(effects) == pytest.approx(expected)

    def test_none_effects_free(self, paper_model):
        assert paper_model.update_overhead(UpdateEffects.none()) == 0.0


class TestRestore:
    def test_full_image_restore(self, paper_model):
        assert paper_model.restore_time_full_image() == pytest.approx(
            0.667, rel=0.01
        )

    def test_log_restore_formula(self, paper_model):
        n = PAPER_GEOMETRY.num_objects
        # (k*C + n) * Sobj / Bdisk
        expected = (1_000 * 9 + n) * 512 / 60e6
        assert paper_model.restore_time_log(1_000, 9) == pytest.approx(expected)

    def test_log_restore_at_saturation_matches_paper(self, paper_model):
        """k ~ n and C = 9 gives the ~6.7 s restore behind the paper's 7.2 s
        recovery at 256,000 updates/tick."""
        n = PAPER_GEOMETRY.num_objects
        restore = paper_model.restore_time_log(n, 9)
        assert restore == pytest.approx(10 * 0.667, rel=0.01)

    def test_log_restore_validation(self, paper_model):
        with pytest.raises(SimulationError):
            paper_model.restore_time_log(-1, 9)
        with pytest.raises(SimulationError):
            paper_model.restore_time_log(10, 0)


class TestMonotonicity:
    def test_costs_monotone_in_object_count(self, small_model):
        times = [
            small_model.sync_copy_time(np.arange(k)) for k in (0, 1, 5, 10)
        ]
        assert times == sorted(times)
        writes = [small_model.log_write_time(k) for k in (0, 1, 5, 10)]
        assert writes == sorted(writes)
