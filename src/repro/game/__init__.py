"""The Knights and Archers prototype game server (paper Section 4.4).

"A prototype game that simulates a medieval battle of the type common in many
MMOs ... three types of characters: knights, archers, and healers, that are
divided into two teams.  Each team has a home base, and the objective is to
defeat as many enemies as possible.  Each unit is controlled by a simple
decision tree.  Knights attempt to attack and pursue nearby targets, while
healers attempt to heal their weakest allies.  Archers attempt to attack
enemies while staying near allied units for support.  Furthermore, each unit
tries to cluster with allies to form squads. ... 10% of the characters are
active at any given moment and the active set changes over time."

The game is a deterministic :class:`~repro.engine.app.TickApplication`, so it
runs unchanged inside the durable engine (checkpointed, crashed, recovered)
and standalone under :func:`~repro.game.recorder.record_trace` to produce the
update traces the checkpoint simulator consumes (Section 5.4).
"""

from repro.game.columns import COLUMN_NAMES, Column
from repro.game.knights_archers import KnightsArchersGame
from repro.game.recorder import record_trace
from repro.game.scenario import BattleScenario
from repro.game.stats import BattleReport

__all__ = [
    "BattleReport",
    "BattleScenario",
    "COLUMN_NAMES",
    "Column",
    "KnightsArchersGame",
    "record_trace",
]
