"""Regenerate Figure 5: the prototype-game trace (Section 5.4)."""

import pytest
from conftest import run_once

from repro.experiments import fig5


@pytest.fixture(scope="module")
def shared():
    return {}


def _run(bench_scale):
    return fig5.run(bench_scale, source="gamelike")


def test_fig5a(benchmark, bench_scale, report_sink, shared):
    """Figure 5(a): average overhead per algorithm on the game trace."""
    result = run_once(benchmark, _run, bench_scale)
    shared["result"] = result
    report_sink("fig5a", result.render())
    raw = result.raw["results"]
    # Paper: COU-Partial-Redo overhead exceeds Copy-on-Update's (1.6 vs 1.2
    # ms) because it checkpoints more often.
    assert (
        raw["cou-partial-redo"]["avg_overhead_s"]
        >= raw["copy-on-update"]["avg_overhead_s"]
    )
    # Paper: Atomic-Copy-Dirty-Objects has the lowest average overhead.
    others = [v["avg_overhead_s"] for k, v in raw.items() if k != "atomic-copy"]
    assert raw["atomic-copy"]["avg_overhead_s"] <= min(others) * 1.05


def test_fig5b(benchmark, bench_scale, report_sink, shared):
    """Figure 5(b): time to checkpoint on the game trace."""
    if "result" in shared:
        result = shared["result"]
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    else:
        result = run_once(benchmark, _run, bench_scale)
        shared["result"] = result
    report_sink("fig5b", result.tables[0].render())
    raw = result.raw["results"]
    # Log methods checkpoint faster than their double-backup twins here.
    assert (
        raw["cou-partial-redo"]["avg_checkpoint_s"]
        < raw["copy-on-update"]["avg_checkpoint_s"]
    )


def test_fig5c(benchmark, bench_scale, report_sink, shared):
    """Figure 5(c): recovery time on the game trace."""
    if "result" in shared:
        result = shared["result"]
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    else:
        result = run_once(benchmark, _run, bench_scale)
        shared["result"] = result
    report_sink("fig5c", result.tables[0].render())
    raw = result.raw["results"]
    # Paper: partial-redo methods have the largest recovery times.
    assert (
        raw["cou-partial-redo"]["recovery_s"]
        > raw["copy-on-update"]["recovery_s"]
    )
    assert raw["partial-redo"]["recovery_s"] > raw["atomic-copy"]["recovery_s"]
