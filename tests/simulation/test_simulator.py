"""Tests for the tick-driven checkpoint simulator."""

import numpy as np
import pytest

from repro.config import PAPER_HARDWARE, SimulationConfig, StateGeometry
from repro.core.registry import ALGORITHM_KEYS, make_policy
from repro.errors import SimulationError
from repro.simulation.simulator import CheckpointSimulator, PrecomputedObjectTrace
from repro.workloads.base import MaterializedTrace
from repro.workloads.uniform import UniformTrace


@pytest.fixture
def geometry():
    return StateGeometry(rows=400, columns=10)  # 4,000 cells, 32 objects


@pytest.fixture
def config(geometry):
    return SimulationConfig(hardware=PAPER_HARDWARE, geometry=geometry)


@pytest.fixture
def simulator(config):
    return CheckpointSimulator(config)


@pytest.fixture
def trace(geometry):
    return UniformTrace(geometry, updates_per_tick=40, num_ticks=60, seed=1)


class TestRunBasics:
    def test_runs_every_algorithm(self, simulator, trace):
        results = simulator.run_all(trace)
        assert [r.algorithm_key for r in results] == list(ALGORITHM_KEYS)
        for result in results:
            assert result.num_ticks == 60
            assert result.checkpoints, "no checkpoints were taken"

    def test_tick_lengths_at_least_base(self, simulator, trace):
        for result in simulator.run_all(trace):
            assert (result.tick_length >= result.base_tick_length - 1e-12).all()
            assert (result.tick_overhead >= 0).all()

    def test_tick_length_is_base_plus_overhead(self, simulator, trace):
        result = simulator.run("copy-on-update", trace)
        assert np.allclose(
            result.tick_length, result.base_tick_length + result.tick_overhead
        )

    def test_overhead_breakdown_sums(self, simulator, trace):
        result = simulator.run("copy-on-update", trace)
        total = (
            result.bit_time + result.lock_time + result.copy_time
            + result.pause_time
        )
        assert np.allclose(result.tick_overhead, total)

    def test_checkpoints_back_to_back(self, simulator, trace):
        """A new checkpoint starts at the boundary where the old finishes."""
        result = simulator.run("naive-snapshot", trace)
        records = result.checkpoints
        for earlier, later in zip(records, records[1:]):
            assert earlier.finished_tick is not None
            assert later.start_tick == earlier.finished_tick

    def test_recovery_estimate_present(self, simulator, trace):
        for result in simulator.run_all(trace):
            assert result.recovery is not None
            assert result.recovery.total > 0

    def test_updates_recorded(self, simulator, trace):
        result = simulator.run("dribble", trace)
        assert (result.tick_updates == 40).all()


class TestValidation:
    def test_geometry_mismatch_rejected(self, simulator):
        other = UniformTrace(
            StateGeometry(rows=10, columns=10), updates_per_tick=1, num_ticks=1
        )
        with pytest.raises(SimulationError):
            simulator.run("dribble", other)

    def test_used_policy_rejected(self, simulator, trace, geometry):
        policy = make_policy("dribble", geometry.num_objects)
        policy.begin_checkpoint()
        with pytest.raises(SimulationError):
            simulator.run(policy, trace)

    def test_wrong_sized_policy_rejected(self, simulator, trace):
        policy = make_policy("dribble", 7)
        with pytest.raises(SimulationError):
            simulator.run(policy, trace)

    def test_policy_instance_accepted(self, simulator, trace, geometry):
        policy = make_policy("copy-on-update", geometry.num_objects)
        result = simulator.run(policy, trace)
        assert result.algorithm_key == "copy-on-update"


class TestPrecomputedObjectTrace:
    def test_equivalent_results(self, simulator, trace):
        direct = simulator.run("copy-on-update", trace)
        precomputed = simulator.run(
            "copy-on-update", PrecomputedObjectTrace(trace)
        )
        assert np.allclose(direct.tick_overhead, precomputed.tick_overhead)
        assert direct.avg_checkpoint_time == pytest.approx(
            precomputed.avg_checkpoint_time
        )

    def test_counts_preserved(self, geometry):
        trace = MaterializedTrace(geometry, [np.array([0, 0, 1, 200])])
        precomputed = PrecomputedObjectTrace(trace)
        (objects, count), = precomputed.object_ticks()
        assert count == 4
        assert objects.tolist() == [0, 1]  # cells 0,1 share object 0

    def test_num_ticks(self, trace):
        assert PrecomputedObjectTrace(trace).num_ticks == trace.num_ticks


class TestEmptyWorkload:
    def test_idle_trace_runs(self, simulator, geometry):
        trace = UniformTrace(geometry, updates_per_tick=0, num_ticks=10)
        for result in simulator.run_all(trace):
            assert result.num_ticks == 10
            if result.algorithm_key == "naive-snapshot":
                # Naive-Snapshot copies the whole state every checkpoint no
                # matter what -- its overhead never goes to zero.
                assert (result.pause_time > 0).any()
            else:
                # Dirty-tracking methods take free empty checkpoints once
                # the cold-start full ones have drained.
                assert result.tick_overhead[5:].sum() == pytest.approx(0.0)


class TestCheckpointIntervalCap:
    def test_interval_spaces_checkpoint_starts(self, geometry, trace):
        config = SimulationConfig(
            hardware=PAPER_HARDWARE,
            geometry=geometry,
            min_checkpoint_interval_ticks=7,
        )
        result = CheckpointSimulator(config).run("copy-on-update", trace)
        starts = [record.start_tick for record in result.checkpoints]
        assert all(b - a >= 7 for a, b in zip(starts, starts[1:]))

    def test_interval_one_is_paper_behavior(self, simulator, geometry, trace):
        config = SimulationConfig(
            hardware=PAPER_HARDWARE,
            geometry=geometry,
            min_checkpoint_interval_ticks=1,
        )
        capped = CheckpointSimulator(config).run("copy-on-update", trace)
        default = simulator.run("copy-on-update", trace)
        assert np.allclose(capped.tick_overhead, default.tick_overhead)
        assert capped.recovery_time == default.recovery_time

    def test_interval_floors_replay_estimate(self, geometry, trace):
        config = SimulationConfig(
            hardware=PAPER_HARDWARE,
            geometry=geometry,
            min_checkpoint_interval_ticks=60,  # longer than the run needs
        )
        result = CheckpointSimulator(config).run("copy-on-update", trace)
        tick = PAPER_HARDWARE.tick_duration
        assert result.recovery.replay_time >= 59 * tick

    def test_bad_interval_rejected(self, geometry):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SimulationConfig(
                hardware=PAPER_HARDWARE,
                geometry=geometry,
                min_checkpoint_interval_ticks=0,
            )


class TestDeterminism:
    def test_same_trace_same_result(self, simulator, trace):
        a = simulator.run("cou-partial-redo", trace)
        b = simulator.run("cou-partial-redo", trace)
        assert np.array_equal(a.tick_overhead, b.tick_overhead)
        assert a.recovery_time == b.recovery_time
