"""A shared checkpoint writer pool: K worker threads for a whole fleet.

PR 2 gave every shard its own :class:`~repro.engine.writer.AsyncCheckpointWriter`
thread.  That is the paper's Figure 1 shape for a single game server, but it
does not scale to production shard counts: at ``num_shards=64`` the process
runs 64 writer threads that mostly idle between checkpoint cadence points,
and the kernel sees 64 uncoordinated I/O streams.  The pool replaces them
with a fixed crew:

* **K worker threads shared by all shards.**  Each shard registers its store
  and receives a :class:`PoolWriter` handle whose mutator-side surface
  (``submit`` / ``check`` / ``idle`` / ``wait_idle`` / ``stats`` / ``close``)
  is interchangeable with :class:`~repro.engine.writer.AsyncCheckpointWriter`,
  so :class:`~repro.engine.executor.RealExecutor` and the validation harness
  plug in either without caring which.  Total writer thread count is
  ``O(pool_size)``, not ``O(num_shards)``.

* **Bounded admission queue with per-shard fairness.**  Each handle may have
  at most one job in flight (checkpoints are sequential per shard by
  construction), so the ready queue holds at most one entry per shard and
  draining it front-first is round-robin over shards -- no shard can starve
  another's cut-consistent handoff.  ``max_pending`` bounds the queue; a
  saturated pool pushes back on the submitting mutator (it blocks up to
  ``admission_timeout`` seconds, then raises) instead of buffering without
  limit.

* **Staleness-weighted admission.**  Recovery time depends on the *age* of
  the oldest checkpoint at crash time, not on mean throughput, so by
  default the pool drains the queue oldest-cut-tick-first
  (``admission="staleness"``): each queued job carries the tick its cut
  happened at, and the worker always services the job whose cut is oldest
  (submission order breaks ties, so equal-cadence shards still drain
  round-robin).  Under overload this bounds the worst-case checkpoint age
  at roughly one queue drain, where FIFO order lets a shard whose old cut
  arrived behind a burst of fresh jobs wait arbitrarily long.
  ``admission="fifo"`` keeps the PR 4 arrival-order behavior for
  comparison.

* **Batched, coalesced flushes.**  A worker wakes up and takes a *batch*:
  the stalest (or, under FIFO, front) job plus up to ``batch_jobs - 1``
  more jobs whose store is the same type, flushed back-to-back
  oldest-cut-first.  With ``coalesce=True`` (the default) each job lands
  through the store's ``write_checkpoint_vectored`` entry point -- every
  pending chunk of the job gathered into one iovec and written with a
  single ``writev`` (log stores, commit marker included) or one
  globally-sorted ``pwritev`` pass (double-backup stores), with at most
  one data fsync per job instead of one write per chunk.  POSIX offers no
  gathered write spanning file descriptors, so the batch lands as one
  such gathered write per handle, back-to-back; jobs larger than
  ``max_gather_bytes`` fall back to the chunked path rather than staging
  huge checkpoints in memory.  The selection rule keeps the oldest
  waiting shard in the very next batch either way.

* **Failure isolation.**  A store raising mid-flush poisons only its own
  handle: the error is recorded there and re-raised on *that shard's* next
  ``check``/``submit``, the worker aborts that checkpoint (the store keeps
  an uncommitted image, exactly the torn state recovery ignores) and moves
  on to the other shards' jobs.

Shutdown mirrors the single writer: ``close(wait=True)`` drains every queued
job to commit before the workers exit; ``close(wait=False)`` / ``kill``
abandons queued and in-flight jobs at the next chunk boundary (crash
semantics).  A pool that cannot join its workers within the timeout raises
rather than silently leaking threads.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.engine.writer import (
    DEFAULT_CHUNK_OBJECTS,
    DEFAULT_MAX_GATHER_BYTES,
    CheckpointJob,
    StoreType,
    WriterStats,
    flush_checkpoint_job,
    flush_checkpoint_job_vectored,
)
from repro.errors import CheckpointWriterError
from repro.obs.trace import get_tracer

#: Queue service orders: ``staleness`` drains oldest cut tick first (bounds
#: worst-case checkpoint age under overload), ``fifo`` drains arrival order.
ADMISSION_POLICIES = ("staleness", "fifo")


@dataclass
class PoolStats:
    """Cross-thread snapshot of the pool's lifetime counters."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_abandoned: int = 0
    bytes_written: int = 0
    #: Wall-clock seconds workers spent inside jobs (begin to commit).
    busy_seconds: float = 0.0
    #: Number of worker wakeups that flushed at least one job.
    batches_flushed: int = 0
    #: Jobs flushed through batches (the histogram's total weight).
    jobs_batched: int = 0
    #: Batch size -> number of batches of that size.  At most ``batch_jobs``
    #: distinct keys, however long the pool lives -- a fixed-size histogram
    #: where PR 4 kept one list entry per batch forever.
    batch_size_histogram: Dict[int, int] = field(default_factory=dict)
    #: Jobs waiting in the admission queue at this snapshot.
    queue_depth: int = 0
    #: Largest number of jobs ever waiting in the admission queue.
    max_queue_depth: int = 0
    #: Jobs landed as a single gathered write / via the chunked fallback.
    coalesced_jobs: int = 0
    chunked_jobs: int = 0
    #: Worst service-order inversion: the cut-tick gap between the job a
    #: worker picked and the *oldest* job then queued.  Staleness admission
    #: holds this at zero (it always picks the oldest); FIFO lets it grow
    #: with however much older a queued cut can be than the queue head.
    max_picked_staleness_ticks: int = 0
    #: Largest per-shard checkpoint age (newest cut handed to the pool minus
    #: newest durable cut) observed at this snapshot -- the fleet-facing
    #: gauge recovery time depends on.
    max_checkpoint_age_ticks: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average jobs coalesced per worker wakeup."""
        if not self.batches_flushed:
            return 0.0
        return self.jobs_batched / self.batches_flushed


class PoolWriter:
    """One shard's submission handle onto a shared writer pool.

    Duck-types the mutator-side surface of
    :class:`~repro.engine.writer.AsyncCheckpointWriter`; obtained via
    :meth:`CheckpointWriterPool.register`, never constructed directly.
    """

    def __init__(
        self, pool: "CheckpointWriterPool", store: StoreType, index: int,
        name: str,
    ) -> None:
        self._pool = pool
        self._store = store
        self._index = index
        self._name = name
        self._idle = threading.Event()
        self._idle.set()
        self._abandon = threading.Event()
        self._error: Optional[BaseException] = None
        self._job: Optional[CheckpointJob] = None  # guarded by the pool lock
        self._stats = WriterStats()  # guarded by the pool lock
        self._closed = False
        # Admission bookkeeping, guarded by the pool lock: submission
        # sequence number (FIFO order and staleness tie-break) and the
        # newest cut tick this shard has handed to the pool.
        self._arrival = 0
        self._newest_cut = -1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def store(self) -> StoreType:
        """The stable-storage structure this handle flushes through."""
        return self._store

    @property
    def name(self) -> str:
        """Display name of the handle (defaults to ``shard-<index>``)."""
        return self._name

    @property
    def index(self) -> int:
        """Registration order; batches flush in this order."""
        return self._index

    @property
    def idle(self) -> bool:
        """True when this shard has no checkpoint write queued or in flight."""
        return self._idle.is_set()

    @property
    def error(self) -> Optional[BaseException]:
        """The pending failure from this shard's last flush, if any."""
        return self._error

    @property
    def last_committed(self):
        """``(epoch, cut_tick)`` of this shard's newest committed checkpoint."""
        with self._pool._lock:
            return self._stats.last_committed

    @property
    def checkpoint_age(self) -> int:
        """Ticks between this shard's newest cut handed to the pool and its
        newest *durable* cut -- the replay work a crash right now would cost
        beyond the unavoidable cadence gap.  0 while the shard is caught up.
        """
        with self._pool._lock:
            return self._checkpoint_age_locked()

    def _checkpoint_age_locked(self) -> int:
        if self._newest_cut < 0:
            return 0
        committed = self._stats.last_committed
        committed_cut = committed[1] if committed is not None else -1
        return max(0, self._newest_cut - committed_cut)

    def stats(self) -> WriterStats:
        """Consistent snapshot of this shard's counters (O(buckets))."""
        with self._pool._lock:
            return self._stats.snapshot()

    # ------------------------------------------------------------------
    # Mutator-side interface
    # ------------------------------------------------------------------

    def check(self) -> None:
        """Re-raise this shard's pending flush failure on the caller."""
        if self._error is not None:
            raise CheckpointWriterError(
                f"checkpoint writer pool failed on {self._name}: "
                f"{self._error!r}"
            ) from self._error

    def submit(self, job: CheckpointJob) -> None:
        """Hand one checkpoint to the pool (previous one must be finished)."""
        self._pool._submit(self, job)

    def wait_idle(
        self, timeout: Optional[float] = None, check: bool = True
    ) -> bool:
        """Block until this shard's job finishes; False on timeout."""
        finished = self._idle.wait(timeout)
        if check:
            self.check()
        return finished

    def close(self, timeout: float = 30.0, wait: bool = True) -> None:
        """Retire the handle (the pool itself keeps running).

        ``wait=True`` lets a queued or in-flight job run to commit and then
        re-raises any pending error; ``wait=False`` drops a queued job
        outright and tells a worker mid-flush to abandon at the next chunk
        boundary (crash semantics).  Either way the handle is idle when this
        returns -- no worker will touch the store afterwards -- or a
        :class:`~repro.errors.CheckpointWriterError` is raised.
        """
        self._closed = True
        if not wait:
            self._pool._abandon_handle(self)
        if not self.wait_idle(timeout=timeout, check=False):
            message = (
                f"writer pool did not release {self._name} within "
                f"{timeout:.1f}s"
            )
            if self._error is not None:
                message += f" (pending writer error: {self._error!r})"
            raise CheckpointWriterError(message) from self._error
        if wait:
            self.check()

    def kill(self, timeout: float = 30.0) -> None:
        """Crash-style retirement: abandon this shard's job and detach."""
        self.close(timeout=timeout, wait=False)


class CheckpointWriterPool:
    """K shared worker threads flushing checkpoints for many shards."""

    def __init__(
        self,
        num_workers: int,
        max_pending: Optional[int] = None,
        batch_jobs: int = 8,
        chunk_objects: int = DEFAULT_CHUNK_OBJECTS,
        admission_timeout: float = 60.0,
        admission: str = "staleness",
        coalesce: bool = True,
        max_gather_bytes: int = DEFAULT_MAX_GATHER_BYTES,
        name: str = "repro-ckpt-pool",
    ) -> None:
        if num_workers <= 0:
            raise CheckpointWriterError(
                f"num_workers must be positive, got {num_workers}"
            )
        if max_pending is not None and max_pending <= 0:
            raise CheckpointWriterError(
                f"max_pending must be positive or None, got {max_pending}"
            )
        if batch_jobs <= 0:
            raise CheckpointWriterError(
                f"batch_jobs must be positive, got {batch_jobs}"
            )
        if chunk_objects <= 0:
            raise CheckpointWriterError(
                f"chunk_objects must be positive, got {chunk_objects}"
            )
        if admission not in ADMISSION_POLICIES:
            raise CheckpointWriterError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {admission!r}"
            )
        if max_gather_bytes <= 0:
            raise CheckpointWriterError(
                f"max_gather_bytes must be positive, got {max_gather_bytes}"
            )
        self._num_workers = num_workers
        self._max_pending = max_pending
        self._batch_jobs = batch_jobs
        self._chunk = chunk_objects
        self._admission_timeout = admission_timeout
        self._admission = admission
        self._coalesce = coalesce
        self._max_gather_bytes = max_gather_bytes
        self._arrival_counter = 0
        self._name = name
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._ready: Deque[PoolWriter] = deque()
        self._handles: List[PoolWriter] = []
        self._threads: List[threading.Thread] = []
        self._shutdown = False
        self._abandon_all = threading.Event()
        self._stats = PoolStats()
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        """Size of the worker crew (the total writer thread count)."""
        return self._num_workers

    @property
    def admission(self) -> str:
        """Queue service order: ``staleness`` (default) or ``fifo``."""
        return self._admission

    @property
    def coalesce(self) -> bool:
        """True when jobs land as single gathered vectored writes."""
        return self._coalesce

    @property
    def handles(self) -> List[PoolWriter]:
        """Registered handles, in registration order."""
        with self._lock:
            return list(self._handles)

    def stats(self) -> PoolStats:
        """Consistent snapshot of the pool-wide lifetime counters."""
        with self._lock:
            ages = [
                handle._checkpoint_age_locked() for handle in self._handles
            ]
            return PoolStats(
                jobs_submitted=self._stats.jobs_submitted,
                jobs_completed=self._stats.jobs_completed,
                jobs_abandoned=self._stats.jobs_abandoned,
                bytes_written=self._stats.bytes_written,
                busy_seconds=self._stats.busy_seconds,
                batches_flushed=self._stats.batches_flushed,
                jobs_batched=self._stats.jobs_batched,
                batch_size_histogram=dict(self._stats.batch_size_histogram),
                queue_depth=len(self._ready),
                max_queue_depth=self._stats.max_queue_depth,
                coalesced_jobs=self._stats.coalesced_jobs,
                chunked_jobs=self._stats.chunked_jobs,
                max_picked_staleness_ticks=(
                    self._stats.max_picked_staleness_ticks
                ),
                max_checkpoint_age_ticks=max(ages, default=0),
            )

    # ------------------------------------------------------------------
    # Registration and submission
    # ------------------------------------------------------------------

    def register(self, store: StoreType, name: Optional[str] = None) -> PoolWriter:
        """Attach a shard's store; returns its submission handle."""
        if self._closed:
            raise CheckpointWriterError("writer pool is closed")
        with self._lock:
            index = len(self._handles)
            handle = PoolWriter(
                self, store, index, name or f"shard-{index:02d}"
            )
            self._handles.append(handle)
        return handle

    def _ensure_workers(self) -> None:
        if self._threads:
            return
        with self._lock:
            if self._threads:
                return
            for worker in range(self._num_workers):
                thread = threading.Thread(
                    target=self._run,
                    name=f"{self._name}-{worker}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def _submit(self, handle: PoolWriter, job: CheckpointJob) -> None:
        handle.check()
        if self._closed or handle._closed:
            raise CheckpointWriterError("writer pool is closed")
        if not handle._idle.is_set():
            raise CheckpointWriterError(
                f"checkpoint job submitted on {handle.name} while the "
                "previous one is in flight"
            )
        self._ensure_workers()
        with self._lock:
            # Admission control: a saturated queue blocks the mutator
            # (backpressure) rather than growing without bound.
            deadline = time.monotonic() + self._admission_timeout
            while (
                self._max_pending is not None
                and len(self._ready) >= self._max_pending
                and not self._shutdown
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._space.wait(timeout=remaining):
                    raise CheckpointWriterError(
                        f"admission queue full ({self._max_pending} pending) "
                        f"for {self._admission_timeout:.1f}s; the pool is not "
                        "keeping up with the fleet's checkpoint cadence"
                    )
            if self._shutdown:
                raise CheckpointWriterError("writer pool is closed")
            handle._job = job
            handle._abandon.clear()
            handle._idle.clear()
            handle._arrival = self._arrival_counter
            self._arrival_counter += 1
            if job.cut_tick > handle._newest_cut:
                handle._newest_cut = job.cut_tick
            handle._stats.jobs_submitted += 1
            self._stats.jobs_submitted += 1
            self._ready.append(handle)
            if len(self._ready) > self._stats.max_queue_depth:
                self._stats.max_queue_depth = len(self._ready)
            depth = len(self._ready)
            self._work.notify()
        get_tracer().instant(
            "ckpt_admit",
            shard=handle.name,
            epoch=job.epoch,
            cut=job.cut_tick,
            depth=depth,
        )

    def _abandon_handle(self, handle: PoolWriter) -> None:
        """Drop a queued job, or flag an in-flight one to stop (kill path)."""
        with self._lock:
            handle._abandon.set()
            if handle in self._ready:
                # Never picked up: retire it without touching the store.
                self._ready.remove(handle)
                handle._job = None
                handle._stats.jobs_abandoned += 1
                self._stats.jobs_abandoned += 1
                handle._idle.set()
                self._space.notify()

    # ------------------------------------------------------------------
    # Worker threads
    # ------------------------------------------------------------------

    @staticmethod
    def _staleness_key(handle: PoolWriter):
        """Service priority: oldest cut tick first, submission order ties."""
        return (handle._job.cut_tick, handle._arrival)

    def _take_batch_locked(self) -> List[PoolWriter]:
        """Pop the most urgent job plus same-store-type jobs behind it.

        Under ``staleness`` admission the most urgent job is the queued job
        with the oldest cut tick; under ``fifo`` it is the queue head.
        Either rule keeps the longest-waiting shard in the very next batch,
        so a differently-typed job can be passed over at most until the
        next wakeup, never indefinitely.
        """
        oldest_queued_cut = min(
            handle._job.cut_tick for handle in self._ready
        )
        if self._admission == "fifo":
            first = self._ready.popleft()
            followers = list(self._ready)
        else:
            first = min(self._ready, key=self._staleness_key)
            self._ready.remove(first)
            followers = sorted(self._ready, key=self._staleness_key)
        picked_staleness = first._job.cut_tick - oldest_queued_cut
        if picked_staleness > self._stats.max_picked_staleness_ticks:
            self._stats.max_picked_staleness_ticks = picked_staleness
        batch = [first]
        if self._batch_jobs > 1:
            store_type = type(first._store)
            for handle in followers:
                if len(batch) >= self._batch_jobs:
                    break
                if type(handle._store) is store_type:
                    self._ready.remove(handle)
                    batch.append(handle)
        if self._admission == "fifo":
            # PR 4 behavior: deterministic shard-index order within the batch.
            batch.sort(key=lambda handle: handle._index)
        else:
            # The stalest shard's checkpoint always lands first, so even
            # mid-batch the worst-case age keeps shrinking.
            batch.sort(key=self._staleness_key)
        self._stats.batches_flushed += 1
        self._stats.jobs_batched += len(batch)
        histogram = self._stats.batch_size_histogram
        histogram[len(batch)] = histogram.get(len(batch), 0) + 1
        return batch

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._ready and not self._shutdown:
                    self._work.wait()
                if not self._ready:
                    return  # shutdown with an empty queue
                batch = self._take_batch_locked()
                self._space.notify_all()
            for handle in batch:
                self._flush(handle)

    def _flush(self, handle: PoolWriter) -> None:
        """Flush one shard's job; errors poison only that shard's handle."""
        job = handle._job

        def should_abandon() -> bool:
            return handle._abandon.is_set() or self._abandon_all.is_set()

        def on_chunk_written(nbytes: int) -> None:
            with self._lock:
                handle._stats.bytes_written += nbytes
                self._stats.bytes_written += nbytes

        # Coalesce into one gathered write unless the job would stage more
        # than max_gather_bytes in memory, then chunk it like PR 4.
        vectored = self._coalesce and (
            job.object_ids.size * handle._store.geometry.object_bytes
            <= self._max_gather_bytes
        )
        flush = flush_checkpoint_job_vectored if vectored else (
            flush_checkpoint_job
        )
        started = time.perf_counter()
        try:
            if should_abandon():
                # Killed between queue pop and flush: leave the store alone.
                completed = False
            else:
                with get_tracer().span(
                    "pool_flush",
                    shard=handle.name,
                    epoch=job.epoch,
                    cut=job.cut_tick,
                    vectored=vectored,
                ):
                    completed = flush(
                        handle._store,
                        job,
                        self._chunk,
                        should_abandon=should_abandon,
                        on_chunk_written=on_chunk_written,
                    )
            elapsed = time.perf_counter() - started
            with self._lock:
                if completed:
                    handle._stats.jobs_completed += 1
                    handle._stats.busy_seconds += elapsed
                    handle._stats.record_duration(elapsed)
                    handle._stats.last_committed = (job.epoch, job.cut_tick)
                    self._stats.jobs_completed += 1
                    self._stats.busy_seconds += elapsed
                    if vectored:
                        self._stats.coalesced_jobs += 1
                    else:
                        self._stats.chunked_jobs += 1
                else:
                    handle._stats.jobs_abandoned += 1
                    self._stats.jobs_abandoned += 1
        except BaseException as error:  # surfaced on that shard's mutator
            handle._error = error
            with self._lock:
                self._stats.jobs_abandoned += 1
        finally:
            handle._job = None
            handle._idle.set()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self, timeout: float = 30.0, wait: bool = True) -> None:
        """Stop the workers and join them.

        ``wait=True`` drains every queued job to commit first (orderly
        shutdown); ``wait=False`` abandons queued and in-flight jobs at the
        next chunk boundary (crash semantics).  Raises if any worker is still
        alive after ``timeout`` seconds, or -- on an orderly close -- if any
        handle holds a pending flush error.
        """
        self._closed = True
        if not wait:
            self._abandon_all.set()
        with self._lock:
            self._shutdown = True
            self._work.notify_all()
            self._space.notify_all()
        deadline = time.monotonic() + timeout
        stuck = []
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                stuck.append(thread.name)
        if stuck:
            raise CheckpointWriterError(
                f"writer pool workers did not stop within {timeout:.1f}s: "
                f"{', '.join(stuck)}"
            )
        self._threads = []
        if wait:
            for handle in self.handles:
                # A retired handle's error already surfaced on its own
                # shard's close/kill path; only live handles re-raise here.
                if not handle._closed:
                    handle.check()

    def kill(self, timeout: float = 30.0) -> None:
        """Crash-style shutdown: abandon everything in flight and join."""
        self.close(timeout=timeout, wait=False)

    def __enter__(self) -> "CheckpointWriterPool":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._closed:
            self.close()
