"""A fleet of MMO shards ticking concurrently under one checkpoint I/O crew.

The paper's deployment unit is the shard: "the game world is partitioned
into mostly-independent areas" each served by its own game server (Section
1).  :class:`ShardFleet` runs ``N`` :class:`~repro.engine.shard.MMOShard`
instances against one root directory, each shard with its own durable state
and deterministic seed.  Checkpoint I/O runs in one of two shapes:

* ``pool_size=K`` (the production shape) -- one shared
  :class:`~repro.engine.writer_pool.CheckpointWriterPool` serves every
  shard, so the fleet runs ``N`` mutator threads plus ``K`` writer threads
  (``O(pool_size)``, not ``O(num_shards)``), with batched submission and
  per-shard fairness;
* ``pool_size=None, async_writer=True`` (the PR 2 fallback) -- every shard
  keeps its own :class:`~repro.engine.writer.AsyncCheckpointWriter` thread,
  up to ``2 N`` threads total.

Both shapes run the mutators as *threads*, which caps aggregate throughput
at roughly one core (the GIL serializes the tick loops however many shards
run).  ``backend="process"`` breaks that ceiling: each shard's mutator loop
runs in a **worker process** whose
:class:`~repro.state.table.GameStateTable` lives in a shared-memory
:class:`~repro.state.shared.SharedArena`, while the parent keeps the shared
writer pool and lands every checkpoint zero-copy from the worker's staged
shared-memory bytes (see :mod:`repro.engine.shard_worker` for the cut
protocol).  ``run_ticks`` / ``checkpoint_ages`` / ``crash`` / ``recover``
behave identically across backends, worker death surfaces as that shard's
failure (never a fleet hang), and the checkpoint files are byte-identical
to the threaded backend's under a deterministic schedule
(``checkpoint_barrier=True``).

The fleet is the unit the throughput benchmark drives
(``benchmarks/bench_engine.py``): :meth:`run_ticks` advances every shard by
the same number of ticks, either on one thread (``parallel=False``, the
deterministic baseline) or on a thread per shard, and reports aggregate
ticks/second.  Crash operates fleet-wide; :meth:`recover` replays every
shard either serially or on a recovery thread pool with deterministic,
index-ordered result assembly.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.core.plan import DiskLayout
from repro.core.registry import make_policy
from repro.engine.app import TickApplication
from repro.engine.recovery import RECOVERY_MODES
from repro.engine.server import ServerStats
from repro.engine.shard import GAME_SUBDIRECTORY, MMOShard, ShardRecovery
from repro.engine.shard_worker import (
    CONTROL_SLOT,
    F_BYTES_WRITTEN,
    F_COMMITTED_CUT,
    F_COMMITTED_EPOCH,
    F_TICKS_RUN,
    TRACE_RING_PREFIX,
    ProcessShardHandle,
    control_arena_slots,
    shard_arena_slots,
    shard_worker_main,
)
from repro.engine.writer_pool import CheckpointWriterPool
from repro.errors import BackpressureError, EngineError
from repro.obs.metrics import MetricsRegistry, RowMetrics
from repro.obs.telemetry import (
    SHARD_METRICS_LAYOUT,
    SHARD_METRICS_SLOT,
    FleetTelemetry,
    PoolTelemetry,
    ShardTelemetry,
    assemble_fleet_telemetry,
)
from repro.obs.trace import drain_ring_events, get_tracer
from repro.state.ring import (
    DEFAULT_RING_BYTES,
    SharedCommandRing,
)
from repro.state.shared import SharedArena, reap_stale_segments
from repro.storage.checkpoint_log import CheckpointLogStore
from repro.storage.double_backup import DoubleBackupStore

#: Subdirectory name of shard ``i`` under the fleet root.
SHARD_DIRECTORY_FORMAT = "shard-{index:02d}"

#: Fleet execution backends: ``thread`` runs mutators as threads in this
#: process, ``process`` runs each mutator in a worker process over shared
#: memory (requires the ``fork`` start method, i.e. not Windows).
FLEET_BACKENDS = ("thread", "process")

#: Fleet-level recovery modes: ``serial`` recovers shards one after another,
#: ``parallel`` recovers shards on a thread pool, ``pipelined`` additionally
#: pipelines restore with replay *inside* each shard.
FLEET_RECOVERY_MODES = ("serial", "parallel", "pipelined")

#: Command-ingestion transports of the process backend: ``ring`` batches
#: commands through the shard's shared-memory command ring (one drain per
#: tick), ``pipe`` sends one pickle per command over the control pipe (the
#: per-command baseline the front-door benchmark A/Bs against).
COMMAND_TRANSPORTS = ("ring", "pipe")


def shard_directory(root: Union[str, os.PathLike], index: int) -> str:
    """Directory of shard ``index`` under the fleet root."""
    return os.path.join(os.fspath(root), SHARD_DIRECTORY_FORMAT.format(index=index))


def _open_parent_store(
    game_directory: str,
    geometry,
    algorithm: str,
    full_dump_period: int,
    sync: bool,
    fsync_policy: Optional[str],
):
    """The parent's own handle on a worker-created checkpoint store.

    Mirrors :class:`~repro.engine.server.DurableGameServer`'s store choice
    for the algorithm; both store types tolerate opening existing files
    (the log store verifies the geometry record, the double backup attaches
    read-write), and only the parent ever writes checkpoint records.
    """
    policy = make_policy(
        algorithm, geometry.num_objects, full_dump_period=full_dump_period
    )
    if policy.layout is DiskLayout.DOUBLE_BACKUP:
        return DoubleBackupStore(
            game_directory, geometry, sync=sync, fsync_policy=fsync_policy
        )
    return CheckpointLogStore(
        game_directory, geometry, sync=sync, fsync_policy=fsync_policy
    )


@dataclass(frozen=True)
class FleetRunReport:
    """Aggregate outcome of one :meth:`ShardFleet.run_ticks` call."""

    num_shards: int
    ticks_per_shard: int
    wall_seconds: float
    #: Sum of ticks executed across all shards divided by wall time.
    ticks_per_second: float
    #: Each shard's lifetime stats, snapshotted after the run.
    shard_stats: List[ServerStats]


@dataclass(frozen=True)
class FleetServeReport:
    """Outcome of one :meth:`ShardFleet.try_run_ticks` call.

    The serving-path variant of :class:`FleetRunReport`: per-shard failures
    are *returned*, not raised, so a gateway can keep ticking survivors
    while one shard is down.  ``shard_stats[i]`` is None exactly when
    ``errors[i]`` is set (or the shard was already dead and skipped).
    """

    num_shards: int
    ticks_per_shard: int
    wall_seconds: float
    ticks_per_second: float
    shard_stats: List[Optional[ServerStats]]
    #: Per-shard failure, or None where the shard completed its ticks.
    errors: List[Optional[BaseException]]

    @property
    def ok(self) -> bool:
        """True when every shard completed its ticks."""
        return all(error is None for error in self.errors)

    @property
    def failed_shards(self) -> List[int]:
        """Indexes of shards that did not complete this call's ticks."""
        return [i for i, error in enumerate(self.errors) if error is not None]


class _ThreadCommandQueue:
    """Bounded per-shard command queue for the thread backend.

    The thread-backend equivalent of the shared-memory ring: producers
    (the gateway's tick driver) push under a lock, the shard's mutator
    thread drains the whole backlog once per tick.  Capacity is accounted
    in ring bytes (header + payload) so both backends reject at the same
    fill level.
    """

    def __init__(self, capacity_bytes: int) -> None:
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self._bytes = 0
        self._capacity = int(capacity_bytes)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def pending_bytes(self) -> int:
        return self._bytes

    def try_push(self, payload: bytes) -> bool:
        need = SharedCommandRing.record_bytes(payload)
        with self._lock:
            if self._bytes + need > self._capacity:
                return False
            self._queue.append(payload)
            self._bytes += need
            return True

    def drain(self) -> List[bytes]:
        with self._lock:
            if not self._queue:
                return []
            batch = list(self._queue)
            self._queue.clear()
            self._bytes = 0
            return batch


class ShardFleet:
    """Runs N shards of the same game concurrently under one root."""

    def __init__(
        self,
        app_factory: Callable[[int], TickApplication],
        directory: Union[str, os.PathLike],
        num_shards: int,
        algorithm: str = "copy-on-update",
        seed: int = 0,
        pool_size: Optional[int] = None,
        pool_max_pending: Optional[int] = None,
        pool_batch_jobs: int = 8,
        pool_admission: str = "staleness",
        pool_coalesce: bool = True,
        backend: str = "thread",
        command_ring_bytes: int = DEFAULT_RING_BYTES,
        metrics: bool = True,
        **shard_kwargs,
    ) -> None:
        if num_shards <= 0:
            raise EngineError(f"num_shards must be positive, got {num_shards}")
        if backend not in FLEET_BACKENDS:
            raise EngineError(
                f"backend must be one of {FLEET_BACKENDS}, got {backend!r}"
            )
        self._directory = os.fspath(directory)
        self._num_shards = num_shards
        self._backend = backend
        self._pool: Optional[CheckpointWriterPool] = None
        self._shards: List[MMOShard] = []
        self._workers: List[ProcessShardHandle] = []
        self._parent_stores: List[object] = []
        self._control: Optional[SharedArena] = None
        self._arenas: List[SharedArena] = []
        self._command_ring_bytes = int(command_ring_bytes)
        self._geometry = None
        #: Per-shard command ingress: shared rings (process backend) or
        #: bounded in-process queues (thread backend), created below.
        self._rings: List[SharedCommandRing] = []
        self._command_queues: List[_ThreadCommandQueue] = []
        #: ``metrics=False`` skips all hot-path publication (the overhead
        #: A/B lever the benchmark pulls); the rows still exist, zeroed.
        self._metrics_enabled = bool(metrics)
        #: One metrics row per shard: views into the shared arenas (process
        #: backend) or rows of a private registry (thread backend).
        self._shard_metric_rows: List[RowMetrics] = []
        #: The parent-owned high-water gauges of the shards' command rings.
        self._ring_hwm_gauges = []
        #: Per-shard trace rings the workers serialize span events into.
        self._trace_rings: List[SharedCommandRing] = []
        if backend == "process":
            # The parent always flushes through a shared pool; a fleet that
            # did not ask for one gets a small default crew.
            if pool_size is None:
                pool_size = 2
            self._pool = CheckpointWriterPool(
                pool_size,
                max_pending=pool_max_pending,
                batch_jobs=pool_batch_jobs,
                admission=pool_admission,
                coalesce=pool_coalesce,
            )
            try:
                self._start_workers(
                    app_factory, algorithm, seed, dict(shard_kwargs)
                )
            except BaseException:
                self._teardown_process_backend(kill=True)
                raise
            self._crashed = False
            return
        if pool_size is not None:
            self._pool = CheckpointWriterPool(
                pool_size,
                max_pending=pool_max_pending,
                batch_jobs=pool_batch_jobs,
                admission=pool_admission,
                coalesce=pool_coalesce,
            )
            shard_kwargs = dict(shard_kwargs)
            shard_kwargs["writer_pool"] = self._pool
            # The pool supersedes the one-thread-per-shard fallback.
            shard_kwargs.pop("async_writer", None)
        try:
            for index in range(num_shards):
                if self._pool is not None:
                    shard_kwargs["writer_name"] = f"shard-{index:02d}"
                app = app_factory(index)
                if self._geometry is None:
                    self._geometry = app.geometry
                self._shards.append(
                    MMOShard(
                        app,
                        shard_directory(self._directory, index),
                        algorithm=algorithm,
                        seed=seed + index,
                        **shard_kwargs,
                    )
                )
                self._command_queues.append(
                    _ThreadCommandQueue(self._command_ring_bytes)
                )
        except BaseException:
            for shard in self._shards:
                shard.close()
            if self._pool is not None:
                self._pool.kill()
            raise
        # The thread backend mirrors the process backend's shared metrics
        # layout in a private registry, so telemetry() is backend-uniform.
        registry = MetricsRegistry(SHARD_METRICS_LAYOUT, rows=num_shards)
        self._shard_metric_rows = [
            registry.row(index) for index in range(num_shards)
        ]
        self._ring_hwm_gauges = [
            row.gauge("ring_high_water_bytes")
            for row in self._shard_metric_rows
        ]
        self._crashed = False

    # ------------------------------------------------------------------
    # Process-backend bring-up and teardown
    # ------------------------------------------------------------------

    def _start_workers(
        self,
        app_factory: Callable[[int], TickApplication],
        algorithm: str,
        seed: int,
        shard_kwargs: dict,
    ) -> None:
        """Fork one worker per shard over freshly allocated shared arenas.

        Phased for fork safety: every segment is created and every worker
        forked *before* any parent-side thread starts (the pool's writer
        threads spin up lazily on the first submit; the per-shard
        dispatchers start last), so no child can inherit a locked thread.
        The parent opens its own store handles only after each worker's
        ``ready`` handshake confirms the files exist.
        """
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            raise EngineError(
                "backend='process' needs the fork start method "
                "(unavailable on this platform)"
            ) from None
        # A previous parent that was SIGKILLed may have left segments
        # behind; their owner pid is dead, so this reclaims them.
        reap_stale_segments()
        shard_kwargs.pop("writer_pool", None)
        shard_kwargs.pop("async_writer", None)
        shard_kwargs.pop("writer_name", None)
        sync = shard_kwargs.get("sync", False)
        fsync_policy = shard_kwargs.get("fsync_policy")
        full_dump_period = shard_kwargs.get("full_dump_period", 9)
        self._control = SharedArena.create(
            control_arena_slots(self._num_shards)
        )
        control = self._control.array(CONTROL_SLOT)
        forked = []  # (index, app, process, parent_conn, arena)
        for index in range(self._num_shards):
            app = app_factory(index)
            if self._geometry is None:
                self._geometry = app.geometry
            arena = SharedArena.create(
                shard_arena_slots(
                    app.geometry, app.dtype,
                    ring_bytes=self._command_ring_bytes,
                )
            )
            self._arenas.append(arena)
            self._rings.append(SharedCommandRing(arena))
            self._trace_rings.append(
                SharedCommandRing(arena, prefix=TRACE_RING_PREFIX)
            )
            row = MetricsRegistry.from_array(
                SHARD_METRICS_LAYOUT, arena.array(SHARD_METRICS_SLOT)
            ).row(0)
            self._shard_metric_rows.append(row)
            self._ring_hwm_gauges.append(row.gauge("ring_high_water_bytes"))
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=shard_worker_main,
                args=(
                    index,
                    app,
                    shard_directory(self._directory, index),
                    algorithm,
                    seed + index,
                    shard_kwargs,
                    arena,
                    self._control,
                    child_conn,
                    self._metrics_enabled,
                ),
                name=f"repro-shard-{index:02d}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            forked.append((index, app, process, parent_conn, arena))
        try:
            for index, app, process, parent_conn, arena in forked:
                try:
                    message = parent_conn.recv()
                except EOFError:
                    process.join(timeout=5.0)
                    raise EngineError(
                        f"shard {index} worker died during startup "
                        f"(exit code {process.exitcode})"
                    ) from None
                if message[0] == "fatal":
                    raise EngineError(
                        f"shard {index} worker failed to start:\n{message[1]}"
                    )
                if message[0] != "ready":
                    raise EngineError(
                        f"shard {index} worker sent {message[0]!r} before "
                        "ready"
                    )
                # The worker has created the store files; open our own
                # handles on them (only the parent writes checkpoint
                # records).
                store = _open_parent_store(
                    os.path.join(
                        shard_directory(self._directory, index),
                        GAME_SUBDIRECTORY,
                    ),
                    app.geometry,
                    algorithm,
                    full_dump_period,
                    sync,
                    fsync_policy,
                )
                self._parent_stores.append(store)
                handle = ProcessShardHandle(
                    index,
                    process,
                    parent_conn,
                    arena,
                    control[index],
                    self._pool.register(store, name=f"shard-{index:02d}"),
                )
                self._workers.append(handle)
        except BaseException:
            # Kill every forked worker, including those not yet wrapped in
            # a handle; the caller's teardown releases arenas and stores.
            for _, _, process, _, _ in forked:
                try:
                    if process.is_alive():
                        process.kill()
                    process.join(timeout=5.0)
                except Exception:
                    pass
            raise
        for handle in self._workers:
            handle.start_dispatcher()

    def _teardown_process_backend(self, kill: bool) -> None:
        """Release every process-backend resource; never raises."""
        for handle in self._workers:
            if kill:
                try:
                    handle.kill()
                except Exception:
                    pass
        if self._pool is not None:
            try:
                self._pool.kill() if kill else self._pool.close(wait=False)
            except Exception:
                pass
        for store in self._parent_stores:
            try:
                store.close()
            except Exception:
                pass
        for handle in self._workers:
            try:
                handle.conn.close()
            except Exception:
                pass
            handle.join_dispatcher()
        for arena in self._arenas:
            arena.destroy()
        self._arenas = []
        if self._control is not None:
            self._control.destroy()
            self._control = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def directory(self) -> str:
        """Root directory holding one subdirectory per shard."""
        return self._directory

    @property
    def num_shards(self) -> int:
        """Number of shards in the fleet."""
        return self._num_shards

    @property
    def backend(self) -> str:
        """Execution backend: ``thread`` or ``process``."""
        return self._backend

    @property
    def geometry(self):
        """World geometry every shard runs (shards are homogeneous)."""
        return self._geometry

    @property
    def command_capacity_bytes(self) -> int:
        """Per-shard command-ingress capacity in ring bytes."""
        return self._command_ring_bytes

    @property
    def shards(self) -> List[MMOShard]:
        """The live shards, in index order (thread backend only)."""
        if self._backend == "process":
            raise EngineError(
                "the process backend's shards live in worker processes; "
                "use checkpoint_ages()/run_ticks() or the on-disk state"
            )
        return list(self._shards)

    @property
    def worker_pids(self) -> List[int]:
        """Pids of the shard worker processes (process backend only)."""
        if self._backend != "process":
            raise EngineError("worker_pids is a process-backend property")
        return [handle.process.pid for handle in self._workers]

    @property
    def writer_pool(self) -> Optional[CheckpointWriterPool]:
        """The shared checkpoint writer pool, or None in per-shard mode."""
        return self._pool

    @property
    def writer_threads(self) -> int:
        """Total checkpoint writer threads the fleet runs.

        ``pool_size`` with a pool, ``num_shards`` with per-shard async
        writers -- the headline scaling difference the pool exists for.
        """
        if self._pool is not None:
            return self._pool.num_workers
        if self._crashed:
            return 0
        return sum(1 for shard in self._shards if shard.game.async_writer)

    @property
    def alive_workers(self) -> List[bool]:
        """Liveness of each shard's worker process (process backend only)."""
        if self._backend != "process":
            raise EngineError("alive_workers is a process-backend property")
        return [
            handle.failed is None and handle.process.is_alive()
            for handle in self._workers
        ]

    def checkpoint_ages(self) -> List[int]:
        """Per-shard checkpoint age, in ticks, at this instant.

        A shard's checkpoint age is the number of ticks it has run beyond
        its newest *durable* checkpoint cut -- exactly the log-replay work
        its recovery would pay if the fleet crashed right now (a shard with
        no durable checkpoint yet is as old as its whole tick count).  This
        is the fleet-level view of the gauge the writer pool tracks per
        handle (``PoolStats.max_checkpoint_age_ticks``); here it is measured
        against the shards' live tick counters, so time a checkpoint spends
        queued *or* in flight counts against the age.

        On the process backend the same quantities come out of the shared
        control region -- the workers publish their tick counters, the
        parent its committed cuts -- so the semantics match exactly.
        """
        if self._backend == "process":
            control = self._control.array(CONTROL_SLOT)
            ages = []
            for index in range(self._num_shards):
                row = control[index]
                baseline = (
                    int(row[F_COMMITTED_CUT])
                    if int(row[F_COMMITTED_EPOCH]) > 0
                    else -1
                )
                ages.append(max(0, int(row[F_TICKS_RUN]) - 1 - baseline))
            return ages
        ages = []
        for shard in self._shards:
            server = shard.game
            committed = server.last_committed_checkpoint_tick
            baseline = -1 if committed is None else committed
            ages.append(max(0, server.ticks_run - 1 - baseline))
        return ages

    @property
    def max_checkpoint_age(self) -> int:
        """The stalest shard's checkpoint age in ticks (the quantity a
        worst-case recovery-time bound is built from)."""
        return max(self.checkpoint_ages(), default=0)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def telemetry(self, gateway=None) -> FleetTelemetry:
        """One merged :class:`~repro.obs.telemetry.FleetTelemetry` snapshot.

        Scraping is lock-free and O(shards * buckets): every per-shard
        number is read straight out of single-writer cells (the shared
        metrics rows and control rows on the process backend, the private
        registry and live shard objects on the thread backend), so a scrape
        never stalls a tick loop.  ``gateway`` is an optional dict of
        serving counters the front door folds in.
        """
        if self._crashed:
            raise EngineError("fleet has crashed; recover it instead")
        ages = self.checkpoint_ages()
        process = self._backend == "process"
        control = (
            self._control.array(CONTROL_SLOT) if process else None
        )
        shards: List[ShardTelemetry] = []
        histograms = []
        for index in range(self._num_shards):
            row = self._shard_metric_rows[index]
            hist = row.histogram("tick_us").snapshot()
            histograms.append(hist)
            if process:
                handle = self._workers[index]
                alive = (
                    handle.failed is None and handle.process.is_alive()
                )
                ticks_run = int(control[index][F_TICKS_RUN])
                bytes_written = int(control[index][F_BYTES_WRITTEN])
                ring = self._rings[index]
                pending, capacity = ring.pending_bytes, ring.capacity
            else:
                shard = self._shards[index]
                alive = not shard.crashed
                ticks_run = shard.game.ticks_run
                bytes_written = shard.game.bytes_written
                queue = self._command_queues[index]
                pending, capacity = queue.pending_bytes, queue.capacity
            shards.append(ShardTelemetry(
                index=index,
                alive=alive,
                ticks_run=ticks_run,
                tick_p50_us=hist.percentile(0.50),
                tick_p99_us=hist.percentile(0.99),
                tick_mean_us=hist.mean,
                commands_drained=row.value("commands_drained"),
                staging_us=row.value("staging_us"),
                cut_lag_ticks=row.value("cut_lag_ticks"),
                checkpoint_age_ticks=ages[index],
                bytes_written=bytes_written,
                ring_pending_bytes=pending,
                ring_capacity_bytes=capacity,
                ring_high_water_bytes=row.value("ring_high_water_bytes"),
            ))
        pool = None
        if self._pool is not None:
            pool = PoolTelemetry.from_stats(
                self._pool.stats(), self._pool.num_workers
            )
        return assemble_fleet_telemetry(
            self._backend, shards, histograms, pool=pool, gateway=gateway
        )

    def trace_events(self) -> List[dict]:
        """Drain every buffered span event: the parent tracer's buffer plus
        each worker's shared trace ring (process backend).  Feed the result
        to :func:`repro.obs.export.write_chrome_trace`."""
        events = get_tracer().drain()
        for ring in self._trace_rings:
            events.extend(drain_ring_events(ring))
        return events

    def trace_process_names(self) -> dict:
        """Pid -> display name for the exported trace's process tracks."""
        names = {os.getpid(): "fleet parent"}
        if self._backend == "process":
            for handle in self._workers:
                if handle.process.pid is not None:
                    names[handle.process.pid] = (
                        f"shard-{handle.index:02d} worker"
                    )
        return names

    # ------------------------------------------------------------------
    # Command ingestion
    # ------------------------------------------------------------------

    def submit_commands(
        self,
        index: int,
        payloads: Sequence[bytes],
        transport: Optional[str] = None,
    ) -> int:
        """Queue client commands for shard ``index``'s next tick.

        Returns how many commands were accepted (a prefix of ``payloads``;
        the bounded ingress sheds the rest instead of growing).  On the
        thread backend the batch lands in the shard's bounded in-process
        queue, drained on the mutator thread at its next tick boundary.  On
        the process backend ``transport`` selects the path:

        * ``"ring"`` (default) -- push the batch into the shard's shared
          command ring; the worker drains it as one batch per tick;
        * ``"pipe"`` -- one pickled message per command over the control
          pipe (the per-command baseline; effectively unbounded, so it
          always accepts the whole batch).

        A dead shard's failure is raised rather than silently buffering
        commands nobody will ever consume.
        """
        if not 0 <= index < self._num_shards:
            raise EngineError(
                f"shard index {index} out of range [0, {self._num_shards})"
            )
        for payload in payloads:
            if not isinstance(payload, bytes):
                raise EngineError(
                    f"commands are raw bytes, got {type(payload).__name__}"
                )
        if self._backend == "thread":
            if transport not in (None, "ring"):
                raise EngineError(
                    f"transport {transport!r} needs backend='process'"
                )
            if self._crashed or self._shards[index].crashed:
                raise EngineError(
                    f"shard {index} has crashed; recover it instead"
                )
            queue = self._command_queues[index]
            accepted = 0
            for payload in payloads:
                if not queue.try_push(payload):
                    break
                accepted += 1
            if self._metrics_enabled and accepted:
                self._ring_hwm_gauges[index].max(queue.pending_bytes)
            return accepted
        transport = transport or "ring"
        if transport not in COMMAND_TRANSPORTS:
            raise EngineError(
                f"transport must be one of {COMMAND_TRANSPORTS}, "
                f"got {transport!r}"
            )
        handle = self._workers[index]
        if handle.failed is not None:
            raise handle.failed
        if transport == "pipe":
            for payload in payloads:
                handle.send(("command", payload))
            return len(payloads)
        accepted = self._rings[index].push_batch(payloads)
        if self._metrics_enabled and accepted:
            self._ring_hwm_gauges[index].max(
                self._rings[index].pending_bytes
            )
        return accepted

    def submit_command(
        self, index: int, payload: bytes, transport: Optional[str] = None
    ) -> None:
        """Queue one command, raising a typed error instead of shedding.

        Raises :class:`~repro.errors.BackpressureError` when the shard's
        bounded ingress is full -- the explicit rejection the gateway turns
        into a client-visible REJECT frame.
        """
        if self.submit_commands(index, [payload], transport=transport) != 1:
            ring_or_queue = (
                self._rings[index]
                if self._backend == "process"
                else self._command_queues[index]
            )
            raise BackpressureError(
                f"shard {index} command ingress is full "
                f"({ring_or_queue.pending_bytes}/{ring_or_queue.capacity} "
                "bytes)",
                queue=f"shard-{index:02d}",
                depth=ring_or_queue.pending_bytes,
                capacity=ring_or_queue.capacity,
            )

    def pending_commands(self, index: int) -> int:
        """Commands queued for shard ``index`` but not yet drained.

        Process backend: records sitting in the shared ring; thread
        backend: the bounded queue's depth in bytes is not meaningful
        here, so the entry count is reported for both.
        """
        if not 0 <= index < self._num_shards:
            raise EngineError(
                f"shard index {index} out of range [0, {self._num_shards})"
            )
        if self._backend == "process":
            return self._rings[index].pending_records
        return len(self._command_queues[index]._queue)

    def dead_shards(self) -> List[int]:
        """Indexes of shards that can no longer serve (worker dead or
        shard crashed)."""
        if self._crashed:
            return list(range(self._num_shards))
        if self._backend == "process":
            return [
                handle.index
                for handle in self._workers
                if handle.failed is not None or not handle.process.is_alive()
            ]
        return [
            index for index, shard in enumerate(self._shards) if shard.crashed
        ]

    # ------------------------------------------------------------------
    # Driving the fleet
    # ------------------------------------------------------------------

    def run_ticks(
        self,
        count: int,
        parallel: bool = True,
        checkpoint_barrier: bool = False,
    ) -> FleetRunReport:
        """Advance every shard by ``count`` ticks.

        With ``parallel=True`` each shard runs on its own thread (thread
        backend) or its worker process proceeds concurrently (process
        backend); otherwise the shards run one after another.  The first
        shard failure is re-raised after every other shard has finished its
        ticks -- one shard failing never aborts or hangs the rest.

        ``checkpoint_barrier=True`` makes every shard wait for its in-flight
        checkpoint to become durable before running the next tick.  That
        sacrifices tick/flush overlap, but makes the checkpoint *schedule* a
        pure function of the tick number -- so two fleets with the same
        seeds produce byte-identical checkpoint files on any backend, which
        is how the backend-equivalence tests pin the process backend to the
        threaded baseline.
        """
        outcome = self.try_run_ticks(count, parallel, checkpoint_barrier)
        for error in outcome.errors:
            if error is not None:
                raise error
        return FleetRunReport(
            num_shards=outcome.num_shards,
            ticks_per_shard=outcome.ticks_per_shard,
            wall_seconds=outcome.wall_seconds,
            ticks_per_second=outcome.ticks_per_second,
            shard_stats=list(outcome.shard_stats),
        )

    def try_run_ticks(
        self,
        count: int,
        parallel: bool = True,
        checkpoint_barrier: bool = False,
    ) -> FleetServeReport:
        """Advance every *live* shard by ``count`` ticks; never raises on a
        shard failure.

        The serving-path driver: per-shard failures (including shards that
        were already dead when the call started) come back in
        ``errors[index]`` while every surviving shard completes its ticks.
        Each tick first drains the shard's command ingress -- the shared
        ring (process backend) or the bounded queue (thread backend) -- so
        commands submitted before a tick are applied by it and durably
        logged with it.
        """
        if count < 0:
            raise EngineError(f"count must be non-negative, got {count}")
        started = time.perf_counter()
        with get_tracer().span("fleet_run_ticks", ticks=count):
            if self._backend == "process":
                stats, errors = self._run_ticks_process(count, parallel,
                                                        checkpoint_barrier)
            else:
                stats, errors = self._run_ticks_thread(count, parallel,
                                                       checkpoint_barrier)
        wall = time.perf_counter() - started
        completed = sum(1 for error in errors if error is None)
        total_ticks = count * completed
        return FleetServeReport(
            num_shards=self._num_shards,
            ticks_per_shard=count,
            wall_seconds=wall,
            ticks_per_second=total_ticks / wall if wall > 0 else 0.0,
            shard_stats=stats,
            errors=errors,
        )

    def _run_ticks_thread(self, count: int, parallel: bool,
                          checkpoint_barrier: bool):
        errors: List[Optional[BaseException]] = [None] * self._num_shards
        stats: List[Optional[ServerStats]] = [None] * self._num_shards

        tracer = get_tracer()

        def drive(index: int, shard: MMOShard) -> None:
            queue = self._command_queues[index]
            if self._metrics_enabled:
                row = self._shard_metric_rows[index]
                tick_hist = row.histogram("tick_us")
                drained_counter = row.counter("commands_drained")
                lag_gauge = row.gauge("cut_lag_ticks")
            else:
                tick_hist = drained_counter = lag_gauge = None
            try:
                for _ in range(count):
                    tick_started = (
                        time.monotonic_ns() if tick_hist is not None else 0
                    )
                    with tracer.span("shard_tick"):
                        with tracer.span("ring_drain"):
                            batch = queue.drain()
                            for payload in batch:
                                shard.game.submit_command(payload)
                        shard.run_tick()
                    if tick_hist is not None:
                        tick_hist.observe(
                            (time.monotonic_ns() - tick_started) // 1000
                        )
                        if batch:
                            drained_counter.inc(len(batch))
                        committed = shard.game.last_committed_checkpoint_tick
                        baseline = -1 if committed is None else committed
                        lag_gauge.set(
                            max(0, shard.game.ticks_run - 1 - baseline)
                        )
                    if checkpoint_barrier:
                        shard.wait_checkpoint_idle()
                stats[index] = shard.game.stats
            except BaseException as error:
                errors[index] = error

        if parallel and self._num_shards > 1:
            threads = [
                threading.Thread(
                    target=drive,
                    args=(index, shard),
                    name=f"repro-shard-{index:02d}",
                )
                for index, shard in enumerate(self._shards)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        else:
            for index, shard in enumerate(self._shards):
                drive(index, shard)
        return stats, errors

    def _run_ticks_process(self, count: int, parallel: bool,
                           checkpoint_barrier: bool):
        """Drive every live worker; collect per-shard outcomes."""
        errors: List[Optional[BaseException]] = [None] * self._num_shards
        stats: List[Optional[ServerStats]] = [None] * self._num_shards

        def finish(handle: ProcessShardHandle) -> None:
            message = handle.next_ack()
            shard_stats, error_text = message[1], message[2]
            stats[handle.index] = shard_stats
            if error_text is not None:
                raise EngineError(
                    f"shard {handle.index} failed:\n{error_text}"
                )

        def start(handle: ProcessShardHandle) -> bool:
            if handle.failed is not None:
                errors[handle.index] = handle.failed
                return False
            try:
                handle.send(("run", count, checkpoint_barrier))
                return True
            except EngineError as error:
                errors[handle.index] = error
                return False

        if parallel:
            pending = [h for h in self._workers if start(h)]
            for handle in pending:
                try:
                    finish(handle)
                except EngineError as error:
                    errors[handle.index] = error
        else:
            for handle in self._workers:
                if not start(handle):
                    continue
                try:
                    finish(handle)
                except EngineError as error:
                    errors[handle.index] = error
        return stats, errors

    # ------------------------------------------------------------------
    # Failure and shutdown
    # ------------------------------------------------------------------

    def quiesce(self, timeout: float = 60.0) -> None:
        """Wait until no shard has a checkpoint write queued or in flight.

        Dead workers are skipped (their failure has already been, or will
        be, surfaced by ``run_ticks``).
        """
        if self._backend == "process":
            pending = []
            for handle in self._workers:
                if handle.failed is not None:
                    continue
                try:
                    handle.send(("quiesce",))
                    pending.append(handle)
                except EngineError:
                    pass
            for handle in pending:
                try:
                    handle.next_ack(timeout=timeout)
                except EngineError:
                    pass
            return
        for shard in self._shards:
            shard.wait_checkpoint_idle(timeout=timeout)

    def crash_worker(self, index: int, when: str = "kill") -> None:
        """Test-only fault injection against one shard's worker process.

        * ``"kill"`` -- SIGKILL right now (a crash mid-tick);
        * ``"now"`` -- the worker ``os._exit``\\ s at its next command poll
          (between ticks);
        * ``"at_checkpoint"`` -- the worker dies immediately after handing
          its next checkpoint to the parent, so the death is detected while
          the parent's flush is in flight;
        * ``"mid_drain"`` -- the worker dies right after its next nonempty
          command-ring drain, *before* the tick that would durably log the
          batch (the torn-batch case the recovery tests exercise).

        The next :meth:`run_ticks` involving the shard reports it as failed;
        the other shards keep running, and :meth:`close`/:meth:`crash` still
        reclaim every shared segment.
        """
        if self._backend != "process":
            raise EngineError("crash_worker needs backend='process'")
        handle = self._workers[index]
        if when == "kill":
            handle.kill()
        elif when in ("now", "at_checkpoint", "mid_drain"):
            handle.send(("crash", when))
        else:
            raise EngineError(f"unknown crash mode {when!r}")

    def crash(self) -> None:
        """Fail-stop every shard (writers abandoned, files closed).

        Each shard's crash retires its pool handle (or kills its private
        writer) before closing its files, so no worker can touch a closed
        store; the pool's worker threads are then torn down.  On the process
        backend the workers are SIGKILLed -- the real thing, not a
        simulation -- and every shared segment is unlinked.
        """
        if self._crashed:
            raise EngineError("fleet has crashed; recover it instead")
        self._crashed = True
        if self._backend == "process":
            self._teardown_process_backend(kill=True)
            return
        for shard in self._shards:
            shard.crash()
        if self._pool is not None:
            self._pool.kill()

    def close(self) -> None:
        """Orderly shutdown of every shard, then the shared pool.

        Process backend: each live worker is asked to close its shard's
        files and exit; dead workers are reaped.  All shared-memory
        segments are unlinked either way -- the leak checks in the tests
        and CI diff ``/dev/shm`` across this call.
        """
        if self._crashed:
            return
        if self._backend == "process":
            for handle in self._workers:
                if handle.failed is not None or not handle.process.is_alive():
                    handle.kill()
                    continue
                try:
                    handle.send(("close",))
                    handle.next_ack(timeout=30.0)
                except EngineError:
                    pass
                handle.process.join(timeout=10.0)
            self._teardown_process_backend(kill=False)
            return
        for shard in self._shards:
            shard.close()
        if self._pool is not None:
            self._pool.close(wait=False)

    def __enter__(self) -> "ShardFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def recover(
        cls,
        app_factory: Callable[[int], TickApplication],
        directory: Union[str, os.PathLike],
        num_shards: int,
        seed: int = 0,
        parallel: bool = True,
        max_workers: Optional[int] = None,
        mode=None,
    ) -> List[ShardRecovery]:
        """Recover every shard of a crashed fleet, results in index order.

        ``mode`` selects the recovery strategy (``FLEET_RECOVERY_MODES``):

        * ``"serial"`` -- shards one after another, each with the paper's
          sequential restore-then-replay;
        * ``"parallel"`` -- shards on a thread pool of ``max_workers``
          threads (default: one per shard), each internally sequential;
          restore reads and replays of independent shards overlap, which is
          where recovery time goes at production shard counts;
        * ``"pipelined"`` -- shards on the thread pool *and* each shard
          pipelines its restore read with its log replay;
        * a sequence of per-shard entries (``"serial"``/``"pipelined"``,
          one per shard) -- mixed intra-shard modes on the thread pool;
        * ``None`` (default) -- derived from the legacy ``parallel`` flag.

        Assembly is deterministic in every mode: the returned list is
        indexed by shard, and each shard's recovery is a pure function of
        its own directory, so thread scheduling cannot change any recovered
        state.
        """
        if num_shards <= 0:
            raise EngineError(f"num_shards must be positive, got {num_shards}")
        if mode is None:
            mode = "parallel" if parallel else "serial"
        if isinstance(mode, str):
            if mode not in FLEET_RECOVERY_MODES:
                raise EngineError(
                    f"mode must be one of {FLEET_RECOVERY_MODES}, got {mode!r}"
                )
            threaded = mode != "serial"
            shard_modes = [
                "pipelined" if mode == "pipelined" else "serial"
            ] * num_shards
        else:
            shard_modes = list(mode)
            if len(shard_modes) != num_shards:
                raise EngineError(
                    f"per-shard mode list has {len(shard_modes)} entries "
                    f"for {num_shards} shards"
                )
            for entry in shard_modes:
                if entry not in RECOVERY_MODES:
                    raise EngineError(
                        f"per-shard mode must be one of {RECOVERY_MODES}, "
                        f"got {entry!r}"
                    )
            threaded = True

        def recover_shard(index: int) -> ShardRecovery:
            return MMOShard.recover(
                app_factory(index),
                shard_directory(directory, index),
                seed=seed + index,
                mode=shard_modes[index],
            )

        if not threaded or num_shards == 1:
            return [recover_shard(index) for index in range(num_shards)]
        workers = max_workers if max_workers is not None else num_shards
        workers = max(1, min(workers, num_shards))
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-fleet-recover"
        ) as executor:
            # Executor.map preserves argument order, so the assembly is
            # index-ordered no matter which shard finishes first.
            return list(executor.map(recover_shard, range(num_shards)))
