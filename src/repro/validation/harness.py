"""Figure 6: simulation vs real implementation, side by side.

For each updates-per-tick point the harness runs the threaded real
implementation (Naive-Snapshot and Copy-on-Update) and the analytic simulator
*calibrated with this host's measured parameters* -- exactly how the paper
validates its model ("we calibrated the parameters in the simulation with the
micro-benchmarks described in Section 4.3").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config import HardwareParameters, SimulationConfig, StateGeometry
from repro.simulation.simulator import CheckpointSimulator
from repro.validation.microbench import measure_host_parameters
from repro.validation.realimpl import (
    VALIDATION_GEOMETRY,
    RealCheckpointServer,
    ValidationRunResult,
)
from repro.workloads.zipf import ZipfTrace

#: The two algorithms Section 6 implements for real.
VALIDATED_ALGORITHMS = ("naive-snapshot", "copy-on-update")


@dataclass(frozen=True)
class ValidationComparison:
    """One (algorithm, updates-per-tick) cell of the Figure 6 panels."""

    algorithm_key: str
    algorithm_name: str
    updates_per_tick: int
    simulated_overhead: float
    measured_overhead: float
    simulated_checkpoint: float
    measured_checkpoint: float
    simulated_recovery: float
    measured_recovery: float

    def overhead_ratio(self) -> float:
        """Implementation / simulation overhead (paper observes up to ~3x)."""
        if self.simulated_overhead == 0.0:
            return float("inf")
        return self.measured_overhead / self.simulated_overhead


def run_validation_point(
    updates_per_tick: int,
    hardware: HardwareParameters,
    geometry: StateGeometry = VALIDATION_GEOMETRY,
    num_ticks: int = 90,
    skew: float = 0.8,
    tick_period: float = 0.0,
    seed: int = 0,
    directory: Optional[str] = None,
) -> List[ValidationComparison]:
    """Run both validated algorithms, real and simulated, at one update rate."""
    config = SimulationConfig(hardware=hardware, geometry=geometry)
    simulator = CheckpointSimulator(config)
    trace = ZipfTrace(
        geometry,
        updates_per_tick=updates_per_tick,
        skew=skew,
        num_ticks=num_ticks,
        seed=seed,
    )
    comparisons = []
    for algorithm in VALIDATED_ALGORITHMS:
        simulated = simulator.run(algorithm, trace)
        with RealCheckpointServer(
            algorithm,
            geometry=geometry,
            tick_period=tick_period,
            seed=seed,
            directory=directory,
        ) as server:
            measured: ValidationRunResult = server.run(
                updates_per_tick, num_ticks, skew=skew
            )
        comparisons.append(
            ValidationComparison(
                algorithm_key=algorithm,
                algorithm_name=measured.algorithm_name,
                updates_per_tick=updates_per_tick,
                simulated_overhead=simulated.avg_overhead,
                measured_overhead=measured.avg_overhead,
                simulated_checkpoint=simulated.avg_checkpoint_time,
                measured_checkpoint=measured.avg_checkpoint_time,
                simulated_recovery=simulated.recovery_time,
                measured_recovery=measured.recovery_time,
            )
        )
    return comparisons


def run_validation_sweep(
    updates_per_tick_values: Sequence[int] = (1_000, 4_000, 16_000, 64_000),
    geometry: StateGeometry = VALIDATION_GEOMETRY,
    num_ticks: int = 90,
    hardware: Optional[HardwareParameters] = None,
    quick_calibration: bool = True,
    tick_period: float = 0.0,
    seed: int = 0,
) -> List[ValidationComparison]:
    """The full Figure 6 sweep; measures host parameters once, reuses them."""
    if hardware is None:
        hardware = measure_host_parameters(quick=quick_calibration)
    comparisons: List[ValidationComparison] = []
    for updates_per_tick in updates_per_tick_values:
        comparisons.extend(
            run_validation_point(
                updates_per_tick,
                hardware=hardware,
                geometry=geometry,
                num_ticks=num_ticks,
                tick_period=tick_period,
                seed=seed,
            )
        )
    return comparisons
