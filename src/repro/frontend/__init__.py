"""The connection-server tier of the paper's Figure 1 architecture.

"Clients join the virtual world through a connection server that connects
them to a single shard."  This package models that tier in-process:

* :class:`~repro.frontend.connection.ConnectionServer` -- client sessions,
  command routing into the shard's durable command path, per-session rate
  limiting, and trade routing to the persistence server;
* :class:`~repro.frontend.clients.BotClient` /
  :class:`~repro.frontend.clients.BotSwarm` -- a deterministic client-load
  driver for exercising the full stack in examples and tests.
"""

from repro.frontend.clients import BotClient, BotSwarm
from repro.frontend.connection import ConnectionServer, SessionError

__all__ = ["BotClient", "BotSwarm", "ConnectionServer", "SessionError"]
