"""Validation of the simulation model against a real implementation.

Section 6 of the paper validates the simulator by implementing the two most
relevant methods -- Naive-Snapshot and Copy-on-Update -- for real, with "a
mutator thread and an asynchronous writer thread", and comparing measured
overhead/checkpoint/recovery times against the simulator calibrated with
host micro-benchmarks.  This package does the same in Python:

* :mod:`~repro.validation.microbench` measures this host's Table 3
  parameters (memory bandwidth/latency, lock overhead, bit-op overhead, disk
  bandwidth) the way Section 4.3 describes;
* :class:`~repro.validation.realimpl.RealCheckpointServer` is the threaded
  implementation: the mutator executes query/update/sleep phases at the tick
  rate while the writer flushes consistent checkpoints to a real
  double-backup file;
* :mod:`~repro.validation.harness` sweeps updates-per-tick and reports
  simulation vs implementation side by side (Figure 6).
"""

from repro.validation.harness import (
    ValidationComparison,
    run_validation_point,
    run_validation_sweep,
)
from repro.validation.microbench import measure_host_parameters
from repro.validation.realimpl import RealCheckpointServer, ValidationRunResult

__all__ = [
    "RealCheckpointServer",
    "ValidationComparison",
    "ValidationRunResult",
    "measure_host_parameters",
    "run_validation_point",
    "run_validation_sweep",
]
