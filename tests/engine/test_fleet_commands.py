"""Tests for fleet command ingestion: rings, pipes, queues, torn batches.

The serving path hands each shard one command batch per tick.  These tests
pin the contracts the gateway depends on:

* batched ingestion is tick-equivalent to driving a server directly (the
  commands land in the same ticks, so state and logs match);
* ``ring`` and ``pipe`` transports produce byte-identical durable state;
* a worker that dies *after* draining a batch but *before* the tick that
  would log it loses exactly that batch -- recovery replays the durable
  log only, applying nothing twice and nothing phantom;
* ``try_run_ticks`` isolates one shard's failure while survivors serve.
"""

import multiprocessing
import os

import pytest

from repro.engine.fleet import ShardFleet
from repro.engine.server import DurableGameServer
from repro.errors import BackpressureError, EngineError
from repro.game.knights_archers import KnightsArchersGame
from repro.game.scenario import BattleScenario

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend needs the fork start method",
)

#: Per-tick command script every scripted run follows (commands change
#: state, so equivalence assertions are sensitive to drops/duplicates).
SCRIPT = {
    2: [b"heal:7", b"teleport:3:50:50"],
    5: [b"activate:10", b"heal:1"],
    8: [b"deactivate:20", b"heal:3"],
}
SCRIPT_TICKS = 10


@pytest.fixture
def app_factory():
    return lambda index: KnightsArchersGame(BattleScenario(num_units=256))


def make_fleet(app_factory, directory, num_shards=1, **kwargs):
    kwargs.setdefault("algorithm", "copy-on-update")
    kwargs.setdefault("seed", 9)
    kwargs.setdefault("min_checkpoint_interval_ticks", 3)
    return ShardFleet(app_factory, directory, num_shards, **kwargs)


def drive_scripted(fleet, ticks=SCRIPT_TICKS, transport=None):
    """Submit the script through the fleet's ingestion path, tick by tick."""
    for tick in range(ticks):
        commands = SCRIPT.get(tick, [])
        for index in range(fleet.num_shards):
            if commands:
                accepted = fleet.submit_commands(
                    index, commands, transport=transport
                )
                assert accepted == len(commands)
        fleet.run_ticks(1, checkpoint_barrier=True)


def reference_server(app_factory, directory, seed, ticks, extra=None):
    """A direct-driven twin: same app, same seed, same command schedule."""
    server = DurableGameServer(
        app_factory(0), directory, algorithm="copy-on-update", seed=seed
    )
    schedule = dict(SCRIPT)
    if extra:
        for tick, commands in extra.items():
            schedule[tick] = schedule.get(tick, []) + commands
    for tick in range(ticks):
        for command in schedule.get(tick, []):
            server.submit_command(command)
        server.run_tick()
    return server


def directory_digest(root):
    out = {}
    for dirpath, _, files in os.walk(root):
        for name in sorted(files):
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                out[os.path.relpath(path, root)] = handle.read()
    return out


class TestThreadBackend:
    def test_batched_queue_is_tick_equivalent(self, app_factory, tmp_path):
        fleet = make_fleet(app_factory, tmp_path / "fleet", seed=9)
        drive_scripted(fleet)
        reference = reference_server(
            app_factory, tmp_path / "ref", seed=9, ticks=SCRIPT_TICKS
        )
        assert fleet.shards[0].game.table.equals(reference.table)
        reference.close()
        fleet.close()

    def test_backpressure_and_pending_introspection(
        self, app_factory, tmp_path
    ):
        fleet = make_fleet(app_factory, tmp_path, command_ring_bytes=64)
        assert fleet.command_capacity_bytes == 64
        assert fleet.submit_commands(0, [b"x" * 20] * 4) == 2
        assert fleet.pending_commands(0) == 2
        with pytest.raises(BackpressureError) as excinfo:
            fleet.submit_command(0, b"y" * 20)
        assert excinfo.value.queue == "shard-00"
        assert excinfo.value.capacity == 64
        fleet.run_ticks(1)
        assert fleet.pending_commands(0) == 0
        fleet.close()

    def test_pipe_transport_needs_process_backend(self, app_factory,
                                                  tmp_path):
        fleet = make_fleet(app_factory, tmp_path)
        with pytest.raises(EngineError):
            fleet.submit_commands(0, [b"c"], transport="pipe")
        fleet.close()

    def test_non_bytes_command_rejected(self, app_factory, tmp_path):
        fleet = make_fleet(app_factory, tmp_path)
        with pytest.raises(EngineError):
            fleet.submit_commands(0, ["text"])
        fleet.close()

    def test_try_run_ticks_isolates_crashed_shard(self, app_factory,
                                                  tmp_path):
        fleet = make_fleet(app_factory, tmp_path, num_shards=2)
        fleet.run_ticks(2)
        fleet.shards[0].crash()
        report = fleet.try_run_ticks(3)
        assert not report.ok
        assert report.failed_shards == [0]
        assert isinstance(report.errors[0], EngineError)
        assert report.shard_stats[0] is None
        assert report.shard_stats[1].ticks_run == 5
        assert fleet.dead_shards() == [0]
        with pytest.raises(EngineError):
            fleet.submit_commands(0, [b"c"])
        # run_ticks (the raising surface) surfaces the same failure.
        with pytest.raises(EngineError):
            fleet.run_ticks(1)
        fleet.close()


@needs_fork
class TestProcessBackend:
    def test_ring_ingestion_is_tick_equivalent(self, app_factory, tmp_path):
        fleet = make_fleet(
            app_factory, tmp_path / "fleet", backend="process", seed=9
        )
        drive_scripted(fleet, transport="ring")
        fleet.quiesce()
        fleet.close()
        reference = reference_server(
            app_factory, tmp_path / "ref", seed=9, ticks=SCRIPT_TICKS
        )
        recovery = ShardFleet.recover(
            app_factory, tmp_path / "fleet", num_shards=1, seed=9
        )[0]
        assert recovery.game.table.equals(reference.table)
        reference.close()
        recovery.persistence.close()

    def test_ring_and_pipe_transports_identical(self, app_factory, tmp_path):
        for transport in ("ring", "pipe"):
            fleet = make_fleet(
                app_factory, tmp_path / transport, backend="process", seed=4
            )
            drive_scripted(fleet, transport=transport)
            fleet.quiesce()
            fleet.close()
        assert (directory_digest(tmp_path / "ring")
                == directory_digest(tmp_path / "pipe"))

    def test_ring_commands_survive_crash_once_logged(self, app_factory,
                                                     tmp_path):
        """Commands delivered by ring and ticked are durably logged: a
        SIGKILL afterwards loses nothing."""
        fleet = make_fleet(
            app_factory, tmp_path / "fleet", backend="process", seed=7
        )
        drive_scripted(fleet)
        extra = {SCRIPT_TICKS: [b"heal:11", b"teleport:5:10:10"]}
        fleet.submit_commands(0, extra[SCRIPT_TICKS])
        fleet.run_ticks(1, checkpoint_barrier=True)
        fleet.crash_worker(0, when="kill")
        fleet.crash()

        recovery = ShardFleet.recover(
            app_factory, tmp_path / "fleet", num_shards=1, seed=7
        )[0]
        assert recovery.game.next_tick == SCRIPT_TICKS + 1
        reference = reference_server(
            app_factory, tmp_path / "ref", seed=7,
            ticks=SCRIPT_TICKS + 1, extra=extra,
        )
        assert recovery.game.table.equals(reference.table)
        reference.close()
        recovery.persistence.close()

    def test_mid_drain_crash_loses_batch_not_log(self, app_factory,
                                                 tmp_path):
        """The torn-batch case: the worker dies after draining a batch but
        before the tick that would log it.  The batch is lost (clients get
        shard-down rejections upstream); recovery replays exactly the
        durable log -- no duplicate, no phantom."""
        fleet = make_fleet(
            app_factory, tmp_path / "fleet", backend="process", seed=13
        )
        drive_scripted(fleet)
        fleet.quiesce()
        fleet.crash_worker(0, when="mid_drain")
        fleet.submit_commands(0, [b"heal:2", b"activate:30"])
        report = fleet.try_run_ticks(1)
        assert report.failed_shards == [0]
        assert fleet.dead_shards() == [0]
        fleet.crash()

        recovery = ShardFleet.recover(
            app_factory, tmp_path / "fleet", num_shards=1, seed=13
        )[0]
        # Every durable tick recovered; the doomed batch's tick never
        # became durable, so the recovered world never saw its commands.
        assert recovery.game.next_tick == SCRIPT_TICKS
        reference = reference_server(
            app_factory, tmp_path / "ref", seed=13, ticks=SCRIPT_TICKS
        )
        assert recovery.game.table.equals(reference.table)
        reference.close()
        recovery.persistence.close()

    def test_survivors_serve_through_one_shard_crash(self, app_factory,
                                                     tmp_path):
        fleet = make_fleet(
            app_factory, tmp_path, num_shards=2, backend="process"
        )
        fleet.run_ticks(3)
        fleet.crash_worker(0, when="now")
        report = fleet.try_run_ticks(3)
        assert report.failed_shards == [0]
        assert report.shard_stats[1].ticks_run == 6
        # The survivor keeps accepting and applying commands.
        assert fleet.submit_commands(1, [b"heal:6"]) == 1
        follow_up = fleet.try_run_ticks(1)
        assert follow_up.errors[1] is None
        assert fleet.pending_commands(1) == 0
        assert fleet.dead_shards() == [0]
        fleet.close()
