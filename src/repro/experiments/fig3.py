"""Figure 3: latency analysis -- tick lengths at 64,000 updates per tick.

The paper plots the stretched tick length for ticks 55-110 of the simulation
and a "latency limit" line at half a tick (16.7 ms at 30 Hz): eager-copy
methods spike to ~50 ms (a 17 ms pause on top of the 33 ms tick) while
copy-on-update methods decay from a 12 ms first-tick peak.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.analysis.ascii_chart import line_chart
from repro.analysis.tables import TextTable
from repro.config import PAPER_CONFIG, SimulationConfig
from repro.experiments.common import (
    DEFAULT_SKEW,
    DEFAULT_UPDATES_PER_TICK,
    ExperimentScale,
    FigureResult,
    FULL_SCALE,
)
from repro.simulation.simulator import CheckpointSimulator, PrecomputedObjectTrace
from repro.workloads.zipf import ZipfTrace

#: The tick window the paper plots.
WINDOW_START = 55
WINDOW_STOP = 110


def run(
    scale: ExperimentScale = FULL_SCALE,
    config: SimulationConfig = PAPER_CONFIG,
    seed: int = 0,
) -> FigureResult:
    """Reproduce Figure 3 (per-tick latency timeline)."""
    num_ticks = max(scale.num_ticks, WINDOW_STOP + 10)
    config = replace(config, warmup_ticks=scale.warmup_ticks)
    simulator = CheckpointSimulator(config)
    trace = PrecomputedObjectTrace(
        ZipfTrace(
            config.geometry,
            updates_per_tick=DEFAULT_UPDATES_PER_TICK,
            skew=DEFAULT_SKEW,
            num_ticks=num_ticks,
            seed=seed,
        )
    )
    results = simulator.run_all(trace)
    limit = config.hardware.latency_limit
    base = config.hardware.tick_duration

    table = TextTable(
        "Figure 3: tick-length peaks, 10M objects, 64K updates per tick",
        [
            "algorithm",
            "max tick [ms]",
            "peak pause [ms]",
            "p50 ovh [ms]",
            "p99 ovh [ms]",
            "peak/median",
            "ticks > limit",
            "violates half-tick limit",
        ],
    )
    series = {}
    window = slice(WINDOW_START, WINDOW_STOP)
    for result in results:
        lengths = result.tick_length
        over = int((result.tick_overhead > limit).sum())
        concentration = result.overhead_concentration()
        table.add_row(
            [
                result.algorithm_name,
                f"{lengths.max() * 1e3:.1f}",
                f"{result.max_overhead * 1e3:.1f}",
                f"{result.overhead_percentile(50) * 1e3:.2f}",
                f"{result.overhead_percentile(99) * 1e3:.2f}",
                "inf" if concentration == float("inf")
                else f"{concentration:.1f}x",
                over,
                "yes" if result.exceeds_latency_limit() else "no",
            ]
        )
        series[result.algorithm_name] = lengths[window] * 1e3
    table.add_note(
        f"latency limit = half a tick = {limit * 1e3:.1f} ms on top of the "
        f"{base * 1e3:.1f} ms tick"
    )
    table.add_note(
        "paper: eager-copy methods stretch ticks by ~17 ms (to ~50 ms) and "
        "violate the limit; copy-on-update methods peak at 12 ms on the "
        "first tick after a checkpoint, then 7 ms, 4 ms, ..."
    )

    ticks = list(range(WINDOW_START, WINDOW_STOP))
    chart = line_chart(
        ticks,
        {name: list(values) for name, values in series.items()},
        log_y=False,
        title=(
            f"Figure 3: tick length [ms], ticks {WINDOW_START}-{WINDOW_STOP} "
            f"(base {base * 1e3:.1f} ms, limit at {(base + limit) * 1e3:.1f} ms)"
        ),
        y_label="ms",
    )

    cou_peaks: List[float] = []
    for result in results:
        if result.algorithm_key == "copy-on-update":
            # Overheads of the first ticks after each checkpoint start.
            for record in result.checkpoints[1:4]:
                start = record.start_tick + 1
                cou_peaks.extend(
                    result.tick_overhead[start: start + 3] * 1e3
                )
    figure = FigureResult(
        experiment_id="fig3",
        description="Latency analysis at 64,000 updates per tick",
        tables=[table],
        charts=[chart],
        raw={
            "per_tick_ms": {name: list(map(float, v)) for name, v in series.items()},
            "cou_decay_ms": [float(v) for v in cou_peaks],
            "results": {r.algorithm_key: r.summary() for r in results},
        },
    )
    return figure
