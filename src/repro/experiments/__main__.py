"""``python -m repro.experiments`` delegates to the runner CLI."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
