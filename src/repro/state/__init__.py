"""Game-state substrate: the cell table and dirty-tracking structures.

This package provides the in-memory representation of the virtual world that
every checkpointing algorithm operates on:

* :class:`~repro.state.table.GameStateTable` -- a rows x columns table of
  fixed-size cells backed by a contiguous numpy buffer, sliceable into
  512-byte atomic objects.
* :class:`~repro.state.shared.SharedArena` /
  :class:`~repro.state.shared.SharedGameStateTable` -- the same table placed
  in a shared-memory segment so the process-backed fleet's parent can read a
  worker's live state (and checkpoint staging) without copies.
* :class:`~repro.state.ring.SharedCommandRing` -- a single-producer
  single-consumer length-prefixed byte ring over arena slots, the batched
  command transport between the serving gateway and a shard worker.
* :class:`~repro.state.dirty.PolarityBitmap` -- a per-object bitmap whose
  interpretation can be inverted in O(1), the trick the paper borrows from
  Pu [24] to avoid resetting every bit between checkpoints.
* :class:`~repro.state.dirty.EpochSet` -- an O(1)-resettable "touched this
  checkpoint" set based on epoch stamps.
* :class:`~repro.state.dirty.DoubleBackupBits` -- the two-bits-per-object
  structure of Salem and Garcia-Molina's double-backup organization.
"""

from repro.state.dirty import (
    DoubleBackupBits,
    EpochSet,
    PolarityBitmap,
    RegionResidency,
)
from repro.state.ring import SharedCommandRing, ring_slots
from repro.state.shared import (
    SharedArena,
    SharedGameStateTable,
    reap_stale_segments,
    segment_directory,
)
from repro.state.table import GameStateTable

__all__ = [
    "DoubleBackupBits",
    "EpochSet",
    "GameStateTable",
    "PolarityBitmap",
    "RegionResidency",
    "SharedArena",
    "SharedCommandRing",
    "SharedGameStateTable",
    "reap_stale_segments",
    "ring_slots",
    "segment_directory",
]
