"""Battle scenario configuration for the Knights and Archers game."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import StateGeometry
from repro.errors import GameError
from repro.game.columns import NUM_COLUMNS


@dataclass(frozen=True)
class BattleScenario:
    """Tunable parameters of one medieval battle.

    The defaults reproduce the paper's active-set statistics: 10% of units
    active, with the active set "completely renewed every 100 ticks with high
    probability" (4.5% of the active set swapped per tick gives a ~1% chance
    of surviving 100 ticks).  ``num_units`` defaults to a Python-friendly
    8,192; pass 400,128 for the paper's full-scale trace geometry
    (:data:`repro.config.GAME_GEOMETRY`).
    """

    num_units: int = 8_192
    #: Fraction of units logged in (acting) at any moment.
    active_fraction: float = 0.10
    #: Fraction of the active set swapped out each tick.
    swap_fraction: float = 0.045
    #: Class mix (knights, archers, healers); must sum to 1.
    knight_fraction: float = 0.5
    archer_fraction: float = 0.3
    #: Combat tuning.
    max_health: float = 100.0
    knight_damage: float = 9.0
    archer_damage: float = 5.0
    heal_amount: float = 7.0
    attack_cooldown_ticks: int = 6
    #: Movement tuning (distance units per tick).
    knight_speed: float = 2.0
    archer_speed: float = 2.4
    healer_speed: float = 2.2
    #: Interaction radii.
    melee_range: float = 3.0
    arrow_range: float = 18.0
    kite_range: float = 8.0
    heal_range: float = 14.0
    aggro_range: float = 60.0
    #: How many random candidates a unit samples when choosing a target/ally.
    candidate_samples: int = 4
    #: Pull toward the sampled ally centroid ("cluster with allies").
    squad_cohesion: float = 0.25

    def __post_init__(self) -> None:
        if self.num_units < 2:
            raise GameError(f"need at least 2 units, got {self.num_units}")
        if not 0.0 < self.active_fraction <= 1.0:
            raise GameError(
                f"active_fraction must be in (0, 1], got {self.active_fraction}"
            )
        if not 0.0 <= self.swap_fraction <= 1.0:
            raise GameError(
                f"swap_fraction must be in [0, 1], got {self.swap_fraction}"
            )
        if self.knight_fraction + self.archer_fraction > 1.0:
            raise GameError("class fractions exceed 1")
        if self.max_health <= 0:
            raise GameError(f"max_health must be positive, got {self.max_health}")

    @property
    def healer_fraction(self) -> float:
        """Fraction of units that are healers (the remainder of the mix)."""
        return 1.0 - self.knight_fraction - self.archer_fraction

    @property
    def arena_size(self) -> float:
        """Side length of the square battlefield, scaled to unit density."""
        return max(100.0, 4.0 * math.sqrt(float(self.num_units)))

    @property
    def geometry(self) -> StateGeometry:
        """State-table geometry for this scenario (num_units x 13)."""
        return StateGeometry(rows=self.num_units, columns=NUM_COLUMNS)

    def base_position(self, team: int) -> tuple:
        """Home-base coordinates for ``team`` (0 or 1)."""
        if team not in (0, 1):
            raise GameError(f"team must be 0 or 1, got {team}")
        size = self.arena_size
        corner = 0.18 * size if team == 0 else 0.82 * size
        return (corner, corner)


#: The paper's full-scale trace shape: 400,128 units x 13 attributes.
PAPER_SCALE_SCENARIO = BattleScenario(num_units=400_128)
