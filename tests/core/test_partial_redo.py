"""Behavioural tests for Partial-Redo."""

import numpy as np

from repro.core.algorithms import PartialRedo
from repro.core.plan import DiskLayout


class TestPartialRedo:
    def test_classification(self):
        assert PartialRedo.eager_copy
        assert PartialRedo.copies_dirty_only
        assert PartialRedo.layout is DiskLayout.LOG

    def test_writes_dirty_objects_to_log(self):
        policy = PartialRedo(16, full_dump_period=100)
        policy.begin_checkpoint()   # cold start: everything
        policy.finish_checkpoint()
        policy.handle_updates(np.array([4]), 1)
        plan = policy.begin_checkpoint()
        assert plan.write_ids.tolist() == [4]
        assert plan.eager_copy_ids.tolist() == [4]
        assert not plan.is_full_dump

    def test_full_dump_every_c_checkpoints(self):
        policy = PartialRedo(16, full_dump_period=3)
        dumps = []
        for _ in range(9):
            plan = policy.begin_checkpoint()
            dumps.append(plan.is_full_dump)
            policy.finish_checkpoint()
        assert dumps == [False, False, True] * 3

    def test_full_dump_uses_dribble_semantics(self):
        """No eager copy during the full dump; old values saved on update."""
        policy = PartialRedo(16, full_dump_period=1)
        plan = policy.begin_checkpoint()
        assert plan.is_full_dump
        assert plan.eager_copy_ids.size == 0
        assert plan.writes_everything()
        effects = policy.handle_updates(np.array([3]), 1)
        assert effects.copy_ids.tolist() == [3]
        assert effects.lock_count == 1

    def test_partial_checkpoints_do_not_copy_on_update(self):
        policy = PartialRedo(16, full_dump_period=100)
        policy.begin_checkpoint()
        policy.finish_checkpoint()
        policy.handle_updates(np.array([4]), 1)
        policy.begin_checkpoint()
        effects = policy.handle_updates(np.array([5]), 1)
        assert effects.copy_count == 0
        assert effects.lock_count == 0
        assert effects.bit_tests == 1

    def test_updates_during_full_dump_stay_dirty(self):
        policy = PartialRedo(16, full_dump_period=2)
        policy.begin_checkpoint()            # partial (cold: everything)
        policy.finish_checkpoint()
        plan = policy.begin_checkpoint()     # full dump (index 1, C=2)
        assert plan.is_full_dump
        policy.handle_updates(np.array([9]), 1)
        policy.finish_checkpoint()
        plan = policy.begin_checkpoint()     # partial again
        assert plan.write_ids.tolist() == [9]

    def test_dirty_set_cleared_after_checkpoint(self):
        policy = PartialRedo(16, full_dump_period=100)
        policy.begin_checkpoint()
        policy.finish_checkpoint()
        policy.handle_updates(np.array([2]), 1)
        policy.begin_checkpoint()
        policy.finish_checkpoint()
        plan = policy.begin_checkpoint()
        assert plan.write_ids.size == 0
