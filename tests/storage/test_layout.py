"""Tests for on-disk framing (headers, records, CRCs)."""

import pytest

from repro.config import StateGeometry
from repro.errors import CorruptCheckpointError
from repro.storage import layout


@pytest.fixture
def geometry():
    return StateGeometry(rows=8, columns=8)


class TestGeometryStamp:
    def test_round_trip(self, geometry):
        packed = layout.pack_geometry(geometry)
        assert len(packed) == layout.GEOMETRY_BYTES
        assert layout.unpack_geometry(packed) == geometry


class TestBackupHeader:
    def test_round_trip(self, geometry):
        header = layout.BackupHeader(
            state=layout.STATE_COMPLETE, epoch=7, tick=123, geometry=geometry
        )
        restored = layout.BackupHeader.unpack(header.pack())
        assert restored == header

    def test_fixed_size(self, geometry):
        header = layout.BackupHeader(
            state=layout.STATE_EMPTY, epoch=0, tick=-1, geometry=geometry
        )
        assert len(header.pack()) == layout.BACKUP_HEADER_BYTES

    def test_bad_magic_rejected(self, geometry):
        packed = bytearray(
            layout.BackupHeader(
                state=layout.STATE_EMPTY, epoch=0, tick=-1, geometry=geometry
            ).pack()
        )
        packed[0] = ord(b"X")
        with pytest.raises(CorruptCheckpointError):
            layout.BackupHeader.unpack(bytes(packed))

    def test_corrupt_payload_rejected(self, geometry):
        packed = bytearray(
            layout.BackupHeader(
                state=layout.STATE_COMPLETE, epoch=3, tick=9, geometry=geometry
            ).pack()
        )
        packed[10] ^= 0xFF  # flip a bit inside the CRC-protected region
        with pytest.raises(CorruptCheckpointError):
            layout.BackupHeader.unpack(bytes(packed))

    def test_truncated_rejected(self):
        with pytest.raises(CorruptCheckpointError):
            layout.BackupHeader.unpack(b"\x00" * 4)


class TestRecords:
    def test_round_trip(self):
        payload = b"hello world"
        record = layout.pack_record(layout.RECORD_OBJECTS, 5, 11, payload)
        header = record[: layout.RECORD_HEADER_BYTES]
        record_type, a, b, length, checksum = layout.unpack_record_header(header)
        assert (record_type, a, b, length) == (layout.RECORD_OBJECTS, 5, 11, 11)
        body = record[layout.RECORD_HEADER_BYTES:]
        assert body == payload
        assert layout.verify_record(header, body, checksum)

    def test_tampered_payload_fails_verification(self):
        record = layout.pack_record(layout.RECORD_TICK, 1, 0, b"abcdef")
        header = record[: layout.RECORD_HEADER_BYTES]
        _, _, _, _, checksum = layout.unpack_record_header(header)
        assert not layout.verify_record(header, b"abcdeX", checksum)

    def test_bad_magic_raises(self):
        with pytest.raises(CorruptCheckpointError):
            layout.unpack_record_header(b"X" * layout.RECORD_HEADER_BYTES)

    def test_empty_payload(self):
        record = layout.pack_record(layout.RECORD_CHECKPOINT_COMMIT, 2, 40, b"")
        header = record[: layout.RECORD_HEADER_BYTES]
        record_type, a, b, length, checksum = layout.unpack_record_header(header)
        assert length == 0
        assert layout.verify_record(header, b"", checksum)


class TestGatheredWrites:
    def test_pwritev_all_lands_scattered_buffers(self, tmp_path):
        """Many small iovec entries (past IOV_MAX) land back-to-back."""
        import os

        buffers = [bytes([index % 251]) * 3 for index in range(1500)]
        path = tmp_path / "gathered"
        fd = os.open(path, os.O_CREAT | os.O_RDWR)
        try:
            written = layout.pwritev_all(fd, buffers, 7)
        finally:
            os.close(fd)
        expected = b"".join(buffers)
        assert written == len(expected)
        assert path.read_bytes() == b"\x00" * 7 + expected

    def test_pwritev_all_empty(self, tmp_path):
        import os

        path = tmp_path / "empty"
        fd = os.open(path, os.O_CREAT | os.O_RDWR)
        try:
            assert layout.pwritev_all(fd, [], 0) == 0
        finally:
            os.close(fd)
