"""Quantifying the paper's rejected alternatives (Sections 3.1 and 7).

Two tables:

* **physical logging** -- bandwidth an ARIES/fuzzy-checkpoint physical log
  would need at each update rate, against the 60 MB/s recovery disk ("the
  rate of local updates may be extremely large, and physically logging this
  stream could easily exhaust the available disk bandwidth");
* **K-safety vs checkpoint recovery** -- utilization and yearly downtime,
  showing why the paper "follow[s] instead a checkpoint recovery model,
  which increases utilization at a potential increase in recovery time".
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.tables import TextTable
from repro.config import PAPER_CONFIG
from repro.experiments.common import (
    DEFAULT_SKEW,
    ExperimentScale,
    FigureResult,
    FULL_SCALE,
)
from repro.simulation.alternatives import (
    assess_checkpoint_recovery,
    assess_k_safety,
    assess_physical_logging,
)
from repro.simulation.simulator import CheckpointSimulator, PrecomputedObjectTrace
from repro.units import format_rate
from repro.workloads.zipf import ZipfTrace

#: Fail-stop crashes per server-year; Schroeder & Gibson observe a wide
#: range, the paper argues "there is more than adequate room" -- we take a
#: pessimistic dozen.
CRASHES_PER_YEAR = 12.0


def run(scale: ExperimentScale = FULL_SCALE, seed: int = 0) -> FigureResult:
    """Run the alternatives study at the configured scale."""
    hardware = PAPER_CONFIG.hardware
    geometry = PAPER_CONFIG.geometry

    logging_table = TextTable(
        "Physical logging (ARIES / fuzzy checkpointing) bandwidth demand",
        ["updates/tick", "updates/s", "log bandwidth needed",
         "fraction of 60 MB/s disk", "feasible"],
    )
    logging_raw = {}
    for updates_per_tick in scale.updates_sweep:
        assessment = assess_physical_logging(
            updates_per_tick, hardware, geometry
        )
        logging_table.add_row(
            [
                f"{updates_per_tick:,}",
                f"{assessment.updates_per_second:,.0f}",
                format_rate(assessment.bytes_per_second_required),
                f"{assessment.bandwidth_fraction:.2f}x",
                "yes" if assessment.feasible else "NO",
            ]
        )
        logging_raw[updates_per_tick] = {
            "fraction": assessment.bandwidth_fraction,
            "feasible": assessment.feasible,
        }
    logging_table.add_note(
        "cheapest possible physical log: 4 B cell payload + 16 B framing "
        "per update; ARIES also logs before-images and the checkpointer "
        "still needs the same disk"
    )

    # Measured recovery time and overhead of the recommended method feed the
    # availability comparison.
    config = replace(PAPER_CONFIG, warmup_ticks=scale.warmup_ticks)
    simulator = CheckpointSimulator(config)
    trace = PrecomputedObjectTrace(
        ZipfTrace(
            geometry,
            updates_per_tick=64_000,
            skew=DEFAULT_SKEW,
            num_ticks=scale.num_ticks,
            seed=seed,
        )
    )
    cou = simulator.run("copy-on-update", trace)
    overhead_fraction = cou.avg_overhead / hardware.tick_duration

    availability_table = TextTable(
        "Checkpoint recovery vs K-safe replication "
        f"({CRASHES_PER_YEAR:.0f} fail-stop crashes/server-year)",
        ["strategy", "hardware utilization", "recovery per crash",
         "downtime/year", "meets 99.99%"],
    )
    strategies = [
        assess_checkpoint_recovery(
            recovery_seconds=cou.recovery_time,
            crashes_per_year=CRASHES_PER_YEAR,
            overhead_fraction=overhead_fraction,
        ),
        assess_k_safety(2, CRASHES_PER_YEAR),
        assess_k_safety(3, CRASHES_PER_YEAR),
    ]
    availability_raw = {}
    for assessment in strategies:
        availability_table.add_row(
            [
                assessment.strategy,
                f"{assessment.utilization:.1%}",
                f"{assessment.recovery_seconds:.2f} s",
                f"{assessment.downtime_seconds_per_year:.1f} s",
                "yes" if assessment.meets_four_nines() else "NO",
            ]
        )
        availability_raw[assessment.strategy] = {
            "utilization": assessment.utilization,
            "downtime": assessment.downtime_seconds_per_year,
            "four_nines": assessment.meets_four_nines(),
        }
    availability_table.add_note(
        "Copy-on-Update's measured recovery time and per-tick overhead at "
        "64,000 updates/tick; K-safety numbers assume 1 s failover and "
        "charge only redundancy.  Both strategies clear the paper's 99.99% "
        "bar -- checkpoint recovery does it at ~100% utilization, which is "
        "the paper's argument for it."
    )

    return FigureResult(
        experiment_id="alternatives",
        description=(
            "Why the paper rejects physical logging and defers K-safety "
            "(Sections 3.1 and 7), quantified with the Table 3 constants"
        ),
        tables=[logging_table, availability_table],
        raw={"logging": logging_raw, "availability": availability_raw},
    )
