"""Tests for the real threaded implementation of NS and COU."""

import pytest

from repro.config import StateGeometry
from repro.errors import ValidationError
from repro.storage.double_backup import DoubleBackupStore
from repro.validation.realimpl import RealCheckpointServer

#: Tiny geometry so each test runs in well under a second.
TEST_GEOMETRY = StateGeometry(rows=4_096, columns=8)


class TestConstruction:
    def test_unsupported_algorithm_rejected(self):
        with pytest.raises(ValidationError):
            RealCheckpointServer("partial-redo")

    def test_context_manager_cleans_up(self, tmp_path):
        with RealCheckpointServer(
            "naive-snapshot", geometry=TEST_GEOMETRY, directory=tmp_path
        ) as server:
            server.run(updates_per_tick=100, num_ticks=5)
        # Directory was caller-provided, so files stay for inspection.
        assert (tmp_path / "backup0.db").exists()


@pytest.mark.parametrize("algorithm", ["naive-snapshot", "copy-on-update"])
class TestRuns:
    def test_run_produces_measurements(self, algorithm, tmp_path):
        with RealCheckpointServer(
            algorithm, geometry=TEST_GEOMETRY, directory=tmp_path
        ) as server:
            result = server.run(updates_per_tick=500, num_ticks=30)
        assert result.ticks == 30
        assert result.tick_overhead.shape == (30,)
        assert (result.tick_overhead >= 0).all()
        assert result.checkpoint_durations, "no checkpoint completed"
        assert result.avg_checkpoint_time > 0
        assert result.restore_seconds > 0
        assert result.recovery_time >= result.restore_seconds

    def test_checkpoint_on_disk_is_consistent(self, algorithm, tmp_path):
        with RealCheckpointServer(
            algorithm, geometry=TEST_GEOMETRY, directory=tmp_path
        ) as server:
            server.run(updates_per_tick=500, num_ticks=30)
        with DoubleBackupStore(tmp_path, TEST_GEOMETRY) as store:
            found = store.latest_consistent()
            image = store.read_image(found.backup_index)
            assert len(image) == TEST_GEOMETRY.checkpoint_bytes

    def test_summary_keys(self, algorithm, tmp_path):
        with RealCheckpointServer(
            algorithm, geometry=TEST_GEOMETRY, directory=tmp_path
        ) as server:
            result = server.run(updates_per_tick=200, num_ticks=10)
        summary = result.summary()
        for key in ("algorithm", "avg_overhead_s", "avg_checkpoint_s",
                    "recovery_s", "checkpoints_completed"):
            assert key in summary


class TestCutConsistency:
    """The threaded writer must emit exactly the cut state despite racing
    the mutator -- the core claim of the Section 3 COW protocol."""

    @pytest.mark.parametrize("algorithm", ["naive-snapshot", "copy-on-update"])
    def test_disk_image_matches_cut(self, algorithm, tmp_path):
        with RealCheckpointServer(
            algorithm,
            geometry=TEST_GEOMETRY,
            directory=tmp_path,
            verify_consistency=True,
            num_stripes=4,          # coarse stripes stress lock contention
            writer_chunk_objects=16,  # many small writer rounds
        ) as server:
            server.run(updates_per_tick=3_000, num_ticks=40)
            assert server.verify_last_checkpoint()

    def test_verify_requires_flag(self, tmp_path):
        with RealCheckpointServer(
            "copy-on-update", geometry=TEST_GEOMETRY, directory=tmp_path
        ) as server:
            server.run(updates_per_tick=100, num_ticks=5)
            from repro.errors import ValidationError

            with pytest.raises(ValidationError):
                server.verify_last_checkpoint()


class TestCopyOnUpdateSemantics:
    def test_cou_overhead_scales_with_updates(self, tmp_path):
        small_dir = tmp_path / "small"
        large_dir = tmp_path / "large"
        with RealCheckpointServer(
            "copy-on-update", geometry=TEST_GEOMETRY, directory=small_dir
        ) as server:
            small = server.run(updates_per_tick=50, num_ticks=25)
        with RealCheckpointServer(
            "copy-on-update", geometry=TEST_GEOMETRY, directory=large_dir
        ) as server:
            large = server.run(updates_per_tick=5_000, num_ticks=25)
        assert large.avg_overhead > small.avg_overhead

    def test_tick_period_respected(self, tmp_path):
        import time

        period = 0.005
        with RealCheckpointServer(
            "naive-snapshot", geometry=TEST_GEOMETRY, directory=tmp_path,
            tick_period=period, query_reads=0,
        ) as server:
            started = time.perf_counter()
            server.run(updates_per_tick=10, num_ticks=20)
            elapsed = time.perf_counter() - started
        assert elapsed >= 20 * period * 0.9


class TestWriterFaults:
    def test_store_fault_surfaces_as_validation_error(self, tmp_path):
        """A writer-thread store failure must not vanish: satellite of the
        silent ``writer.join(timeout=...)`` bug -- the run now raises with
        the pending writer error attached."""
        from repro.errors import StorageError

        with pytest.raises(ValidationError) as excinfo:
            with RealCheckpointServer(
                "naive-snapshot", geometry=TEST_GEOMETRY, directory=tmp_path
            ) as server:

                def explode():
                    raise StorageError("injected writer fault")

                server._store.write_fault_hook = explode
                server.run(updates_per_tick=100, num_ticks=60)
        assert "injected writer fault" in str(excinfo.value)
