"""Trace characterization -- the numbers behind Table 5.

:class:`TraceStatistics` summarizes an update trace the way the paper
summarizes the prototype-game trace: number of units and attributes, tick
count, and the average number of updates per tick -- plus a few extras that
the analysis sections reason about informally (unique rows touched, unique
atomic objects touched per tick, per-column update distribution).

:meth:`TraceStatistics.from_trace` consumes a full cell-level trace, which
only a fresh generator can replay.  Callers that already hold a
:class:`~repro.workloads.reduced.PrecomputedObjectTrace` (e.g. Figure 5)
should read ``total_updates`` / ``avg_updates_per_tick`` /
``avg_unique_objects_per_tick`` straight off the reduction instead of
re-iterating the trace -- the reduction carries the per-tick update counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.config import StateGeometry
from repro.workloads.base import UpdateTrace


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of one update trace."""

    geometry: StateGeometry
    num_ticks: int
    total_updates: int
    avg_updates_per_tick: float
    max_updates_per_tick: int
    min_updates_per_tick: int
    unique_cells: int
    unique_rows: int
    avg_unique_objects_per_tick: float
    column_update_counts: Tuple[int, ...]

    @classmethod
    def from_trace(cls, trace: UpdateTrace) -> "TraceStatistics":
        """Scan ``trace`` once and compute all statistics."""
        geometry = trace.geometry
        per_tick_counts = []
        per_tick_unique_objects = []
        cell_seen = np.zeros(geometry.num_cells, dtype=bool)
        column_counts = np.zeros(geometry.columns, dtype=np.int64)
        for cells in trace.ticks():
            per_tick_counts.append(cells.size)
            objects = np.unique(geometry.object_of_cell(cells))
            per_tick_unique_objects.append(objects.size)
            cell_seen[cells] = True
            columns = cells % geometry.columns
            column_counts += np.bincount(columns, minlength=geometry.columns)
        counts = np.asarray(per_tick_counts, dtype=np.int64)
        row_seen = cell_seen.reshape(geometry.rows, geometry.columns).any(axis=1)
        return cls(
            geometry=geometry,
            num_ticks=len(per_tick_counts),
            total_updates=int(counts.sum()) if counts.size else 0,
            avg_updates_per_tick=float(counts.mean()) if counts.size else 0.0,
            max_updates_per_tick=int(counts.max()) if counts.size else 0,
            min_updates_per_tick=int(counts.min()) if counts.size else 0,
            unique_cells=int(cell_seen.sum()),
            unique_rows=int(row_seen.sum()),
            avg_unique_objects_per_tick=(
                float(np.mean(per_tick_unique_objects))
                if per_tick_unique_objects
                else 0.0
            ),
            column_update_counts=tuple(int(c) for c in column_counts),
        )

    def render_table5(self) -> str:
        """Render the Table 5 rows for this trace."""
        lines = [
            "parameter                        setting",
            "-------------------------------  ----------",
            f"number of units                  {self.geometry.rows:,}",
            f"number of attributes per unit    {self.geometry.columns}",
            f"number of ticks                  {self.num_ticks:,}",
            f"avg. number of updates per tick  {self.avg_updates_per_tick:,.0f}",
        ]
        return "\n".join(lines)

    def describe(self) -> str:
        """Multi-line description including the extended statistics."""
        column_parts = ", ".join(
            f"c{i}={count:,}" for i, count in enumerate(self.column_update_counts)
        )
        return "\n".join(
            [
                self.render_table5(),
                f"total updates                    {self.total_updates:,}",
                f"unique rows touched              {self.unique_rows:,}",
                f"unique cells touched             {self.unique_cells:,}",
                "avg. unique atomic objects/tick  "
                f"{self.avg_unique_objects_per_tick:,.0f}",
                f"updates by column                {column_parts}",
            ]
        )
