"""Crash recovery: restore the newest checkpoint, replay the logical log.

"In the event of a crash, the game state can be reconstructed by reading the
most recent checkpoint and replaying the logical log." (Section 1.)

:class:`RecoveryManager` implements both restore paths:

* **double backup** -- read the full data region of the backup whose header
  carries the newest ``COMPLETE`` epoch;
* **checkpoint log** -- reconstruct the image from the newest committed
  checkpoint (bounded by the last full dump).

Replay then re-runs the deterministic application for every logged tick after
the checkpoint's cut, restoring the recorded random-generator state before
each tick.  If no checkpoint ever committed, recovery falls back to
re-initializing from the server's seed and replaying the whole log.

Two modes are offered.  ``serial`` is the paper's model
(``dT_restore + dT_replay``): the whole image is read before the first tick
replays.  ``pipelined`` overlaps the two phases *within* one shard: a reader
thread streams checkpoint regions (ascending object-id order, see
:class:`~repro.storage.double_backup.StreamingRestore`) through a bounded
queue while the main thread installs them and replays each logged tick as
soon as the objects it touches are resident
(:class:`~repro.state.dirty.RegionResidency` watermark), stalling only on a
true read-before-restore dependency.  Applications that can predict a tick's
object scope from the logged rng state and commands alone override
:meth:`~repro.engine.app.TickApplication.tick_object_scope`; the default
(None = unknown) waits for full residency per tick but still overlaps the
restore read with queue drains.  Both modes produce byte-identical tables.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from queue import Empty, Full, Queue
from typing import Optional, Tuple, Union

import numpy as np

from repro.engine.app import TickApplication
from repro.obs.metrics import global_registry
from repro.obs.trace import get_tracer
from repro.errors import (
    ConfigurationError,
    NoConsistentCheckpointError,
    RecoveryError,
)
from repro.state.dirty import RegionResidency
from repro.state.table import GameStateTable
from repro.storage.action_log import ActionLog
from repro.storage.checkpoint_log import CheckpointLogStore
from repro.storage.double_backup import DoubleBackupStore

#: Intra-shard recovery modes of :class:`RecoveryManager`.
RECOVERY_MODES = ("serial", "pipelined")

#: Bounded restore-queue depth (regions) between reader and replay threads.
DEFAULT_QUEUE_REGIONS = 8


@dataclass(frozen=True)
class RecoveryReport:
    """What recovery did and what it produced."""

    table: GameStateTable
    rng: np.random.Generator
    #: Next tick the recovered server would execute (= crash-time next tick).
    next_tick: int
    #: Cut tick of the restored checkpoint (-1 when none was found).
    checkpoint_tick: int
    #: Epoch of the restored checkpoint (0 when none was found).
    checkpoint_epoch: int
    ticks_replayed: int
    used_seed_fallback: bool
    #: Measured wall time until the checkpoint image was fully resident
    #: (dT_restore).  Under ``pipelined`` this includes replay work that ran
    #: concurrently; see :attr:`replay_overlap_seconds`.
    restore_seconds: float = 0.0
    #: Measured wall time re-running logged ticks *after* the image was fully
    #: resident (dT_replay); restore + replay is always the true wall clock.
    replay_seconds: float = 0.0
    #: Recovery mode that produced this report.
    mode: str = "serial"
    #: Checkpoint image bytes installed into the table.
    bytes_restored: int = 0
    #: Replay compute that ran while the restore read was still in flight --
    #: the time pipelining hid (0 under ``serial``).
    replay_overlap_seconds: float = 0.0
    #: Ticks whose replay blocked on a not-yet-resident region.
    stall_count: int = 0

    @property
    def recovery_seconds(self) -> float:
        """Total measured recovery time: restore + replay."""
        return self.restore_seconds + self.replay_seconds


class RecoveryManager:
    """Rebuilds a crashed :class:`~repro.engine.server.DurableGameServer`."""

    def __init__(
        self,
        app: TickApplication,
        directory: Union[str, os.PathLike],
        seed: int = 0,
        mode: str = "serial",
        region_objects: Optional[int] = None,
        queue_regions: int = DEFAULT_QUEUE_REGIONS,
    ) -> None:
        if mode not in RECOVERY_MODES:
            raise ConfigurationError(
                f"mode must be one of {RECOVERY_MODES}, got {mode!r}"
            )
        if queue_regions <= 0:
            raise ConfigurationError(
                f"queue_regions must be positive, got {queue_regions}"
            )
        self._app = app
        self._directory = os.fspath(directory)
        self._seed = seed
        self._mode = mode
        self._region_objects = region_objects
        self._queue_regions = queue_regions

    def recover(self) -> RecoveryReport:
        """Restore the checkpoint and replay the log; returns the live state."""
        with get_tracer().span("recover", mode=self._mode):
            if self._mode == "pipelined":
                report = self._recover_pipelined()
            else:
                report = self._recover_serial()
        self._publish(report)
        return report

    @staticmethod
    def _publish(report: RecoveryReport) -> None:
        """Publish the report's outcome to the process-global metrics row."""
        row = global_registry()
        row.counter("recoveries_completed").inc()
        row.counter("recovery_stalls").inc(report.stall_count)
        row.counter("recovery_bytes_restored").inc(report.bytes_restored)
        row.counter("recovery_replay_ticks").inc(report.ticks_replayed)

    # ------------------------------------------------------------------
    # Serial mode (the paper's dT_restore + dT_replay)
    # ------------------------------------------------------------------

    def _recover_serial(self) -> RecoveryReport:
        geometry = self._app.geometry
        table = GameStateTable(geometry, dtype=self._app.dtype)
        tracer = get_tracer()
        restore_started = time.perf_counter()
        with tracer.span("restore"):
            image, epoch, cut_tick = self._restore_checkpoint(geometry)
            used_fallback = image is None

            rng = np.random.default_rng(self._seed)
            if used_fallback:
                # No durable checkpoint: rebuild tick -1 state from the seed.
                self._app.initialize(table, rng)
                cut_tick, epoch = -1, 0
            else:
                table.load_full_image(image)
        restore_seconds = time.perf_counter() - restore_started

        replay_started = time.perf_counter()
        with tracer.span("replay"):
            replayed = self._replay(table, rng, start_tick=cut_tick + 1)
        replay_seconds = time.perf_counter() - replay_started
        return RecoveryReport(
            table=table,
            rng=rng,
            next_tick=cut_tick + 1 + replayed,
            checkpoint_tick=cut_tick,
            checkpoint_epoch=epoch,
            ticks_replayed=replayed,
            used_seed_fallback=used_fallback,
            restore_seconds=restore_seconds,
            replay_seconds=replay_seconds,
            mode="serial",
            bytes_restored=0 if used_fallback else len(image),
        )

    # ------------------------------------------------------------------
    # Pipelined mode (restore reader || log replay)
    # ------------------------------------------------------------------

    def _recover_pipelined(self) -> RecoveryReport:
        geometry = self._app.geometry
        table = GameStateTable(geometry, dtype=self._app.dtype)
        started = time.perf_counter()
        opened = self._open_streaming(geometry)
        rng = np.random.default_rng(self._seed)

        if opened is None:
            # No durable checkpoint: nothing to stream, so this degenerates
            # to the serial seed fallback (full replay from tick 0).
            self._app.initialize(table, rng)
            restore_seconds = time.perf_counter() - started
            replay_started = time.perf_counter()
            replayed = self._replay(table, rng, start_tick=0)
            return RecoveryReport(
                table=table,
                rng=rng,
                next_tick=replayed,
                checkpoint_tick=-1,
                checkpoint_epoch=0,
                ticks_replayed=replayed,
                used_seed_fallback=True,
                restore_seconds=restore_seconds,
                replay_seconds=time.perf_counter() - replay_started,
                mode="pipelined",
            )

        store, restore = opened
        cut_tick = restore.cut_tick
        num_objects = restore.num_objects
        residency = RegionResidency(num_objects)
        queue: Queue = Queue(self._queue_regions)
        abort = threading.Event()
        reader = threading.Thread(
            target=self._restore_reader,
            args=(restore.regions, queue, abort),
            name="repro-restore-reader",
            daemon=True,
        )
        bytes_restored = 0
        stall_count = 0
        overlap_seconds = 0.0
        restore_done_at: Optional[float] = None
        sentinel_seen = False
        replayed = 0
        # Scratch generator for scope prediction; its state is overwritten
        # with each record's logged state so draws mirror the replay's.
        scratch = np.random.default_rng(0)

        def install(item) -> None:
            nonlocal bytes_restored, restore_done_at
            if isinstance(item, BaseException):
                raise item
            start, count, payload = item
            table.load_object_range(start, count, payload)
            residency.mark_resident(start, start + count)
            bytes_restored += len(payload)
            if restore_done_at is None and residency.complete:
                restore_done_at = time.perf_counter()

        try:
            reader.start()
            for record in self._iter_replay_records(cut_tick + 1):
                # Opportunistic drain: install whatever has already landed.
                while not sentinel_seen:
                    try:
                        item = queue.get_nowait()
                    except Empty:
                        break
                    if item is None:
                        sentinel_seen = True
                    else:
                        install(item)
                scratch.bit_generator.state = record.rng_state
                scope = self._app.tick_object_scope(
                    geometry, scratch, record.tick, record.command_payload
                )
                if scope is None:
                    needed = num_objects
                else:
                    scope = np.asarray(scope)
                    needed = 0 if scope.size == 0 else int(scope.max()) + 1
                stalled = False
                while residency.watermark < needed and not sentinel_seen:
                    # True read-before-restore dependency: block on the
                    # reader until the scope's regions are in.
                    stalled = True
                    item = queue.get()
                    if item is None:
                        sentinel_seen = True
                    else:
                        install(item)
                if residency.watermark < needed:
                    raise RecoveryError(
                        f"restore stream ended at object "
                        f"{residency.watermark} but tick {record.tick} "
                        f"needs objects up to {needed}"
                    )
                tick_started = time.perf_counter()
                rng.bit_generator.state = record.rng_state
                plan = self._app.plan_tick_with_commands(
                    table, rng, record.tick, record.command_payload
                )
                table.apply_updates(
                    plan.rows, plan.columns, plan.values, validate=False
                )
                if restore_done_at is None:
                    overlap_seconds += time.perf_counter() - tick_started
                if stalled:
                    stall_count += 1
                    get_tracer().instant(
                        "replay_stall", tick=record.tick, needed=needed
                    )
                replayed += 1
            # Replay exhausted; finish installing the rest of the image.
            while not sentinel_seen:
                item = queue.get()
                if item is None:
                    sentinel_seen = True
                else:
                    install(item)
            if not residency.complete:
                raise RecoveryError(
                    f"restore stream ended at object {residency.watermark} "
                    f"of {num_objects}"
                )
        finally:
            abort.set()
            # Unblock a reader stuck on a full queue, then reap it.
            try:
                while True:
                    queue.get_nowait()
            except Empty:
                pass
            reader.join(timeout=10.0)
            store.close()

        total = time.perf_counter() - started
        restore_seconds = (restore_done_at or time.perf_counter()) - started
        return RecoveryReport(
            table=table,
            rng=rng,
            next_tick=cut_tick + 1 + replayed,
            checkpoint_tick=cut_tick,
            checkpoint_epoch=restore.epoch,
            ticks_replayed=replayed,
            used_seed_fallback=False,
            restore_seconds=restore_seconds,
            replay_seconds=max(0.0, total - restore_seconds),
            mode="pipelined",
            bytes_restored=bytes_restored,
            replay_overlap_seconds=overlap_seconds,
            stall_count=stall_count,
        )

    @staticmethod
    def _restore_reader(regions, queue: Queue, abort: threading.Event) -> None:
        """Reader-thread body: stream regions into the bounded queue.

        Ends with a ``None`` sentinel; a read failure is delivered as the
        exception object itself, re-raised by the installer on the main
        thread.  Every put polls the abort event so a cancelled recovery
        never leaves the thread wedged against a full queue.
        """

        def put(item) -> bool:
            while not abort.is_set():
                try:
                    queue.put(item, timeout=0.05)
                    return True
                except Full:
                    continue
            return False

        try:
            for item in regions:
                if not put(item):
                    return
            put(None)
        except BaseException as exc:  # delivered to the main thread
            put(exc)

    def _open_streaming(self, geometry):
        """Open whichever store exists and begin a streaming restore.

        Returns ``(store, StreamingRestore)`` with the store left open (the
        region iterator reads lazily), or None when no consistent checkpoint
        is available.
        """
        double_path = os.path.join(
            self._directory, DoubleBackupStore.FILE_NAMES[0]
        )
        log_path = os.path.join(self._directory, CheckpointLogStore.FILE_NAME)
        if os.path.exists(double_path):
            store = DoubleBackupStore(self._directory, geometry)
        elif os.path.exists(log_path):
            store = CheckpointLogStore(self._directory, geometry)
        else:
            return None
        try:
            return store, store.restore_image_streaming(self._region_objects)
        except NoConsistentCheckpointError:
            store.close()
            return None

    # ------------------------------------------------------------------
    # Restore (serial)
    # ------------------------------------------------------------------

    def _restore_checkpoint(
        self, geometry
    ) -> Tuple[Optional[bytes], int, int]:
        """Read the newest consistent image from whichever store exists."""
        double_path = os.path.join(
            self._directory, DoubleBackupStore.FILE_NAMES[0]
        )
        log_path = os.path.join(self._directory, CheckpointLogStore.FILE_NAME)
        if os.path.exists(double_path):
            with DoubleBackupStore(self._directory, geometry) as store:
                try:
                    found = store.latest_consistent()
                except NoConsistentCheckpointError:
                    return None, 0, -1
                return store.read_image(found.backup_index), found.epoch, found.tick
        if os.path.exists(log_path):
            with CheckpointLogStore(self._directory, geometry) as store:
                try:
                    return store.restore_image()
                except NoConsistentCheckpointError:
                    return None, 0, -1
        return None, 0, -1

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def _iter_replay_records(self, start_tick: int):
        """Yield logged tick records from ``start_tick``, checking for gaps.

        A log whose first replayable record is newer than ``start_tick`` (or
        that skips a tick anywhere) cannot reproduce the lost state;
        recovery must fail loudly rather than replay around the hole.
        """
        log_path = os.path.join(self._directory, ActionLog.FILE_NAME)
        if not os.path.exists(log_path):
            return
        expected = start_tick
        with ActionLog(self._directory) as log:
            for record in log.records(start_tick=start_tick):
                if record.tick != expected:
                    raise RecoveryError(
                        f"logical log skips from tick {expected} to "
                        f"{record.tick}; cannot replay"
                    )
                yield record
                expected += 1

    def _replay(
        self, table: GameStateTable, rng: np.random.Generator, start_tick: int
    ) -> int:
        """Re-run every logged tick from ``start_tick``; returns the count."""
        replayed = 0
        for record in self._iter_replay_records(start_tick):
            rng.bit_generator.state = record.rng_state
            plan = self._app.plan_tick_with_commands(
                table, rng, record.tick, record.command_payload
            )
            # The updates were bounds-checked when first applied live;
            # replay trusts the log.
            table.apply_updates(
                plan.rows, plan.columns, plan.values, validate=False
            )
            replayed += 1
        return replayed
