"""Tests for the byte/time unit helpers."""

import pytest

from repro import units


class TestConstructors:
    def test_megabytes_are_decimal(self):
        assert units.megabytes(60) == 60_000_000

    def test_gigabytes_are_decimal(self):
        assert units.gigabytes(2.2) == pytest.approx(2.2e9)

    def test_nanoseconds(self):
        assert units.nanoseconds(145) == pytest.approx(145e-9)

    def test_milliseconds(self):
        assert units.milliseconds(33.3) == pytest.approx(0.0333)


class TestFormatBytes:
    def test_bytes(self):
        assert units.format_bytes(512) == "512 B"

    def test_kilobytes(self):
        assert units.format_bytes(2_048) == "2.05 KB"

    def test_megabytes(self):
        assert units.format_bytes(40_000_000) == "40.00 MB"

    def test_gigabytes(self):
        assert units.format_bytes(2.2e9) == "2.20 GB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.format_bytes(-1)


class TestFormatDuration:
    def test_seconds(self):
        assert units.format_duration(1.4) == "1.400 s"

    def test_milliseconds(self):
        assert units.format_duration(0.017) == "17.000 ms"

    def test_microseconds(self):
        assert units.format_duration(250e-6) == "250.000 us"

    def test_nanoseconds(self):
        assert units.format_duration(145e-9) == "145.0 ns"

    def test_zero(self):
        assert units.format_duration(0.0) == "0.0 ns"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.format_duration(-0.5)


class TestFormatRate:
    def test_disk_bandwidth(self):
        assert units.format_rate(60e6) == "60.00 MB/s"

    def test_memory_bandwidth(self):
        assert units.format_rate(2.2e9) == "2.20 GB/s"
