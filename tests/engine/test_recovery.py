"""Tests for crash recovery: restore + logical-log replay."""

import pytest

from repro.core.registry import ALGORITHM_KEYS
from repro.engine.recovery import RecoveryManager
from repro.engine.server import DurableGameServer


def run_pair(app_factory, tmp_path, algorithm, ticks, seed=7, **server_kwargs):
    """Run a reference server and an identical crashing server."""
    reference = DurableGameServer(
        app_factory(), tmp_path / "reference", algorithm=algorithm, seed=seed,
        **server_kwargs,
    )
    reference.run_ticks(ticks)
    victim = DurableGameServer(
        app_factory(), tmp_path / "victim", algorithm=algorithm, seed=seed,
        **server_kwargs,
    )
    victim.run_ticks(ticks)
    victim.crash()
    return reference, victim


class TestExactRecovery:
    @pytest.mark.parametrize("algorithm", ALGORITHM_KEYS)
    def test_recovery_is_bit_exact(self, algorithm, random_walk_app, tmp_path):
        factory = lambda: random_walk_app
        reference, victim = run_pair(factory, tmp_path, algorithm, ticks=60)
        report = RecoveryManager(
            random_walk_app, victim.directory, seed=7
        ).recover()
        assert report.table.equals(reference.table)
        assert report.next_tick == 60
        reference.close()

    def test_recovery_without_any_checkpoint(self, random_walk_app, tmp_path):
        """Crash before the first commit: seed fallback + full replay."""
        factory = lambda: random_walk_app
        reference, victim = run_pair(
            factory, tmp_path, "copy-on-update", ticks=2,
            writer_bytes_per_tick=64,
        )
        report = RecoveryManager(
            random_walk_app, victim.directory, seed=7
        ).recover()
        assert report.used_seed_fallback
        assert report.ticks_replayed == 2
        assert report.table.equals(reference.table)
        reference.close()

    def test_recovered_rng_continues_identically(
        self, random_walk_app, tmp_path
    ):
        """After recovery the generator must continue the pre-crash stream."""
        factory = lambda: random_walk_app
        reference, victim = run_pair(factory, tmp_path, "copy-on-update",
                                     ticks=30)
        report = RecoveryManager(
            random_walk_app, victim.directory, seed=7
        ).recover()
        # Drive both worlds three more ticks by hand.
        table_ref, rng_ref = reference.table, reference._rng
        table_rec, rng_rec = report.table, report.rng
        for tick in range(30, 33):
            for table, rng in ((table_ref, rng_ref), (table_rec, rng_rec)):
                plan = random_walk_app.plan_tick(table, rng, tick)
                table.apply_updates(plan.rows, plan.columns, plan.values)
        assert table_rec.equals(table_ref)
        reference.close()

    def test_recovery_timings_measured(self, random_walk_app, tmp_path):
        factory = lambda: random_walk_app
        reference, victim = run_pair(factory, tmp_path, "copy-on-update",
                                     ticks=40)
        report = RecoveryManager(
            random_walk_app, victim.directory, seed=7
        ).recover()
        assert report.restore_seconds > 0
        assert report.replay_seconds >= 0
        assert report.recovery_seconds == pytest.approx(
            report.restore_seconds + report.replay_seconds
        )
        reference.close()

    def test_report_metadata(self, random_walk_app, tmp_path):
        factory = lambda: random_walk_app
        reference, victim = run_pair(factory, tmp_path, "naive-snapshot",
                                     ticks=50)
        report = RecoveryManager(
            random_walk_app, victim.directory, seed=7
        ).recover()
        assert report.checkpoint_epoch >= 1
        assert 0 <= report.checkpoint_tick < 50
        assert report.ticks_replayed == 49 - report.checkpoint_tick
        assert not report.used_seed_fallback
        reference.close()


class TestRepeatedCrashes:
    def test_crash_recover_crash_recover(self, random_walk_app, tmp_path):
        """Recovery output is stable: recovering twice gives the same state."""
        factory = lambda: random_walk_app
        reference, victim = run_pair(factory, tmp_path, "copy-on-update",
                                     ticks=45)
        manager = RecoveryManager(random_walk_app, victim.directory, seed=7)
        first = manager.recover()
        second = manager.recover()
        assert first.table.equals(second.table)
        assert first.table.equals(reference.table)
        reference.close()


class TestCrashTimingMatrix:
    @pytest.mark.parametrize("ticks", [1, 7, 16, 33, 64])
    def test_crash_at_various_points(self, ticks, random_walk_app, tmp_path):
        factory = lambda: random_walk_app
        reference, victim = run_pair(
            factory, tmp_path, "copy-on-update", ticks=ticks,
            writer_bytes_per_tick=256,
        )
        report = RecoveryManager(
            random_walk_app, victim.directory, seed=7
        ).recover()
        assert report.table.equals(reference.table)
        reference.close()


import os

import numpy as np

from repro.config import StateGeometry
from repro.engine.recovery import RECOVERY_MODES
from repro.errors import (
    CheckpointWriterError,
    ConfigurationError,
    RecoveryError,
    StorageError,
)
from repro.storage.action_log import ActionLog, TickRecord
from repro.storage.double_backup import DoubleBackupStore


class TestPipelinedRecovery:
    @pytest.mark.parametrize("algorithm", ALGORITHM_KEYS)
    def test_pipelined_matches_serial_bit_exact(
        self, algorithm, random_walk_app, tmp_path
    ):
        factory = lambda: random_walk_app
        reference, victim = run_pair(factory, tmp_path, algorithm, ticks=60)
        serial = RecoveryManager(
            random_walk_app, victim.directory, seed=7
        ).recover()
        pipelined = RecoveryManager(
            random_walk_app, victim.directory, seed=7,
            mode="pipelined", region_objects=4,
        ).recover()
        assert pipelined.table.equals(serial.table)
        assert pipelined.table.equals(reference.table)
        assert pipelined.next_tick == serial.next_tick == 60
        assert pipelined.checkpoint_tick == serial.checkpoint_tick
        assert pipelined.checkpoint_epoch == serial.checkpoint_epoch
        reference.close()

    def test_pipelined_report_accounting(self, random_walk_app, tmp_path):
        factory = lambda: random_walk_app
        reference, victim = run_pair(factory, tmp_path, "copy-on-update",
                                     ticks=50)
        report = RecoveryManager(
            random_walk_app, victim.directory, seed=7,
            mode="pipelined", region_objects=2,
        ).recover()
        geometry = random_walk_app.geometry
        assert report.mode == "pipelined"
        assert report.bytes_restored == (
            geometry.num_objects * geometry.object_bytes
        )
        assert report.stall_count >= 0
        assert report.stall_count <= report.ticks_replayed
        assert report.replay_overlap_seconds >= 0
        assert report.recovery_seconds == pytest.approx(
            report.restore_seconds + report.replay_seconds
        )
        reference.close()

    def test_pipelined_rng_continues_identically(
        self, random_walk_app, tmp_path
    ):
        factory = lambda: random_walk_app
        reference, victim = run_pair(factory, tmp_path, "copy-on-update",
                                     ticks=30)
        report = RecoveryManager(
            random_walk_app, victim.directory, seed=7, mode="pipelined",
        ).recover()
        table_ref, rng_ref = reference.table, reference._rng
        table_rec, rng_rec = report.table, report.rng
        for tick in range(30, 33):
            for table, rng in ((table_ref, rng_ref), (table_rec, rng_rec)):
                plan = random_walk_app.plan_tick(table, rng, tick)
                table.apply_updates(plan.rows, plan.columns, plan.values)
        assert table_rec.equals(table_ref)
        reference.close()

    def test_pipelined_seed_fallback(self, random_walk_app, tmp_path):
        factory = lambda: random_walk_app
        reference, victim = run_pair(
            factory, tmp_path, "copy-on-update", ticks=2,
            writer_bytes_per_tick=64,
        )
        report = RecoveryManager(
            random_walk_app, victim.directory, seed=7, mode="pipelined",
        ).recover()
        assert report.used_seed_fallback
        assert report.mode == "pipelined"
        assert report.bytes_restored == 0
        assert report.ticks_replayed == 2
        assert report.table.equals(reference.table)
        reference.close()

    def test_unknown_scope_app_still_exact(self, random_walk_app, tmp_path):
        """The default tick_object_scope (None) must stay correct: every
        tick waits for full residency, stalling at most once each."""

        class OpaqueApp(type(random_walk_app)):
            def tick_object_scope(self, geometry, rng, tick, commands):
                return None

        app = OpaqueApp(random_walk_app.geometry)
        factory = lambda: app
        reference, victim = run_pair(factory, tmp_path, "naive-snapshot",
                                     ticks=40)
        report = RecoveryManager(
            app, victim.directory, seed=7, mode="pipelined", region_objects=8,
        ).recover()
        assert report.table.equals(reference.table)
        assert report.stall_count <= report.ticks_replayed
        reference.close()

    def test_invalid_mode_rejected(self, random_walk_app, tmp_path):
        assert set(RECOVERY_MODES) == {"serial", "pipelined"}
        with pytest.raises(ConfigurationError):
            RecoveryManager(random_walk_app, tmp_path, mode="threaded")
        with pytest.raises(ConfigurationError):
            RecoveryManager(
                random_walk_app, tmp_path, mode="pipelined", queue_regions=0
            )


class TestActionLogEdgeCases:
    @pytest.mark.parametrize("mode", ["serial", "pipelined"])
    def test_torn_tail_record_truncates_cleanly(
        self, mode, random_walk_app, tmp_path
    ):
        """A crash mid-append loses exactly the torn tick, nothing else."""
        factory = lambda: random_walk_app
        reference, victim = run_pair(factory, tmp_path, "copy-on-update",
                                     ticks=40)
        log_path = os.path.join(victim.directory, ActionLog.FILE_NAME)
        with open(log_path, "r+b") as handle:
            handle.truncate(os.path.getsize(log_path) - 5)
        report = RecoveryManager(
            random_walk_app, victim.directory, seed=7, mode=mode
        ).recover()
        assert report.next_tick == 39
        replica = DurableGameServer(
            random_walk_app, tmp_path / f"replica-{mode}",
            algorithm="copy-on-update", seed=7,
        )
        replica.run_ticks(39)
        assert report.table.equals(replica.table)
        replica.close()
        reference.close()

    @pytest.mark.parametrize("mode", ["serial", "pipelined"])
    def test_log_starting_after_cut_raises(self, mode, tmp_path, random_walk_app):
        """A checkpoint whose follow-on ticks are missing cannot replay."""
        geometry = random_walk_app.geometry
        with DoubleBackupStore(tmp_path, geometry) as store:
            store.begin_checkpoint(0, 1)
            ids = np.arange(geometry.num_objects, dtype=np.int64)
            store.write_objects(
                ids, bytes(geometry.num_objects * geometry.object_bytes)
            )
            store.commit_checkpoint(10)
        with ActionLog(tmp_path) as log:
            # First logged tick is 12: the record for tick 11 is missing.
            log.append(TickRecord(
                tick=12, rng_state=np.random.default_rng(0).bit_generator.state
            ))
        with pytest.raises(RecoveryError, match="skips"):
            RecoveryManager(
                random_walk_app, tmp_path, seed=7, mode=mode
            ).recover()


class TestCrashMidFlushPipelined:
    @pytest.mark.parametrize(
        "algorithm", ["copy-on-update", "partial-redo"]
    )
    def test_fault_injected_store_recovers_identically(
        self, algorithm, random_walk_app, tmp_path
    ):
        """Kill the writer mid-flush; serial and pipelined recovery must
        agree bit-for-bit on both disk organizations."""
        server = DurableGameServer(
            random_walk_app, tmp_path / "victim", algorithm=algorithm,
            seed=7, async_writer=False, writer_bytes_per_tick=2_048,
        )
        calls = {"count": 0}

        def explode():
            calls["count"] += 1
            if calls["count"] > 3:
                raise StorageError("injected mid-flush fault")

        server._store.write_fault_hook = explode
        with pytest.raises((StorageError, CheckpointWriterError)):
            for _ in range(500):
                server.run_tick()
        assert calls["count"] > 3, "fault hook never fired"
        server.crash()

        serial = RecoveryManager(
            random_walk_app, server.directory, seed=7
        ).recover()
        pipelined = RecoveryManager(
            random_walk_app, server.directory, seed=7,
            mode="pipelined", region_objects=4,
        ).recover()
        assert pipelined.table.equals(serial.table)
        assert pipelined.next_tick == serial.next_tick
        assert pipelined.checkpoint_tick == serial.checkpoint_tick
        # And both match a crash-free replica of the same tick count.
        replica = DurableGameServer(
            random_walk_app, tmp_path / "replica", algorithm=algorithm,
            seed=7,
        )
        replica.run_ticks(serial.next_tick)
        assert serial.table.equals(replica.table)
        replica.close()
