"""Regenerate Figure 6: validation against the real threaded implementation.

These benchmarks run real threads and real file I/O, so absolute numbers are
host-dependent; the assertions check the paper's validation *claims* -- the
implementation tracks the simulation's trends, with the Copy-on-Update
implementation's overhead allowed to exceed the simulation (the paper saw up
to 3x).
"""

import pytest
from conftest import run_once

from repro.experiments import fig6
from repro.validation.microbench import measure_host_parameters


@pytest.fixture(scope="module")
def host_hardware():
    return measure_host_parameters(quick=True)


@pytest.fixture(scope="module")
def shared():
    return {}


def _run(bench_scale, hardware):
    return fig6.run(bench_scale, hardware=hardware)


def test_fig6a(benchmark, bench_scale, report_sink, host_hardware, shared):
    """Figure 6(a): overhead, simulation vs implementation."""
    result = run_once(benchmark, _run, bench_scale, host_hardware)
    shared["result"] = result
    report_sink("fig6a", result.tables[0].render() + "\n\n"
                + result.tables[1].render())
    for row in result.raw["comparisons"]:
        if row["algorithm"] == "copy-on-update":
            # Measured within an order of magnitude of the calibrated model
            # (the paper saw up to 3x on 2009 hardware).
            ratio = row["measured_overhead"] / max(
                row["simulated_overhead"], 1e-9
            )
            assert 0.1 < ratio < 10.0


def test_fig6b(benchmark, bench_scale, report_sink, host_hardware, shared):
    """Figure 6(b): time to checkpoint, simulation vs implementation."""
    if "result" in shared:
        result = shared["result"]
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    else:
        result = run_once(benchmark, _run, bench_scale, host_hardware)
        shared["result"] = result
    report_sink("fig6b", result.tables[2].render())
    for row in result.raw["comparisons"]:
        ratio = row["measured_checkpoint"] / max(
            row["simulated_checkpoint"], 1e-9
        )
        assert 0.05 < ratio < 20.0


def test_fig6c(benchmark, bench_scale, report_sink, host_hardware, shared):
    """Figure 6(c): recovery time, simulation vs implementation."""
    if "result" in shared:
        result = shared["result"]
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    else:
        result = run_once(benchmark, _run, bench_scale, host_hardware)
        shared["result"] = result
    report_sink("fig6c", result.tables[3].render())
    for row in result.raw["comparisons"]:
        assert row["measured_recovery"] > 0
        assert row["simulated_recovery"] > 0
