"""Property tests on the stable-storage structures (invariant 1).

The double-backup organization must keep at least one complete consistent
image on disk at every point after the first commit, no matter where a crash
interrupts the write sequence; and the checkpoint log must reconstruct
exactly the image a model dictionary predicts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import StateGeometry
from repro.errors import NoConsistentCheckpointError
from repro.storage.checkpoint_log import CheckpointLogStore
from repro.storage.double_backup import DoubleBackupStore

GEOMETRY = StateGeometry(rows=4, columns=8, cell_bytes=4, object_bytes=32)
NUM_OBJECTS = GEOMETRY.num_objects  # 4


def payload_for(ids, fill):
    cells = GEOMETRY.cells_per_object
    data = np.zeros((len(ids), cells), dtype=np.uint32)
    for slot, object_id in enumerate(ids):
        data[slot] = fill * 100 + int(object_id)
    return data.tobytes()


def image_cells(image):
    return np.frombuffer(image, dtype=np.uint32).reshape(
        NUM_OBJECTS, GEOMETRY.cells_per_object
    )


checkpoint_scripts = st.lists(
    st.tuples(
        # Objects written by this checkpoint (the first one is forced full).
        st.lists(
            st.integers(min_value=0, max_value=NUM_OBJECTS - 1),
            min_size=0, max_size=NUM_OBJECTS,
        ).map(lambda v: sorted(set(v))),
        # Whether this checkpoint commits or the crash hits first.
        st.booleans(),
    ),
    min_size=1,
    max_size=8,
)


class TestDoubleBackupInvariant:
    @given(script=checkpoint_scripts)
    @settings(max_examples=60, deadline=None)
    def test_one_consistent_image_always_recoverable(self, script, tmp_path_factory):
        directory = tmp_path_factory.mktemp("double")
        model = {}          # object -> value of the last *committed* cut
        committed_cuts = [] # (epoch, model snapshot at commit)
        with DoubleBackupStore(directory, GEOMETRY) as store:
            live = {object_id: 0 for object_id in range(NUM_OBJECTS)}
            epoch = 0
            backup = 0
            for ids, commits in script:
                epoch += 1
                if epoch == 1:
                    ids = list(range(NUM_OBJECTS))  # cold start writes all
                # The checkpoint captures the live values of its write set.
                store.begin_checkpoint(backup, epoch)
                store.write_objects(
                    np.array(ids, dtype=np.int64),
                    payload_for(ids, epoch),
                )
                for object_id in ids:
                    live[object_id] = epoch
                if not commits:
                    break  # crash mid-checkpoint
                store.commit_checkpoint(tick=epoch)
                committed_cuts.append((epoch, dict(live)))
                backup = 1 - backup
        # Reopen after the "crash" and recover.
        with DoubleBackupStore(directory, GEOMETRY) as store:
            if not committed_cuts:
                with pytest.raises(NoConsistentCheckpointError):
                    store.latest_consistent()
                return
            found = store.latest_consistent()
            # The recovered image corresponds to SOME committed cut -- at
            # worst the previous one, never a torn mixture.
            epochs = [cut_epoch for cut_epoch, _ in committed_cuts]
            assert found.epoch in epochs

    @given(script=checkpoint_scripts)
    @settings(max_examples=40, deadline=None)
    def test_committed_backup_content_matches_model(self, script,
                                                    tmp_path_factory):
        """The recovered backup's content is exactly the dirty-set overlay
        the model predicts for that backup."""
        directory = tmp_path_factory.mktemp("double")
        per_backup_model = {0: {}, 1: {}}
        committed = {}
        with DoubleBackupStore(directory, GEOMETRY) as store:
            epoch = 0
            backup = 0
            for ids, commits in script:
                epoch += 1
                if epoch == 1:
                    ids = list(range(NUM_OBJECTS))
                store.begin_checkpoint(backup, epoch)
                store.write_objects(
                    np.array(ids, dtype=np.int64), payload_for(ids, epoch)
                )
                for object_id in ids:
                    per_backup_model[backup][object_id] = epoch * 100 + object_id
                if not commits:
                    break
                store.commit_checkpoint(tick=epoch)
                committed[backup] = dict(per_backup_model[backup])
                backup = 1 - backup
        with DoubleBackupStore(directory, GEOMETRY) as store:
            for backup_index, model in committed.items():
                header = store.header(backup_index)
                if header.state != 2:  # not COMPLETE; was torn later
                    continue
                cells = image_cells(store.read_image(backup_index))
                for object_id, value in model.items():
                    assert cells[object_id, 0] == value


class TestCheckpointLogModel:
    @given(script=checkpoint_scripts)
    @settings(max_examples=60, deadline=None)
    def test_restore_matches_model_replay(self, script, tmp_path_factory):
        directory = tmp_path_factory.mktemp("log")
        model = {}
        committed_model = None
        committed_epoch = 0
        with CheckpointLogStore(directory, GEOMETRY) as store:
            epoch = 0
            for ids, commits in script:
                epoch += 1
                full = epoch == 1
                if full:
                    ids = list(range(NUM_OBJECTS))
                store.begin_checkpoint(epoch, is_full_dump=full)
                store.append_objects(
                    np.array(ids, dtype=np.int64), payload_for(ids, epoch)
                )
                staged = dict(model)
                for object_id in ids:
                    staged[object_id] = epoch * 100 + object_id
                if not commits:
                    break
                store.commit_checkpoint(tick=epoch)
                model = staged
                committed_model = dict(model)
                committed_epoch = epoch
        with CheckpointLogStore(directory, GEOMETRY) as store:
            if committed_model is None:
                with pytest.raises(NoConsistentCheckpointError):
                    store.restore_image()
                return
            image, epoch, _tick = store.restore_image()
            assert epoch == committed_epoch
            cells = image_cells(image)
            for object_id, value in committed_model.items():
                assert cells[object_id, 0] == value
