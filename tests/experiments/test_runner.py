"""Tests for the experiments CLI."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import (
    EXPERIMENT_IDS,
    experiment_parameters,
    run_experiment,
)
from repro.experiments.runner import build_parser, main


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        for artifact in ("table1", "table2", "table3", "table4", "table5",
                         "fig2", "fig3", "fig4", "fig5", "fig6"):
            assert artifact in EXPERIMENT_IDS

    def test_ablations_present(self):
        for artifact in ("ablation_objsize", "ablation_fulldump",
                         "ablation_disk", "ablation_tickrate"):
            assert artifact in EXPERIMENT_IDS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_experiment_parameters_introspects_signature(self):
        assert {"seed", "engine"} <= experiment_parameters("fig2")
        assert {"seed", "engine"} <= experiment_parameters("ablation_disk")
        with pytest.raises(ConfigurationError):
            experiment_parameters("fig99")

    def test_unaccepted_kwargs_dropped(self):
        # table1 takes neither seed nor engine; passing them must not raise.
        from repro.experiments.common import QUICK_SCALE

        result = run_experiment(
            "table1", scale=QUICK_SCALE, seed=3, engine=None
        )
        assert result.experiment_id == "table1"


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiments == ["table1"]
        assert not args.quick
        assert args.seed == 0
        assert args.jobs is None
        assert not args.no_cache
        assert args.cache_dir is None
        assert args.bench_out == "BENCH_sweep.json"

    def test_parser_sweep_flags(self):
        args = build_parser().parse_args(
            ["fig2", "--jobs", "4", "--no-cache", "--cache-dir", "/tmp/c",
             "--bench-out", "stats.json"]
        )
        assert args.jobs == 4
        assert args.no_cache
        assert args.cache_dir == "/tmp/c"
        assert args.bench_out == "stats.json"

    def test_main_runs_table1(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        assert main(["table1", "--quick", "--bench-out", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Copy-on-Update" in out

    def test_main_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_main_rejects_bad_jobs(self, capsys):
        assert main(["table1", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_main_writes_report_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["table2", "--quick", "--out", str(out_file),
                     "--bench-out", str(tmp_path / "bench.json")]) == 0
        assert "Table 2" in out_file.read_text()

    def test_main_writes_bench_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        bench_file = tmp_path / "bench.json"
        assert main(
            ["ablation_tickrate", "--quick", "--jobs", "1",
             "--bench-out", str(bench_file)]
        ) == 0
        bench = json.loads(bench_file.read_text())
        assert bench["scale"] == "quick"
        assert bench["cache"]["enabled"]
        record = bench["experiments"]["ablation_tickrate"]
        assert record["jobs"] == 1
        assert record["runs"] == 8
        assert record["wall_time_s"] > 0
        # Both frequencies share one trace spec (only the hardware differs),
        # so the second point hits the entry the first just stored.
        assert record["cache_misses"] == 1
        assert record["cache_hits"] == 1
        assert bench["total_cache_misses"] == 1
        # A second run hits the persistent cache.
        assert main(
            ["ablation_tickrate", "--quick", "--jobs", "1",
             "--bench-out", str(bench_file)]
        ) == 0
        bench = json.loads(bench_file.read_text())
        assert bench["experiments"]["ablation_tickrate"]["cache_hits"] == 2

    def test_main_bench_out_disabled(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["table1", "--quick", "--bench-out", ""]) == 0
        assert not (tmp_path / "BENCH_sweep.json").exists()
