"""Property tests: dirty-tracking structures behave like their models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.state.dirty import EpochSet, PolarityBitmap

SIZE = 64

ids_arrays = st.lists(
    st.integers(min_value=0, max_value=SIZE - 1), min_size=0, max_size=12
).map(lambda values: np.array(sorted(set(values)), dtype=np.int64))

operations = st.lists(
    st.tuples(st.sampled_from(["set", "clear", "flip", "set_all", "clear_all"]),
              ids_arrays),
    min_size=0,
    max_size=30,
)


class TestPolarityBitmapModel:
    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_matches_python_set_model(self, ops):
        """Invariant 4 of DESIGN.md: polarity inversion is observationally a
        complement; set/clear behave like a plain set."""
        bitmap = PolarityBitmap(SIZE)
        model = set()
        for op, ids in ops:
            if op == "set":
                bitmap.set(ids)
                model |= set(ids.tolist())
            elif op == "clear":
                bitmap.clear(ids)
                model -= set(ids.tolist())
            elif op == "flip":
                bitmap.flip_all()
                model = set(range(SIZE)) - model
            elif op == "set_all":
                bitmap.set_all()
                model = set(range(SIZE))
            else:
                bitmap.clear_all()
                model = set()
        assert set(bitmap.set_ids().tolist()) == model
        assert bitmap.count_set() == len(model)

    @given(ids_arrays)
    @settings(max_examples=40, deadline=None)
    def test_flip_when_full_equals_clear(self, ids):
        """The Dribble trick: once every bit is set, an O(1) flip is exactly
        a clear-all."""
        flipped = PolarityBitmap(SIZE)
        cleared = PolarityBitmap(SIZE)
        flipped.set_all()
        cleared.set_all()
        flipped.flip_all()
        cleared.clear_all()
        flipped.set(ids)
        cleared.set(ids)
        assert np.array_equal(flipped.values(), cleared.values())


class TestEpochSetModel:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["add", "reset"]), ids_arrays),
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_python_set_model(self, ops):
        epoch_set = EpochSet(SIZE)
        model = set()
        for op, ids in ops:
            if op == "add":
                fresh = epoch_set.add_new(ids)
                expected_fresh = set(ids.tolist()) - model
                assert set(fresh.tolist()) == expected_fresh
                model |= set(ids.tolist())
            else:
                epoch_set.reset()
                model = set()
        assert set(epoch_set.members().tolist()) == model
        assert epoch_set.count() == len(model)
