"""One MMO shard: the complete Figure 1 persistence architecture.

A shard pairs the two durability paths the paper distinguishes:

* the **game server** (checkpoint recovery) -- hundreds of thousands of
  non-transactional local updates per second, persisted by one of the six
  checkpointing algorithms plus the logical log;
* the **persistence server** (ARIES-style redo WAL) -- the low-rate ACID
  operations such as item trades.

"Clients communicate with game servers to update the state of the world, and
these servers use a standard DBMS back-end to provide transactional
guarantees" (Section 1).  :class:`MMOShard` wires both together, crashes as a
unit, and recovers as a unit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Union

from repro.engine.app import TickApplication
from repro.engine.recovery import RecoveryManager, RecoveryReport
from repro.engine.server import DurableGameServer
from repro.errors import EngineError
from repro.persistence.server import PersistenceServer, TradeResult

GAME_SUBDIRECTORY = "game"
PERSISTENCE_SUBDIRECTORY = "persistence"


@dataclass(frozen=True)
class ShardRecovery:
    """Everything recovered from a crashed shard."""

    game: RecoveryReport
    persistence: PersistenceServer


class MMOShard:
    """A single shard: durable game world + transactional item economy."""

    def __init__(
        self,
        app: TickApplication,
        directory: Union[str, os.PathLike],
        algorithm: str = "copy-on-update",
        seed: int = 0,
        sync: bool = False,
        writer_pool=None,
        **game_server_kwargs,
    ) -> None:
        """``writer_pool`` (a
        :class:`~repro.engine.writer_pool.CheckpointWriterPool`) makes the
        game server submit its checkpoints through the shared pool instead
        of a private writer thread; the pool is owned by the caller
        (typically :class:`~repro.engine.fleet.ShardFleet`) and survives
        this shard's crash/close."""
        self._directory = os.fspath(directory)
        self._game = DurableGameServer(
            app,
            os.path.join(self._directory, GAME_SUBDIRECTORY),
            algorithm=algorithm,
            seed=seed,
            sync=sync,
            writer_pool=writer_pool,
            **game_server_kwargs,
        )
        self._persistence = PersistenceServer(
            os.path.join(self._directory, PERSISTENCE_SUBDIRECTORY), sync=sync
        )
        self._crashed = False

    # ------------------------------------------------------------------
    # The two update paths
    # ------------------------------------------------------------------

    @property
    def game(self) -> DurableGameServer:
        """The high-rate, checkpoint-recovered world state."""
        self._check_alive()
        return self._game

    @property
    def persistence(self) -> PersistenceServer:
        """The low-rate ACID back-end (trades, account operations)."""
        self._check_alive()
        return self._persistence

    @property
    def directory(self) -> str:
        """Root directory of the shard's durable state."""
        return self._directory

    @property
    def crashed(self) -> bool:
        """True once :meth:`crash` has fail-stopped this shard."""
        return self._crashed

    def run_tick(self) -> int:
        """Advance the world one tick through the game server."""
        self._check_alive()
        return self._game.run_tick()

    def run_ticks(self, count: int) -> None:
        """Advance the world several ticks."""
        for _ in range(count):
            self.run_tick()

    def wait_checkpoint_idle(self, timeout=60.0) -> None:
        """Block until the game server has no checkpoint write in flight."""
        self._check_alive()
        self._game.wait_checkpoint_idle(timeout=timeout)

    def trade_item(self, item_id: int, seller_id: int, buyer_id: int,
                   price: int) -> TradeResult:
        """Route an ACID trade through the persistence server."""
        self._check_alive()
        return self._persistence.trade_item(item_id, seller_id, buyer_id,
                                            price)

    def _check_alive(self) -> None:
        if self._crashed:
            raise EngineError("shard has crashed; recover it instead")

    # ------------------------------------------------------------------
    # Failure and recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop the whole shard (both servers at once)."""
        self._check_alive()
        self._game.crash()
        self._persistence.crash()
        self._crashed = True

    def close(self) -> None:
        """Orderly shutdown."""
        if not self._crashed:
            self._game.close()
            self._persistence.close()

    def __enter__(self) -> "MMOShard":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def recover(
        cls,
        app: TickApplication,
        directory: Union[str, os.PathLike],
        seed: int = 0,
        mode: str = "serial",
    ) -> ShardRecovery:
        """Recover both halves of a crashed shard.

        The game world comes back via checkpoint restore + logical-log
        replay (``mode`` selects the :class:`RecoveryManager` strategy,
        ``serial`` or ``pipelined``); the item economy via WAL snapshot +
        redo.  Each path recovers exactly its own committed state -- the
        game loses nothing (every tick is logged), the economy loses nothing
        that was acknowledged.
        """
        directory = os.fspath(directory)
        game_report = RecoveryManager(
            app, os.path.join(directory, GAME_SUBDIRECTORY), seed=seed,
            mode=mode,
        ).recover()
        persistence = PersistenceServer.recover(
            os.path.join(directory, PERSISTENCE_SUBDIRECTORY)
        )
        return ShardRecovery(game=game_report, persistence=persistence)
