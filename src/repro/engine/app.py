"""The application contract for the durable engine.

A :class:`TickApplication` is the game: it fills the initial state table and,
each tick, *plans* a batch of cell updates.  Two rules make crash recovery by
logical-log replay possible (Section 3.1 of the paper relies on the same
discipline):

1. **All mutable state lives in the table and the random generator.**  The
   application object itself must be stateless across ticks (configuration
   only), so that restoring the table and the generator state reproduces its
   behaviour exactly.
2. **Planning is deterministic.**  ``plan_tick(table, rng, tick)`` must
   depend only on its arguments; it reads the table freely but must not
   mutate it -- the server applies the returned updates itself, after the
   checkpointing framework has had the chance to save old values.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.config import StateGeometry


@dataclass(frozen=True)
class TickUpdatesPlan:
    """One tick's planned cell updates: parallel rows/columns/values arrays."""

    rows: np.ndarray
    columns: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if not (self.rows.shape == self.columns.shape == self.values.shape):
            raise ValueError(
                "rows, columns, and values must have identical shapes, got "
                f"{self.rows.shape}, {self.columns.shape}, {self.values.shape}"
            )

    @property
    def update_count(self) -> int:
        """Number of cell updates in the plan."""
        return int(self.rows.size)

    @classmethod
    def empty(cls, dtype) -> "TickUpdatesPlan":
        """A plan with no updates."""
        index = np.empty(0, dtype=np.int64)
        return cls(rows=index, columns=index, values=np.empty(0, dtype=dtype))


class TickApplication(ABC):
    """A deterministic tick-driven game hosted by the durable engine."""

    @property
    @abstractmethod
    def geometry(self) -> StateGeometry:
        """Shape of the state table this application needs."""

    @property
    def dtype(self):
        """Cell dtype (must match ``geometry.cell_bytes``); float32 default."""
        return np.float32

    @abstractmethod
    def initialize(self, table, rng: np.random.Generator) -> None:
        """Fill the initial game state (deterministic given ``rng``)."""

    @abstractmethod
    def plan_tick(
        self, table, rng: np.random.Generator, tick: int
    ) -> TickUpdatesPlan:
        """Plan one tick's updates without mutating the table."""

    def plan_tick_with_commands(
        self, table, rng: np.random.Generator, tick: int, commands: bytes
    ) -> TickUpdatesPlan:
        """Plan one tick given this tick's client commands.

        The durable engine logs ``commands`` verbatim in the tick's
        logical-log record and feeds the identical bytes back during replay,
        so command handling participates in deterministic recovery.  The
        default implementation ignores commands and delegates to
        :meth:`plan_tick`; interactive games override this instead.
        """
        return self.plan_tick(table, rng, tick)

    def tick_object_scope(
        self, geometry, rng: np.random.Generator, tick: int, commands: bytes
    ):
        """Atomic objects this tick's plan may read or write, or None.

        Pipelined recovery replays a tick as soon as the checkpoint regions
        it touches are resident.  An application that can predict a tick's
        object scope *without the table* (from the logged rng state and
        commands alone -- ``rng`` here is a scratch generator seeded with
        the tick's logged state, free to consume draws) returns an array of
        atomic-object ids; replay then stalls only on a true
        read-before-restore dependency.  The default returns None --
        "unknown scope" -- which makes pipelined recovery wait for full
        residency before each tick (still overlapping the restore read with
        replay of earlier, already-satisfiable ticks).
        """
        return None
