"""Tests for region-granular streaming restore on both disk organizations.

The contract under test: ``restore_image_streaming`` yields ascending,
gap-free ``(first_object_id, object_count, payload)`` regions whose
concatenation is byte-identical to the store's whole-image restore, at any
region granularity.
"""

import numpy as np
import pytest

from repro.config import StateGeometry
from repro.errors import StorageError
from repro.storage.checkpoint_log import CheckpointLogStore
from repro.storage.double_backup import (
    DoubleBackupStore,
    StreamingRestore,
)

GEOMETRY = StateGeometry(rows=64, columns=8, cell_bytes=4, object_bytes=64)


def object_payload(object_ids, fill_offset=0):
    """Distinct deterministic payload bytes for each object id."""
    rows = np.add.outer(
        np.asarray(object_ids, dtype=np.int64) * 7 + fill_offset,
        np.arange(GEOMETRY.object_bytes, dtype=np.int64),
    )
    return (rows % 251).astype(np.uint8).tobytes()


def drain(restore: StreamingRestore) -> bytes:
    """Concatenate a streaming restore, asserting region invariants."""
    image = bytearray(restore.num_objects * GEOMETRY.object_bytes)
    expected_start = 0
    for start, count, payload in restore.regions:
        assert start == expected_start, "regions must be ascending and gap-free"
        assert len(payload) == count * GEOMETRY.object_bytes
        offset = start * GEOMETRY.object_bytes
        image[offset: offset + len(payload)] = payload
        expected_start = start + count
    assert expected_start == restore.num_objects
    return bytes(image)


@pytest.fixture
def backup_store(tmp_path):
    with DoubleBackupStore(tmp_path, GEOMETRY) as store:
        yield store


@pytest.fixture
def log_store(tmp_path):
    with CheckpointLogStore(tmp_path, GEOMETRY) as store:
        yield store


def full_ids():
    return np.arange(GEOMETRY.num_objects, dtype=np.int64)


class TestDoubleBackupStreaming:
    def checkpoint_full(self, store, epoch=1, tick=9, fill=0):
        store.begin_checkpoint(epoch % 2, epoch)
        store.write_objects(full_ids(), object_payload(full_ids(), fill))
        store.commit_checkpoint(tick)

    @pytest.mark.parametrize("region_objects", [1, 3, 4, 7, 1000])
    def test_regions_concatenate_to_read_image(
        self, backup_store, region_objects
    ):
        self.checkpoint_full(backup_store)
        restore = backup_store.restore_image_streaming(region_objects)
        assert drain(restore) == backup_store.read_image(1)

    def test_streaming_metadata_matches_latest_consistent(self, backup_store):
        self.checkpoint_full(backup_store, epoch=1, tick=5)
        self.checkpoint_full(backup_store, epoch=2, tick=11, fill=3)
        restore = backup_store.restore_image_streaming()
        found = backup_store.latest_consistent()
        assert restore.epoch == found.epoch == 2
        assert restore.cut_tick == found.tick == 11
        assert restore.num_objects == GEOMETRY.num_objects
        assert drain(restore) == backup_store.read_image(found.backup_index)

    def test_invalid_region_size_rejected(self, backup_store):
        self.checkpoint_full(backup_store)
        with pytest.raises(StorageError):
            list(backup_store.read_image_regions(1, region_objects=0))


class TestCheckpointLogStreaming:
    def append_checkpoint(self, store, epoch, ids, tick, fill, full=False):
        store.begin_checkpoint(epoch, full)
        ids = np.asarray(ids, dtype=np.int64)
        store.append_objects(ids, object_payload(ids, fill))
        store.commit_checkpoint(tick)

    @pytest.mark.parametrize("region_objects", [1, 3, 4, 7, 1000])
    def test_regions_concatenate_to_restore_image(
        self, log_store, region_objects
    ):
        self.append_checkpoint(log_store, 1, full_ids(), tick=3, fill=0,
                               full=True)
        self.append_checkpoint(log_store, 2, [0, 3, 5], tick=7, fill=9)
        self.append_checkpoint(log_store, 3, [5, 6, 1], tick=12, fill=21)
        image, epoch, cut_tick = log_store.restore_image()
        restore = log_store.restore_image_streaming(region_objects)
        assert restore.epoch == epoch == 3
        assert restore.cut_tick == cut_tick == 12
        assert drain(restore) == image

    def test_last_writer_wins_across_epochs_and_runs(self, log_store):
        self.append_checkpoint(log_store, 1, full_ids(), tick=1, fill=0,
                               full=True)
        # Two runs within one checkpoint, overlapping ids: the later run's
        # version of object 2 must win.
        log_store.begin_checkpoint(2, False)
        first = np.array([2, 4], dtype=np.int64)
        second = np.array([2], dtype=np.int64)
        log_store.append_objects(first, object_payload(first, 100))
        log_store.append_objects(second, object_payload(second, 200))
        log_store.commit_checkpoint(8)
        image = drain(log_store.restore_image_streaming(3))
        size = GEOMETRY.object_bytes
        assert image[2 * size: 3 * size] == object_payload([2], 200)
        assert image[4 * size: 5 * size] == object_payload([4], 100)
        assert image[3 * size: 4 * size] == object_payload([3], 0)

    def test_uncommitted_tail_excluded(self, log_store):
        self.append_checkpoint(log_store, 1, full_ids(), tick=2, fill=0,
                               full=True)
        log_store.begin_checkpoint(2, False)
        ids = np.array([0], dtype=np.int64)
        log_store.append_objects(ids, object_payload(ids, 77))
        log_store.abort_checkpoint()
        image = drain(log_store.restore_image_streaming())
        size = GEOMETRY.object_bytes
        assert image[:size] == object_payload([0], 0)

    def test_unwritten_objects_zero_filled(self, log_store):
        # No full dump: only objects 1 and 4 ever checkpointed.
        self.append_checkpoint(log_store, 1, [1, 4], tick=0, fill=5)
        image = drain(log_store.restore_image_streaming(2))
        size = GEOMETRY.object_bytes
        assert image[1 * size: 2 * size] == object_payload([1], 5)
        assert image[0:size] == bytes(size)
        assert image[2 * size: 3 * size] == bytes(size)

    def test_invalid_region_size_rejected(self, log_store):
        self.append_checkpoint(log_store, 1, full_ids(), tick=0, fill=0,
                               full=True)
        with pytest.raises(StorageError):
            log_store.restore_image_streaming(0)
