"""The in-memory item/account tables of the persistence server.

The store holds *characters* (with a gold balance) and *items* (owned by a
character).  All mutation goes through apply-methods that the transaction
layer calls -- once at commit time on the live store, and again during
recovery when redoing the log -- so applying a committed transaction twice in
a row is impossible by construction (recovery rebuilds from a snapshot and
replays each committed transaction exactly once).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ReproError


class TransactionError(ReproError):
    """A transactional operation violated a constraint (insufficient gold,
    wrong owner, unknown character...)."""


@dataclass
class Character:
    """A player character as the persistence server sees it."""

    character_id: int
    name: str
    gold: int = 0


@dataclass
class Item:
    """A tradeable in-game item."""

    item_id: int
    kind: str
    owner_id: int


@dataclass
class ItemStore:
    """In-memory tables: characters and items, with integrity checks."""

    characters: Dict[int, Character] = field(default_factory=dict)
    items: Dict[int, Item] = field(default_factory=dict)
    #: Monotone id allocators (restored from snapshots).
    next_character_id: int = 1
    next_item_id: int = 1

    # ------------------------------------------------------------------
    # Apply-methods (called at commit and during redo)
    # ------------------------------------------------------------------

    def apply_create_character(self, character_id: int, name: str,
                               gold: int) -> None:
        if character_id in self.characters:
            raise TransactionError(f"character {character_id} already exists")
        self.characters[character_id] = Character(
            character_id=character_id, name=name, gold=gold
        )
        self.next_character_id = max(self.next_character_id, character_id + 1)

    def apply_create_item(self, item_id: int, kind: str, owner_id: int) -> None:
        if item_id in self.items:
            raise TransactionError(f"item {item_id} already exists")
        self._require_character(owner_id)
        self.items[item_id] = Item(item_id=item_id, kind=kind, owner_id=owner_id)
        self.next_item_id = max(self.next_item_id, item_id + 1)

    def apply_transfer_gold(self, from_id: int, to_id: int, amount: int) -> None:
        if amount <= 0:
            raise TransactionError(f"gold amount must be positive, got {amount}")
        sender = self._require_character(from_id)
        receiver = self._require_character(to_id)
        if sender.gold < amount:
            raise TransactionError(
                f"character {from_id} has {sender.gold} gold, needs {amount}"
            )
        sender.gold -= amount
        receiver.gold += amount

    def apply_adjust_gold(self, character_id: int, delta: int) -> None:
        """Credit or debit gold from outside the economy (quests, fees)."""
        character = self._require_character(character_id)
        if character.gold + delta < 0:
            raise TransactionError(
                f"character {character_id} has {character.gold} gold, "
                f"cannot adjust by {delta}"
            )
        character.gold += delta

    def apply_transfer_item(self, item_id: int, from_id: int,
                            to_id: int) -> None:
        item = self.items.get(item_id)
        if item is None:
            raise TransactionError(f"item {item_id} does not exist")
        if item.owner_id != from_id:
            raise TransactionError(
                f"item {item_id} belongs to {item.owner_id}, not {from_id}"
            )
        self._require_character(to_id)
        item.owner_id = to_id

    def apply_delete_item(self, item_id: int) -> None:
        if item_id not in self.items:
            raise TransactionError(f"item {item_id} does not exist")
        del self.items[item_id]

    def _require_character(self, character_id: int) -> Character:
        character = self.characters.get(character_id)
        if character is None:
            raise TransactionError(f"character {character_id} does not exist")
        return character

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def items_of(self, character_id: int) -> List[Item]:
        """All items owned by one character (sorted by id)."""
        return sorted(
            (item for item in self.items.values()
             if item.owner_id == character_id),
            key=lambda item: item.item_id,
        )

    def total_gold(self) -> int:
        """Sum of all balances -- conserved by every trade (test invariant)."""
        return sum(character.gold for character in self.characters.values())

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot_bytes(self) -> bytes:
        """Serialize the whole store (for persistence-server snapshots)."""
        payload = {
            "characters": [
                (c.character_id, c.name, c.gold)
                for c in self.characters.values()
            ],
            "items": [
                (i.item_id, i.kind, i.owner_id) for i in self.items.values()
            ],
            "next_character_id": self.next_character_id,
            "next_item_id": self.next_item_id,
        }
        return pickle.dumps(payload, protocol=4)

    @classmethod
    def from_snapshot_bytes(cls, raw: bytes) -> "ItemStore":
        """Inverse of :meth:`snapshot_bytes`."""
        payload = pickle.loads(raw)
        store = cls(
            next_character_id=payload["next_character_id"],
            next_item_id=payload["next_item_id"],
        )
        for character_id, name, gold in payload["characters"]:
            store.characters[character_id] = Character(
                character_id=character_id, name=name, gold=gold
            )
        for item_id, kind, owner_id in payload["items"]:
            store.items[item_id] = Item(
                item_id=item_id, kind=kind, owner_id=owner_id
            )
        return store

    def equals(self, other: "ItemStore") -> bool:
        """Deep equality (used by recovery tests)."""
        return (
            self.characters == other.characters
            and self.items == other.items
            and self.next_character_id == other.next_character_id
            and self.next_item_id == other.next_item_id
        )
