"""Behavioural tests for Copy-on-Update (the paper's recommended method)."""

import numpy as np

from repro.core.algorithms import CopyOnUpdate
from repro.core.plan import DiskLayout


def steady_policy(num_objects=16):
    """A policy past its two cold-start full checkpoints."""
    policy = CopyOnUpdate(num_objects)
    for _ in range(2):
        policy.begin_checkpoint()
        policy.finish_checkpoint()
    return policy


class TestCopyOnUpdate:
    def test_classification(self):
        assert not CopyOnUpdate.eager_copy
        assert CopyOnUpdate.copies_dirty_only
        assert CopyOnUpdate.layout is DiskLayout.DOUBLE_BACKUP

    def test_no_eager_copy(self):
        policy = CopyOnUpdate(16)
        plan = policy.begin_checkpoint()
        assert plan.eager_copy_ids.size == 0

    def test_copies_only_write_set_members(self):
        policy = steady_policy()
        policy.handle_updates(np.array([3]), 1)   # dirty for both backups
        policy.begin_checkpoint()                 # write set = {3}
        effects = policy.handle_updates(np.array([3, 8]), 2)
        # Both first touches lock; only the write-set member is copied.
        assert effects.lock_count == 2
        assert effects.copy_ids.tolist() == [3]

    def test_copy_once_per_checkpoint(self):
        policy = steady_policy()
        policy.handle_updates(np.array([3]), 1)
        policy.begin_checkpoint()
        first = policy.handle_updates(np.array([3]), 1)
        assert first.copy_count == 1
        second = policy.handle_updates(np.array([3]), 5)
        assert second.copy_count == 0
        assert second.lock_count == 0
        assert second.bit_tests == 5

    def test_restricts_copies_to_current_backup_dirt(self):
        """Section 5.4: Copy-on-Update copies less than Dribble because only
        objects dirtied since the current backup's last image need saving."""
        policy = steady_policy()
        policy.begin_checkpoint()              # backup 0, empty write set
        effects = policy.handle_updates(np.array([5]), 1)
        assert effects.copy_count == 0         # 5 not in this write set
        policy.finish_checkpoint()
        policy.begin_checkpoint()              # backup 1: write set = {5}
        effects = policy.handle_updates(np.array([5]), 1)
        assert effects.copy_count == 1

    def test_update_while_inactive_only_marks_dirty(self):
        policy = CopyOnUpdate(16)
        effects = policy.handle_updates(np.array([1]), 1)
        assert effects.bit_tests == 1
        assert effects.lock_count == 0
        plan = policy.begin_checkpoint()
        assert plan.writes_everything() or 1 in plan.write_ids.tolist()
