"""Persistent on-disk cache of reduced traces.

Generated traces are deterministic functions of their spec, and the
simulator only ever consumes their :class:`~repro.workloads.reduced.
PrecomputedObjectTrace` reduction -- so the reduction is cached on disk and
never computed twice, across processes *and* across runs.  Entries are
compressed ``.npz`` files named by the spec's content hash under
``~/.cache/repro-checkpoint/`` (override with ``$REPRO_CACHE_DIR`` or the
``directory`` argument / ``--cache-dir`` CLI flag).

The format is versioned; loads are corruption-tolerant (any unreadable or
inconsistent entry is deleted and treated as a miss, falling back to
regeneration); and the directory is bounded by a size-capped LRU sweep
(access order approximated by file mtimes, refreshed on every hit).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.workloads.reduced import PrecomputedObjectTrace
from repro.workloads.spec import TraceSpec

#: On-disk entry format version; mismatched entries are regenerated.
CACHE_FORMAT_VERSION = 1

#: Default size cap for the cache directory (override with
#: ``$REPRO_CACHE_MAX_BYTES`` or the ``max_bytes`` argument).
DEFAULT_MAX_BYTES = 2 * 1024**3

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or the XDG default."""
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-checkpoint"


class TraceCache:
    """Content-addressed store of trace reductions.

    The cache holds no mutable state beyond the directory itself, so
    instances are cheap, picklable, and safe to share with worker processes.
    Concurrent writers are safe: entries are written to a temporary file and
    atomically renamed, so readers only ever see complete entries (two
    processes racing on the same miss both regenerate, one rename wins).
    """

    def __init__(
        self,
        directory: Union[str, os.PathLike, None] = None,
        max_bytes: Optional[int] = None,
        enabled: bool = True,
    ) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        if max_bytes is None:
            max_bytes = int(os.environ.get(_ENV_MAX_BYTES, DEFAULT_MAX_BYTES))
        self.max_bytes = max_bytes
        self.enabled = enabled

    def path_for(self, spec: TraceSpec) -> Path:
        """The on-disk entry path for ``spec``."""
        return self.directory / f"{spec.content_key()}.npz"

    def load(self, spec: TraceSpec) -> Optional[PrecomputedObjectTrace]:
        """Return the cached reduction for ``spec``, or None on a miss.

        Unreadable, truncated, version-mismatched, or otherwise inconsistent
        entries are deleted and reported as misses.
        """
        if not self.enabled:
            return None
        path = self.path_for(spec)
        try:
            with np.load(path) as archive:
                if int(archive["version"]) != CACHE_FORMAT_VERSION:
                    raise ValueError("cache format version mismatch")
                geometry = spec.geometry
                stored_shape = archive["geometry"]
                if not np.array_equal(
                    stored_shape,
                    [geometry.rows, geometry.columns, geometry.cell_bytes,
                     geometry.object_bytes],
                ):
                    raise ValueError("cache entry geometry mismatch")
                reduced = PrecomputedObjectTrace.from_arrays(
                    geometry,
                    archive["objects"],
                    archive["offsets"],
                    archive["update_counts"],
                )
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupt or stale entry: drop it and fall back to regeneration.
            self._remove(path)
            return None
        self._touch(path)
        return reduced

    def store(self, spec: TraceSpec, reduced: PrecomputedObjectTrace) -> None:
        """Persist ``reduced`` for ``spec`` (atomic; then LRU-evict)."""
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        objects, offsets, update_counts = reduced.arrays()
        geometry = reduced.geometry
        path = self.path_for(spec)
        tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp.npz")
        try:
            np.savez_compressed(
                tmp,
                version=np.int64(CACHE_FORMAT_VERSION),
                geometry=np.array(
                    [geometry.rows, geometry.columns, geometry.cell_bytes,
                     geometry.object_bytes],
                    dtype=np.int64,
                ),
                objects=objects,
                offsets=offsets,
                update_counts=update_counts,
            )
            os.replace(tmp, path)
        finally:
            self._remove(tmp)
        self.evict()

    def get(self, spec: TraceSpec) -> Tuple[PrecomputedObjectTrace, bool]:
        """Load-or-compute: returns ``(reduction, was_cache_hit)``."""
        cached = self.load(spec)
        if cached is not None:
            return cached, True
        reduced = PrecomputedObjectTrace(spec.build())
        reduced.arrays()  # force the reduction before (and regardless of) store
        self.store(spec, reduced)
        return reduced, False

    def entries(self) -> list:
        """All complete cache entry paths (temporary files excluded)."""
        if not self.directory.is_dir():
            return []
        return [
            path
            for path in self.directory.glob("*.npz")
            if ".tmp." not in path.name
        ]

    def total_bytes(self) -> int:
        """Total size of all cache entries in bytes."""
        return sum(self._size(path) for path in self.entries())

    def evict(self) -> int:
        """Delete least-recently-used entries until under the size cap.

        Returns the number of entries removed.  The most recently used entry
        is always kept, even if it alone exceeds the cap.
        """
        entries = sorted(self.entries(), key=self._mtime)
        total = sum(self._size(path) for path in entries)
        removed = 0
        while total > self.max_bytes and len(entries) > 1:
            oldest = entries.pop(0)
            total -= self._size(oldest)
            self._remove(oldest)
            removed += 1
        return removed

    def clear(self) -> None:
        """Delete every cache entry."""
        for path in self.entries():
            self._remove(path)

    @staticmethod
    def _size(path: Path) -> int:
        try:
            return path.stat().st_size
        except OSError:
            return 0

    @staticmethod
    def _mtime(path: Path) -> float:
        try:
            return path.stat().st_mtime
        except OSError:
            return 0.0

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path)
        except OSError:
            pass  # LRU freshness is best-effort

    @staticmethod
    def _remove(path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
