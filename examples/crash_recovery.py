#!/usr/bin/env python
"""Crash a live game server and recover it, bit for bit.

Runs the Knights and Archers game inside the durable engine with real
checkpoint files and a real logical log, kills the server mid-battle, then
recovers: the restored state is verified cell-for-cell against an identical
server that never crashed.

Usage::

    python examples/crash_recovery.py [algorithm] [ticks]

where ``algorithm`` is any of: naive-snapshot, dribble, atomic-copy,
partial-redo, copy-on-update (default), cou-partial-redo.
"""

import sys
import tempfile

from repro.engine import DurableGameServer, RecoveryManager
from repro.game import BattleReport, BattleScenario, KnightsArchersGame
from repro.units import format_bytes


def main() -> None:
    algorithm = sys.argv[1] if len(sys.argv) > 1 else "copy-on-update"
    ticks = int(sys.argv[2]) if len(sys.argv) > 2 else 150
    scenario = BattleScenario(num_units=4_096)
    seed = 2_009

    with tempfile.TemporaryDirectory(prefix="repro-crash-") as reference_dir, \
            tempfile.TemporaryDirectory(prefix="repro-crash-") as crash_dir:
        print(f"running two identical servers with {algorithm} for {ticks} ticks")
        reference = DurableGameServer(
            KnightsArchersGame(scenario), reference_dir,
            algorithm=algorithm, seed=seed,
        )
        reference.run_ticks(ticks)

        victim = DurableGameServer(
            KnightsArchersGame(scenario), crash_dir,
            algorithm=algorithm, seed=seed,
        )
        victim.run_ticks(ticks)
        stats = victim.stats
        print(
            f"victim server: {stats.ticks_run} ticks, "
            f"{stats.updates_applied:,} updates, "
            f"{stats.checkpoints_completed} checkpoints durable, "
            f"{format_bytes(stats.bytes_written)} written"
        )
        last_checkpoint = victim.last_committed_checkpoint_tick
        print(f"newest durable checkpoint cut: tick {last_checkpoint}")

        print("\n*** CRASH ***  (abandoning all in-memory state)\n")
        victim.crash()

        report = RecoveryManager(
            KnightsArchersGame(scenario), crash_dir, seed=seed
        ).recover()
        print(
            f"recovery: restored checkpoint epoch {report.checkpoint_epoch} "
            f"(cut tick {report.checkpoint_tick}), replayed "
            f"{report.ticks_replayed} ticks from the logical log"
        )

        exact = report.table.equals(reference.table)
        print(f"recovered state identical to the crash-free run: {exact}")
        if not exact:
            raise SystemExit("recovery mismatch -- this is a bug")
        print("\nscoreboard of the recovered world:")
        print(BattleReport.from_table(report.table).describe())
        reference.close()


if __name__ == "__main__":
    main()
