"""Deterministic bot clients for load-driving the full stack.

A :class:`BotSwarm` stands in for the paper's "tens of thousands of users":
every tick each bot may issue a game command (heal, teleport, log in/out)
through the front end, and occasionally requests an ACID trade.  All
randomness flows through one seeded generator, so a swarm-driven run is
reproducible end to end.

The swarm drives the surface both front ends share --
``connect`` / ``send_command`` / ``run_tick`` / ``geometry`` -- so the same
swarm runs against a single-shard
:class:`~repro.frontend.connection.ConnectionServer` or a fleet-wide
:class:`~repro.frontend.gateway.FrontDoor` unchanged.  Trades ride along
only where the front end exposes ``request_trade`` (the single-shard
server); command rejections of any typed flavor (rate limit, pending
bound, backpressure) count as drops, exactly what a flooded client sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import BackpressureError
from repro.frontend.sessions import SessionError
from repro.persistence.store import TransactionError


@dataclass
class BotClient:
    """One scripted player."""

    session_id: int
    #: Game-world unit this bot "plays" (for unit-targeted commands).
    unit_id: int
    #: Persistence-server character id, when the bot owns an account.
    character_id: Optional[int] = None


class BotSwarm:
    """A fleet of bots driving one front end (connection server or gateway)."""

    def __init__(
        self,
        connection,
        num_bots: int,
        seed: int = 0,
        command_probability: float = 0.3,
        trade_probability: float = 0.02,
        open_accounts: bool = True,
        starting_gold: int = 200,
    ) -> None:
        if num_bots < 1:
            raise SessionError(f"need at least one bot, got {num_bots}")
        self._connection = connection
        self._rng = np.random.default_rng(seed)
        self._command_probability = command_probability
        self._trade_probability = trade_probability
        self._can_trade = (open_accounts
                           and hasattr(connection, "request_trade")
                           and hasattr(connection, "shard"))
        self.commands_attempted = 0
        self.commands_dropped = 0
        self.trades_attempted = 0
        self.trades_completed = 0

        geometry = connection.geometry
        self.bots: List[BotClient] = []
        for index in range(num_bots):
            granted = connection.connect(f"bot-{index}")
            session_id = getattr(granted, "session_id", granted)
            unit_id = int(self._rng.integers(0, geometry.rows))
            character_id = None
            if self._can_trade:
                persistence = connection.shard.persistence
                character_id = persistence.create_character(
                    f"bot-{index}", gold=starting_gold
                )
                persistence.grant_item(character_id, "starter-token")
            self.bots.append(
                BotClient(
                    session_id=session_id,
                    unit_id=unit_id,
                    character_id=character_id,
                )
            )

    def _random_command(self, bot: BotClient) -> bytes:
        geometry = self._connection.geometry
        roll = self._rng.random()
        if roll < 0.4:
            return f"heal:{bot.unit_id}".encode()
        if roll < 0.7:
            x = self._rng.random() * 100.0
            y = self._rng.random() * 100.0
            return f"teleport:{bot.unit_id}:{x:.1f}:{y:.1f}".encode()
        if roll < 0.85:
            return f"activate:{bot.unit_id}".encode()
        target = int(self._rng.integers(0, geometry.rows))
        return f"deactivate:{target}".encode()

    def _maybe_trade(self, bot: BotClient) -> None:
        if bot.character_id is None:
            return
        partner = self.bots[int(self._rng.integers(0, len(self.bots)))]
        if partner.character_id is None or partner is bot:
            return
        store = self._connection.shard.persistence.store
        inventory = store.items_of(bot.character_id)
        if not inventory:
            return
        item = inventory[0]
        price = int(self._rng.integers(1, 50))
        self.trades_attempted += 1
        try:
            self._connection.request_trade(
                bot.session_id, item.item_id,
                seller_id=bot.character_id,
                buyer_id=partner.character_id,
                price=price,
            )
            self.trades_completed += 1
        except TransactionError:
            pass  # buyer broke; the economy rejected it atomically

    def play_tick(self):
        """Let every bot act, then advance the front end one tick."""
        for bot in self.bots:
            if self._rng.random() < self._command_probability:
                self.commands_attempted += 1
                try:
                    self._connection.send_command(
                        bot.session_id, self._random_command(bot)
                    )
                except (SessionError, BackpressureError):
                    self.commands_dropped += 1
            if self._rng.random() < self._trade_probability:
                self._maybe_trade(bot)
        return self._connection.run_tick()

    def play_ticks(self, count: int) -> None:
        """Run several swarm-driven ticks."""
        for _ in range(count):
            self.play_tick()
