"""Recovery-time scale-up: serial vs pipelined intra-shard recovery.

Measures wall-clock crash recovery against shard size (64k to one million
atomic objects) for both disk organizations, comparing the paper's serial
``dT_restore + dT_replay`` model against the pipelined mode that overlaps
the restore read with logical-log replay.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_recovery.py --smoke

Results merge into ``BENCH_engine.json`` under the ``recovery_scale`` key
(read-modify-write, so the engine benchmark's sections survive).

Methodology notes:

* Every timed recovery starts **cold**: each file in the shard directory is
  fsynced and its page cache dropped (``posix_fadvise(POSIX_FADV_DONTNEED)``)
  first, so the restore read pays real disk I/O instead of a page-cache
  memcpy.  On a single-core host that I/O wait is exactly the slack the
  pipelined mode can hide replay compute in.
* The workload (:class:`RegionSweepApp`) processes the world in round-robin
  region order, one block of objects per tick -- the sweep shape of MMO
  AI/physics loops.  Its ``tick_object_scope`` derives the block from the
  tick alone, so pipelined replay knows each tick's touch set exactly.
* The checkpoint cut is placed so replay's first tick starts at block 0 --
  replay then chases the ascending restore stream, the favourable-locality
  case the pipeline is built for; ``stall_count`` in the output shows how
  often it still blocked.

The pytest wrapper at the bottom keeps the original whole-experiment
recovery benchmark runnable under ``pytest benchmarks``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.config import StateGeometry  # noqa: E402
from repro.engine.app import TickApplication, TickUpdatesPlan  # noqa: E402
from repro.engine.recovery import RecoveryManager  # noqa: E402
from repro.state.table import GameStateTable  # noqa: E402
from repro.storage.action_log import ActionLog, TickRecord  # noqa: E402
from repro.storage.checkpoint_log import CheckpointLogStore  # noqa: E402
from repro.storage.double_backup import DoubleBackupStore  # noqa: E402

#: Shard sizes (atomic objects) for the full sweep and the CI smoke run.
FULL_SIZES = [65536, 262144, 1048576]
SMOKE_SIZES = [16384, 65536]

#: 128-byte objects, 8 float32 columns -> 4 rows per object; one million
#: objects is a 128 MiB checkpoint image.
OBJECT_BYTES = 128
COLUMNS = 8
CELL_BYTES = 4

#: Objects per sweep block and sampled rows updated per tick.
BLOCK_OBJECTS = 2048
ROWS_PER_TICK = 1024

#: Logged ticks replayed after the checkpoint cut.
REPLAY_TICKS = 192
SMOKE_REPLAY_TICKS = 48

STORES = ("double_backup", "log")


def geometry_for(num_objects: int) -> StateGeometry:
    rows_per_object = OBJECT_BYTES // (COLUMNS * CELL_BYTES)
    return StateGeometry(
        rows=num_objects * rows_per_object,
        columns=COLUMNS,
        cell_bytes=CELL_BYTES,
        object_bytes=OBJECT_BYTES,
    )


class RegionSweepApp(TickApplication):
    """World processed in round-robin region order, one block per tick.

    Tick ``t`` reads and updates a deterministic sample of rows inside
    object block ``t % num_blocks``.  Because the touched block is a pure
    function of the tick number, :meth:`tick_object_scope` needs no rng
    draws at all -- it returns the block's object range as a (conservative,
    exact-superset) touch set.
    """

    def __init__(self, geometry: StateGeometry,
                 block_objects: int = BLOCK_OBJECTS,
                 rows_per_tick: int = ROWS_PER_TICK):
        self._geometry = geometry
        self._block_objects = block_objects
        self._rows_per_object = OBJECT_BYTES // (COLUMNS * CELL_BYTES)
        self._num_blocks = -(-geometry.num_objects // block_objects)
        self._rows_per_tick = rows_per_tick

    @property
    def geometry(self) -> StateGeometry:
        return self._geometry

    @property
    def dtype(self):
        return np.float32

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    def _block_span(self, tick: int):
        """(first_object, object_count) of the block tick ``tick`` sweeps."""
        block = tick % self._num_blocks
        first = block * self._block_objects
        count = min(self._block_objects, self._geometry.num_objects - first)
        return first, count

    def initialize(self, table, rng: np.random.Generator) -> None:
        table.cells[:] = rng.random(table.cells.shape, dtype=np.float32)

    def plan_tick(self, table, rng: np.random.Generator, tick: int):
        first_object, object_count = self._block_span(tick)
        first_row = first_object * self._rows_per_object
        block_rows = object_count * self._rows_per_object
        n = min(self._rows_per_tick, block_rows)
        rows = first_row + (np.arange(n, dtype=np.int64) * block_rows) // n
        columns = rng.integers(0, self._geometry.columns, n)
        values = (
            table.cells[rows, columns] * np.float32(0.5) + rng.random(n)
        ).astype(np.float32)
        return TickUpdatesPlan(rows=rows, columns=columns, values=values)

    def tick_object_scope(self, geometry, rng, tick, commands):
        first_object, object_count = self._block_span(tick)
        return np.arange(
            first_object, first_object + object_count, dtype=np.int64
        )


def evict_page_cache(directory: str) -> None:
    """Drop the page cache for every file under ``directory``.

    Dirty pages are flushed first (``POSIX_FADV_DONTNEED`` only discards
    clean pages), so the next read of these files goes to the device.
    """
    for name in sorted(os.listdir(directory)):
        path = os.path.join(directory, name)
        if not os.path.isfile(path):
            continue
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
            if hasattr(os, "posix_fadvise"):
                os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
        finally:
            os.close(fd)


def build_crashed_shards(workdir: str, num_objects: int, replay_ticks: int,
                         seed: int):
    """Simulate one shard, checkpoint it on both stores, leave a log tail.

    Runs one :class:`RegionSweepApp` history and materializes it twice:

    * ``double_backup/`` -- full image checkpointed at the cut tick;
    * ``log/`` -- a full dump half a sweep *before* the cut plus an
      incremental checkpoint (the re-dirtied half) at the cut, so its
      restore exercises the multi-run last-writer-wins path.

    The cut is the last tick of a whole sweep, so replay (``replay_ticks``
    logged ticks) starts at block 0 and ascends with the restore stream.
    Returns ``(app, directories, live_table, next_tick)`` where
    ``live_table`` is the crash-time reference state.
    """
    geometry = geometry_for(num_objects)
    app = RegionSweepApp(geometry)
    cut_tick = app.num_blocks - 1
    dump_tick = max(0, cut_tick - app.num_blocks // 2)
    total_ticks = cut_tick + 1 + replay_ticks

    directories = {
        store: os.path.join(workdir, f"n{num_objects}-{store}")
        for store in STORES
    }
    for directory in directories.values():
        os.makedirs(directory, exist_ok=True)

    table = GameStateTable(geometry, dtype=app.dtype)
    rng = np.random.default_rng(seed)
    app.initialize(table, rng)

    dump_image = None
    cut_image = None
    with ActionLog(directories["double_backup"]) as log:
        for tick in range(total_ticks):
            record = TickRecord(tick=tick, rng_state=rng.bit_generator.state)
            plan = app.plan_tick(table, rng, tick)
            table.apply_updates(plan.rows, plan.columns, plan.values)
            log.append(record)
            if tick == dump_tick:
                dump_image = table.full_image()
            if tick == cut_tick:
                cut_image = table.full_image()
    shutil.copy(
        os.path.join(directories["double_backup"], ActionLog.FILE_NAME),
        os.path.join(directories["log"], ActionLog.FILE_NAME),
    )

    all_ids = np.arange(num_objects, dtype=np.int64)
    with DoubleBackupStore(directories["double_backup"], geometry) as store:
        store.begin_checkpoint(0, epoch=1)
        store.write_checkpoint_vectored([(all_ids, cut_image)], cut_tick)

    # Objects re-dirtied between the dump and the cut: the contiguous block
    # range (dump_tick, cut_tick], at their cut-time versions.
    first_dirty = ((dump_tick + 1) % app.num_blocks) * BLOCK_OBJECTS
    dirty_ids = np.arange(first_dirty, num_objects, dtype=np.int64)
    with CheckpointLogStore(directories["log"], geometry) as store:
        store.begin_checkpoint(1, is_full_dump=True)
        store.write_checkpoint_vectored([(all_ids, dump_image)], dump_tick)
        store.begin_checkpoint(2, is_full_dump=False)
        store.write_checkpoint_vectored(
            [(dirty_ids, cut_image[first_dirty * OBJECT_BYTES:])], cut_tick
        )

    return app, directories, table, total_ticks


def timed_recovery(app, directory: str, mode: str, seed: int):
    """One cold-cache recovery; returns the report."""
    evict_page_cache(directory)
    return RecoveryManager(app, directory, seed=seed, mode=mode).recover()


def summarize(reports) -> dict:
    """Median-of-runs summary of a list of same-mode RecoveryReports."""
    last = reports[-1]
    summary = {
        "wall_seconds": statistics.median(
            r.recovery_seconds for r in reports
        ),
        "restore_seconds": statistics.median(
            r.restore_seconds for r in reports
        ),
        "replay_seconds": statistics.median(
            r.replay_seconds for r in reports
        ),
        "ticks_replayed": last.ticks_replayed,
        "bytes_restored": last.bytes_restored,
    }
    if last.mode == "pipelined":
        summary["replay_overlap_seconds"] = statistics.median(
            r.replay_overlap_seconds for r in reports
        )
        summary["stall_count"] = last.stall_count
    return summary


def run_point(workdir: str, num_objects: int, replay_ticks: int, seed: int,
              repeats: int):
    """Benchmark one shard size on both stores; yields one point per store."""
    app, directories, live_table, next_tick = build_crashed_shards(
        workdir, num_objects, replay_ticks, seed
    )
    for store in STORES:
        directory = directories[store]
        runs = {"serial": [], "pipelined": []}
        for _ in range(repeats):
            for mode in ("serial", "pipelined"):
                runs[mode].append(
                    timed_recovery(app, directory, mode, seed)
                )
        serial, pipelined = runs["serial"][-1], runs["pipelined"][-1]
        bit_identical = (
            serial.table.equals(live_table)
            and pipelined.table.equals(serial.table)
            and serial.next_tick == pipelined.next_tick == next_tick
        )
        point = {
            "store": store,
            "num_objects": num_objects,
            "image_bytes": num_objects * OBJECT_BYTES,
            "replay_ticks": replay_ticks,
            "serial": summarize(runs["serial"]),
            "pipelined": summarize(runs["pipelined"]),
            "bit_identical": bool(bit_identical),
        }
        point["speedup"] = (
            point["serial"]["wall_seconds"]
            / point["pipelined"]["wall_seconds"]
            if point["pipelined"]["wall_seconds"] > 0 else 0.0
        )
        yield point
    # Free the 3 images before the next (possibly 4x larger) size.
    del live_table


def merge_results(out_path: str, section: dict) -> None:
    """Insert the recovery_scale section into BENCH_engine.json in place."""
    results = {}
    if os.path.exists(out_path):
        with open(out_path) as handle:
            results = json.load(handle)
    results["recovery_scale"] = section
    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Recovery time vs shard size, serial vs pipelined"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI (16k/64k objects)")
    parser.add_argument("--sizes", type=str, default=None,
                        help="comma-separated object counts (overrides "
                             "--smoke)")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="results JSON to merge into (default "
                             "BENCH_engine.json)")
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a temp dir)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed recoveries per (size, store, mode); "
                             "the median is reported")
    parser.add_argument("--replay-ticks", type=int, default=None,
                        help="logged ticks replayed after the cut")
    args = parser.parse_args(argv)

    if args.sizes:
        sizes = [int(part) for part in args.sizes.split(",")]
    else:
        sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    replay_ticks = args.replay_ticks
    if replay_ticks is None:
        replay_ticks = SMOKE_REPLAY_TICKS if args.smoke else REPLAY_TICKS

    section = {
        "config": {
            "sizes": sizes,
            "object_bytes": OBJECT_BYTES,
            "block_objects": BLOCK_OBJECTS,
            "rows_per_tick": ROWS_PER_TICK,
            "replay_ticks": replay_ticks,
            "repeats": args.repeats,
            "seed": args.seed,
            "cold_cache": hasattr(os, "posix_fadvise"),
            "smoke": bool(args.smoke),
        },
        "points": [],
    }

    def sweep(workdir: str) -> None:
        for num_objects in sizes:
            mib = num_objects * OBJECT_BYTES / 2 ** 20
            print(f"[recovery-scale] {num_objects} objects "
                  f"({mib:.0f} MiB image), replay={replay_ticks} ticks")
            for point in run_point(workdir, num_objects, replay_ticks,
                                   args.seed, args.repeats):
                serial = point["serial"]["wall_seconds"]
                pipelined = point["pipelined"]["wall_seconds"]
                print(f"  {point['store']:>13}: serial {serial * 1e3:8.1f} ms"
                      f"  pipelined {pipelined * 1e3:8.1f} ms"
                      f"  speedup {point['speedup']:.2f}x"
                      f"  stalls {point['pipelined'].get('stall_count', 0)}"
                      f"  identical={point['bit_identical']}")
                section["points"].append(point)

    if args.workdir:
        os.makedirs(args.workdir, exist_ok=True)
        sweep(args.workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="bench-recovery-") as workdir:
            sweep(workdir)

    largest = max(sizes)
    section["pipelined_wins_at_max"] = {
        store: any(
            point["num_objects"] == largest and point["speedup"] > 1.0
            for point in section["points"] if point["store"] == store
        )
        for store in STORES
    }
    merge_results(args.out, section)
    print(f"wrote recovery_scale section to {args.out}")

    failures = [p for p in section["points"] if not p["bit_identical"]]
    if failures:
        print("::error title=Recovery mismatch::pipelined recovery diverged "
              f"from serial on {len(failures)} point(s)")
        return 2
    if not args.smoke and not any(section["pipelined_wins_at_max"].values()):
        print("::warning title=Recovery benchmark::pipelined recovery did "
              f"not beat serial at {largest} objects on either store")
        return 1
    return 0


# ----------------------------------------------------------------------
# pytest wrapper (the original whole-experiment recovery benchmark)
# ----------------------------------------------------------------------


def test_engine_recovery(benchmark, bench_scale, report_sink):
    """Crash + recover the real engine under all six algorithms."""
    from conftest import run_once

    from repro.experiments import engine_recovery

    result = run_once(benchmark, engine_recovery.run, bench_scale)
    report_sink("engine_recovery", result.render())
    raw = result.raw
    for key, metrics in raw.items():
        assert metrics["exact"], f"{key} did not recover bit-exactly"
        assert metrics["recovery_s"] > 0
    # The log-organized methods really do scan their log at restore; the
    # double-backup pair of the paper's recommendation reads one image.
    assert raw["copy-on-update"]["restore_s"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
