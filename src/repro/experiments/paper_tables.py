"""Tables 1-5 of the paper, regenerated from the implementation.

Tables 1 and 2 are *derived from the algorithm classes* (not hard-coded
prose), so they double as a check that the implementation's structure matches
the paper's design space.  Table 3 prints the cost-model defaults (optionally
alongside host-measured values), Table 4 the synthetic workload parameters,
and Table 5 a fresh characterization of the game trace.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import TextTable
from repro.config import PAPER_GEOMETRY, PAPER_HARDWARE, HardwareParameters
from repro.core.plan import DiskLayout
from repro.core.registry import all_algorithm_classes
from repro.experiments.common import (
    ExperimentScale,
    FigureResult,
    FULL_SCALE,
    SKEW_SWEEP,
    UPDATES_PER_TICK_SWEEP,
)
from repro.units import format_duration, format_rate
from repro.workloads.gamelike import GameLikeTrace
from repro.workloads.stats import TraceStatistics


def run_table1(scale: ExperimentScale = FULL_SCALE) -> FigureResult:
    """Table 1: the design space of checkpointing algorithms."""
    table = TextTable(
        "Table 1: algorithms for checkpointing game state",
        ["algorithm", "in-memory copy", "objects copied", "disk organization"],
    )
    for cls in all_algorithm_classes():
        table.add_row(
            [
                cls.name,
                "eager" if cls.eager_copy else "copy on update",
                "dirty" if cls.copies_dirty_only else "all",
                "double backup"
                if cls.layout is DiskLayout.DOUBLE_BACKUP
                else "log",
            ]
        )
    return FigureResult(
        experiment_id="table1",
        description="Design-space classification, derived from the classes",
        tables=[table],
        raw={
            cls.key: {
                "eager": cls.eager_copy,
                "dirty_only": cls.copies_dirty_only,
                "layout": cls.layout.value,
            }
            for cls in all_algorithm_classes()
        },
    )


def run_table2(scale: ExperimentScale = FULL_SCALE) -> FigureResult:
    """Table 2: subroutine implementations per algorithm."""
    subroutines = [
        "Copy-To-Memory",
        "Write-Copies-To-Stable-Storage",
        "Handle-Update",
        "Write-Objects-To-Stable-Storage",
    ]
    table = TextTable(
        "Table 2: subroutine implementations for the checkpointing framework",
        ["algorithm"] + subroutines,
        align_right=[False] * 5,
    )
    for cls in all_algorithm_classes():
        table.add_row([cls.name] + [cls.SUBROUTINES[name] for name in subroutines])
    return FigureResult(
        experiment_id="table2",
        description="Framework subroutine map, derived from the classes",
        tables=[table],
        raw={cls.key: dict(cls.SUBROUTINES) for cls in all_algorithm_classes()},
    )


def run_table3(
    scale: ExperimentScale = FULL_SCALE,
    measured: Optional[HardwareParameters] = None,
) -> FigureResult:
    """Table 3: cost-estimation parameters (paper defaults, optionally with
    this host's measured values alongside)."""
    columns = ["parameter", "notation", "paper setting"]
    if measured is not None:
        columns.append("this host")
    table = TextTable("Table 3: parameters for cost estimation", columns)
    hardware = PAPER_HARDWARE
    rows = [
        ("Tick Frequency", "Ftick", f"{hardware.tick_frequency_hz:g} Hz",
         f"{measured.tick_frequency_hz:g} Hz" if measured else None),
        ("Atomic Object Size", "Sobj", f"{PAPER_GEOMETRY.object_bytes} bytes",
         f"{PAPER_GEOMETRY.object_bytes} bytes" if measured else None),
        ("Memory Bandwidth", "Bmem", format_rate(hardware.memory_bandwidth),
         format_rate(measured.memory_bandwidth) if measured else None),
        ("Memory Latency", "Omem", format_duration(hardware.memory_latency),
         format_duration(measured.memory_latency) if measured else None),
        ("Lock overhead", "Olock", format_duration(hardware.lock_overhead),
         format_duration(measured.lock_overhead) if measured else None),
        ("Bit test/set overhead", "Obit",
         format_duration(hardware.bit_test_overhead),
         format_duration(measured.bit_test_overhead) if measured else None),
        ("Disk Bandwidth", "Bdisk", format_rate(hardware.disk_bandwidth),
         format_rate(measured.disk_bandwidth) if measured else None),
    ]
    for name, notation, paper_value, host_value in rows:
        row = [name, notation, paper_value]
        if measured is not None:
            row.append(host_value)
        table.add_row(row)
    return FigureResult(
        experiment_id="table3",
        description="Cost-model constants",
        tables=[table],
        raw={"paper": hardware.__dict__},
    )


def run_table4(scale: ExperimentScale = FULL_SCALE) -> FigureResult:
    """Table 4: parameter settings of the Zipfian update traces."""
    table = TextTable(
        "Table 4: parameter settings used in the Zipfian-generated traces",
        ["parameter", "setting"],
    )
    sweep = ", ".join(f"{value:,}" for value in UPDATES_PER_TICK_SWEEP)
    skews = ", ".join(f"{value:g}" for value in SKEW_SWEEP)
    table.add_row(["number of ticks", "1,000 (paper) / "
                   f"{scale.num_ticks} + {scale.warmup_ticks} warmup (here)"])
    table.add_row(["number of table cells", f"{PAPER_GEOMETRY.num_cells:,}"])
    table.add_row(["number of updates per tick", f"{sweep} (default 64,000)"])
    table.add_row(["skew of update distribution", f"{skews} (default 0.8)"])
    return FigureResult(
        experiment_id="table4",
        description="Synthetic workload parameters",
        tables=[table],
        raw={
            "updates_sweep": list(UPDATES_PER_TICK_SWEEP),
            "skew_sweep": list(SKEW_SWEEP),
            "cells": PAPER_GEOMETRY.num_cells,
        },
    )


def run_table5(scale: ExperimentScale = FULL_SCALE, seed: int = 0) -> FigureResult:
    """Table 5: characteristics of the prototype-game update trace."""
    trace = GameLikeTrace(num_ticks=min(scale.num_ticks, 120), seed=seed)
    stats = TraceStatistics.from_trace(trace)
    table = TextTable(
        "Table 5: characteristics of the update trace from the game server",
        ["parameter", "setting", "paper"],
    )
    table.add_row(["number of units", f"{trace.geometry.rows:,}", "400,128"])
    table.add_row(
        ["number of attributes per unit", trace.geometry.columns, "13"]
    )
    table.add_row(["number of ticks", f"{stats.num_ticks:,}", "1,000"])
    table.add_row(
        [
            "avg. number of updates per tick",
            f"{stats.avg_updates_per_tick:,.0f}",
            "35,590",
        ]
    )
    table.add_note(
        "generated by the statistical game-trace model; see fig5 with "
        "source='game' for a genuine instrumented battle"
    )
    return FigureResult(
        experiment_id="table5",
        description="Game-trace characteristics",
        tables=[table],
        raw={"avg_updates_per_tick": stats.avg_updates_per_tick},
    )
