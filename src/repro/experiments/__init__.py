"""Experiment drivers reproducing every table and figure of the paper.

Each module exposes a ``run(scale)`` function returning a
:class:`~repro.experiments.common.FigureResult` whose ``render()`` prints the
same rows/series the paper reports, annotated with the paper's published
values for comparison.  ``python -m repro.experiments <id>`` runs any of them
from the command line; the pytest benchmarks in ``benchmarks/`` wrap the same
functions.
"""

from repro.experiments.common import (
    FULL_SCALE,
    QUICK_SCALE,
    ExperimentScale,
    FigureResult,
)
from repro.experiments.registry import EXPERIMENT_IDS, run_experiment

__all__ = [
    "EXPERIMENT_IDS",
    "ExperimentScale",
    "FULL_SCALE",
    "FigureResult",
    "QUICK_SCALE",
    "run_experiment",
]
