"""Copy-on-Update: the paper's recommended algorithm.

"We can also refine Dribble-and-Copy-on-Update to copy only dirty objects
[7, 29].  In this algorithm the in-memory copies are performed on update,
and an object is copied only when it is first updated.  We use a
double-backup structure on disk as in Atomic-Copy-Dirty-Objects."
(Section 3.2.)

The paper's Section 8 recommendation: "The best method in terms of both
latency and recovery time is Copy-on-Update.  This method combines
checkpointing of dirty objects with copy on update and a double-backup
organization."

Per update the method tests a dirty bit (``Obit``); on the first touch of an
object within a checkpoint it acquires a lock (``Olock``) and, if the object
belongs to the checkpoint's write set -- i.e. it was "dirtied since the last
consistent image of the backup currently being written" (Section 5.4) -- it
copies the old value in memory so the asynchronous writer still sees the
checkpoint-consistent version.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import CheckpointPlan, DiskLayout, UpdateEffects, empty_ids
from repro.core.policy import CheckpointPolicy
from repro.state.dirty import DoubleBackupBits, EpochSet


class CopyOnUpdate(CheckpointPolicy):
    """Copy-on-update of dirty objects; double-backup disk organization."""

    key = "copy-on-update"
    name = "Copy-on-Update"
    eager_copy = False
    copies_dirty_only = True
    layout = DiskLayout.DOUBLE_BACKUP
    SUBROUTINES = {
        "Copy-To-Memory": "No-op",
        "Write-Copies-To-Stable-Storage": "No-op",
        "Handle-Update": "First touched, dirty",
        "Write-Objects-To-Stable-Storage": "Dirty objects, double backup",
    }

    def __init__(self, num_objects: int, full_dump_period: int = 9) -> None:
        super().__init__(num_objects, full_dump_period)
        self._bits = DoubleBackupBits(num_objects)
        self._touched = EpochSet(num_objects)
        self._write_mask = np.zeros(num_objects, dtype=bool)

    def _begin(self, checkpoint_index: int) -> CheckpointPlan:
        write_set = self._bits.begin_checkpoint()
        self._write_mask.fill(False)
        self._write_mask[write_set] = True
        self._touched.reset()
        return CheckpointPlan(
            checkpoint_index=checkpoint_index,
            eager_copy_ids=empty_ids(),
            write_ids=write_set,
            layout=self.layout,
        )

    def _finish(self) -> None:
        self._bits.finish_checkpoint()

    def _handle(self, unique_objects: np.ndarray, update_count: int) -> UpdateEffects:
        self._bits.mark_updated(unique_objects)
        if not self.checkpoint_active:
            return UpdateEffects(
                bit_tests=update_count,
                first_touch_ids=empty_ids(),
                copy_ids=empty_ids(),
            )
        fresh = self._touched.add_new(unique_objects)
        copies = fresh[self._write_mask[fresh]]
        return UpdateEffects(
            bit_tests=update_count, first_touch_ids=fresh, copy_ids=copies
        )
