"""Tests for the bot-client load driver and the full Figure 1 stack."""

import pytest

from repro.engine.recovery import RecoveryManager
from repro.engine.shard import MMOShard
from repro.frontend.clients import BotSwarm
from repro.frontend.connection import ConnectionServer, SessionError
from repro.game.knights_archers import KnightsArchersGame
from repro.game.scenario import BattleScenario


def build_stack(tmp_path, seed=6, num_bots=12):
    scenario = BattleScenario(num_units=512)
    shard = MMOShard(KnightsArchersGame(scenario), tmp_path, seed=seed)
    connection = ConnectionServer(shard, commands_per_tick_limit=4)
    swarm = BotSwarm(connection, num_bots=num_bots, seed=seed)
    return scenario, shard, connection, swarm


class TestBotSwarm:
    def test_swarm_connects_and_plays(self, tmp_path):
        _scenario, shard, connection, swarm = build_stack(tmp_path)
        swarm.play_ticks(20)
        assert shard.game.ticks_run == 20
        assert connection.stats.commands_routed > 0
        assert swarm.commands_attempted >= connection.stats.commands_routed
        shard.close()

    def test_accounts_and_trades(self, tmp_path):
        _scenario, shard, _connection, swarm = build_stack(tmp_path)
        swarm.play_ticks(40)
        store = shard.persistence.store
        assert len(store.characters) == len(swarm.bots)
        # Gold is conserved no matter how many trades happened.
        assert store.total_gold() == 200 * len(swarm.bots)
        if swarm.trades_completed:
            assert shard.persistence.last_transaction_id > 2 * len(swarm.bots)
        shard.close()

    def test_needs_a_bot(self, tmp_path):
        _scenario, shard, connection, _swarm = build_stack(tmp_path)
        with pytest.raises(SessionError):
            BotSwarm(connection, num_bots=0)
        shard.close()


class TestFullStackRecovery:
    def test_swarm_driven_shard_recovers_exactly(self, tmp_path):
        """The complete Figure 1 stack under bot load, crashed and
        recovered: commands were durably logged, so the world replays."""
        scenario = BattleScenario(num_units=512)
        seed = 6

        def run(directory):
            shard = MMOShard(KnightsArchersGame(scenario), directory,
                             seed=seed)
            connection = ConnectionServer(shard, commands_per_tick_limit=4)
            swarm = BotSwarm(connection, num_bots=10, seed=seed)
            swarm.play_ticks(45)
            return shard

        reference = run(tmp_path / "ref")
        victim = run(tmp_path / "victim")
        victim.crash()

        report = RecoveryManager(
            KnightsArchersGame(scenario),
            (tmp_path / "victim" / "game"),
            seed=seed,
        ).recover()
        assert report.table.equals(reference.game.table)
        reference.close()
