#!/usr/bin/env python
"""Serve live TCP traffic through the gateway, kill a shard mid-load.

Boots a two-shard fleet behind the asyncio front door, drives closed-loop
clients against it, SIGKILLs one shard a third of the way through the run,
and prints what players observed: sustained commands/second, p50/p99
command-to-apply latency, shard-down rejections, and re-placements.  The
survivor shard never stops serving.

Usage::

    python examples/gateway_loadgen.py [clients] [seconds]

Defaults: 8 clients per available core, 5 seconds of load.
"""

import asyncio
import multiprocessing
import sys
import tempfile

from repro.cpu import available_cpu_count
from repro.engine.fleet import ShardFleet
from repro.frontend import FrontDoor, GatewayServer, LoadGenerator
from repro.game import BattleScenario, KnightsArchersGame

NUM_SHARDS = 2


def main() -> None:
    cpus = available_cpu_count()
    clients = int(sys.argv[1]) if len(sys.argv) > 1 else 8 * cpus
    seconds = float(sys.argv[2]) if len(sys.argv) > 2 else 5.0
    backend = (
        "process"
        if "fork" in multiprocessing.get_all_start_methods() else "thread"
    )

    with tempfile.TemporaryDirectory(prefix="repro-gateway-") as directory:
        fleet = ShardFleet(
            lambda i: KnightsArchersGame(BattleScenario(num_units=1_024)),
            directory, NUM_SHARDS, backend=backend, seed=7,
            algorithm="copy-on-update", min_checkpoint_interval_ticks=32,
        )
        frontdoor = FrontDoor(fleet)
        print(f"{NUM_SHARDS} shards ({backend} backend), {clients} "
              f"closed-loop clients, {seconds:.0f}s of load, one shard "
              f"killed at t={seconds / 3:.1f}s")

        async def scenario():
            async with GatewayServer(
                frontdoor, tick_interval=0.002
            ) as gateway:
                host, port = gateway.address

                async def assassin():
                    await asyncio.sleep(seconds / 3.0)
                    victim = frontdoor.live_shards[0]
                    print(f"\n*** killing shard {victim} under load ***\n")
                    if backend == "process":
                        fleet.crash_worker(victim, when="kill")
                    else:
                        fleet.shards[victim].crash()

                generator = LoadGenerator(host, port, num_clients=clients,
                                          payload=b"heal:3")
                kill_task = asyncio.ensure_future(assassin())
                report = await generator.run_async(seconds)
                await kill_task
                return report

        report = asyncio.run(scenario())
        fleet.close()

        print(f"clients:            {report.num_clients}")
        print(f"commands applied:   {report.commands_applied:,} "
              f"({report.commands_per_second:,.0f}/s sustained)")
        print(f"latency p50 / p99:  {report.p50 * 1e3:.2f} ms / "
              f"{report.p99 * 1e3:.2f} ms  (command write -> APPLIED ack)")
        print(f"typed rejections:   {report.commands_rejected} "
              f"(commands in flight when their shard died)")
        print(f"re-placements:      {report.replacements} session(s) moved "
              f"to the survivor")
        print(f"shards lost:        {frontdoor.stats.shards_lost} of "
              f"{NUM_SHARDS}; the survivor served throughout")


if __name__ == "__main__":
    main()
