"""The Knights and Archers battle simulation (vectorized, deterministic).

Behaviour follows the paper's description of the prototype game:

* two teams with home bases; knights pursue and attack nearby enemies,
  archers attack from range while staying near allies, healers heal their
  weakest allies; units cluster with allies to form squads;
* only ~10% of units are active at once, and the active set is completely
  renewed every ~100 ticks;
* movement dominates the update stream and often touches "only one
  dimension" -- units walk in axis-aligned grid steps, so a moving unit
  updates exactly one position cell per tick.

Everything a unit is lives in the 13 table columns (:class:`Column`), and all
randomness flows through the generator handed to :meth:`plan_tick`, so the
game replays bit-identically after crash recovery.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.engine.app import TickApplication, TickUpdatesPlan
from repro.errors import GameError
from repro.game.columns import Column, UnitType
from repro.game.scenario import BattleScenario
from repro.state.table import GameStateTable

_NO_TARGET = -1.0


class _UpdateBuilder:
    """Accumulates (row, column, value) updates in application order."""

    def __init__(self) -> None:
        self._rows: List[np.ndarray] = []
        self._columns: List[np.ndarray] = []
        self._values: List[np.ndarray] = []

    def emit(self, rows: np.ndarray, column: int, values) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        self._rows.append(rows)
        self._columns.append(np.full(rows.size, int(column), dtype=np.int64))
        self._values.append(
            np.broadcast_to(np.asarray(values, dtype=np.float32), rows.shape).copy()
        )

    def build(self) -> TickUpdatesPlan:
        if not self._rows:
            return TickUpdatesPlan.empty(np.float32)
        return TickUpdatesPlan(
            rows=np.concatenate(self._rows),
            columns=np.concatenate(self._columns),
            values=np.concatenate(self._values),
        )


class KnightsArchersGame(TickApplication):
    """The medieval-battle prototype game as a durable tick application."""

    def __init__(self, scenario: BattleScenario = None) -> None:
        self._scenario = scenario if scenario is not None else BattleScenario()

    @property
    def scenario(self) -> BattleScenario:
        """The battle configuration."""
        return self._scenario

    @property
    def geometry(self):
        return self._scenario.geometry

    @property
    def dtype(self):
        return np.float32

    # ------------------------------------------------------------------
    # World setup
    # ------------------------------------------------------------------

    def initialize(self, table: GameStateTable, rng: np.random.Generator) -> None:
        scenario = self._scenario
        n = scenario.num_units
        if table.geometry != scenario.geometry:
            raise GameError("table geometry does not match the scenario")
        cells = table.cells
        unit_ids = np.arange(n)

        team = (unit_ids % 2).astype(np.float32)
        cells[:, Column.TEAM] = team

        # Class mix, assigned by shuffled quantile so each team gets the
        # configured fractions of knights/archers/healers.
        mix = rng.permutation(n).astype(np.float64) / n
        unit_type = np.where(
            mix < scenario.knight_fraction,
            float(UnitType.KNIGHT),
            np.where(
                mix < scenario.knight_fraction + scenario.archer_fraction,
                float(UnitType.ARCHER),
                float(UnitType.HEALER),
            ),
        )
        cells[:, Column.UNIT_TYPE] = unit_type.astype(np.float32)

        # Spawn in a cloud around each team's home base.
        size = scenario.arena_size
        spread = 0.12 * size
        for team_id in (0, 1):
            members = np.flatnonzero(team == team_id)
            base_x, base_y = scenario.base_position(team_id)
            cells[members, Column.POS_X] = np.clip(
                base_x + rng.normal(0.0, spread, members.size), 0.0, size
            ).astype(np.float32)
            cells[members, Column.POS_Y] = np.clip(
                base_y + rng.normal(0.0, spread, members.size), 0.0, size
            ).astype(np.float32)

        cells[:, Column.HEALTH] = scenario.max_health
        cells[:, Column.TARGET] = _NO_TARGET
        cells[:, Column.COOLDOWN] = 0.0
        cells[:, Column.STAMINA] = 100.0
        cells[:, Column.KILLS] = 0.0
        cells[:, Column.DAMAGE_DEALT] = 0.0
        cells[:, Column.HEALING_DONE] = 0.0
        cells[:, Column.MORALE] = 50.0

        # Log in the initial active set.
        active_count = max(1, int(round(scenario.active_fraction * n)))
        active = rng.permutation(n)[:active_count]
        cells[:, Column.STATE] = 0.0
        cells[active, Column.STATE] = 1.0

    # ------------------------------------------------------------------
    # Client commands
    # ------------------------------------------------------------------

    def plan_tick_with_commands(
        self, table: GameStateTable, rng: np.random.Generator, tick: int,
        commands: bytes,
    ) -> TickUpdatesPlan:
        """Plan a tick including this tick's client commands.

        Supported commands (ASCII, ignored if malformed or out of range):

        * ``heal:<unit>`` -- restore a unit to full health (GM heal);
        * ``teleport:<unit>:<x>:<y>`` -- move a unit instantly;
        * ``activate:<unit>`` / ``deactivate:<unit>`` -- log a unit in/out.
        """
        from repro.engine.server import DurableGameServer

        plan = self.plan_tick(table, rng, tick)
        command_list = DurableGameServer.unpack_commands(commands)
        if not command_list:
            return plan
        builder = _UpdateBuilder()
        for command in command_list:
            self._apply_command(table, builder, command)
        command_plan = builder.build()
        # Command effects land after the tick's simulation updates.
        return TickUpdatesPlan(
            rows=np.concatenate([plan.rows, command_plan.rows]),
            columns=np.concatenate([plan.columns, command_plan.columns]),
            values=np.concatenate([plan.values, command_plan.values]),
        )

    def _apply_command(self, table: GameStateTable, builder: "_UpdateBuilder",
                       command: bytes) -> None:
        scenario = self._scenario
        try:
            parts = command.decode("ascii").split(":")
        except UnicodeDecodeError:
            return
        if not parts:
            return
        verb, args = parts[0], parts[1:]
        try:
            if verb == "heal" and len(args) == 1:
                unit = int(args[0])
                if 0 <= unit < scenario.num_units:
                    builder.emit(np.array([unit]), Column.HEALTH,
                                 float(scenario.max_health))
            elif verb == "teleport" and len(args) == 3:
                unit = int(args[0])
                x, y = float(args[1]), float(args[2])
                size = scenario.arena_size
                if 0 <= unit < scenario.num_units:
                    builder.emit(np.array([unit]), Column.POS_X,
                                 float(np.clip(x, 0.0, size)))
                    builder.emit(np.array([unit]), Column.POS_Y,
                                 float(np.clip(y, 0.0, size)))
            elif verb in ("activate", "deactivate") and len(args) == 1:
                unit = int(args[0])
                if 0 <= unit < scenario.num_units:
                    builder.emit(np.array([unit]), Column.STATE,
                                 1.0 if verb == "activate" else 0.0)
        except ValueError:
            return  # malformed number: drop the command

    # ------------------------------------------------------------------
    # One tick
    # ------------------------------------------------------------------

    def plan_tick(
        self, table: GameStateTable, rng: np.random.Generator, tick: int
    ) -> TickUpdatesPlan:
        scenario = self._scenario
        cells = table.cells
        builder = _UpdateBuilder()

        active = np.flatnonzero(cells[:, Column.STATE] > 0.5)
        inactive = np.flatnonzero(cells[:, Column.STATE] <= 0.5)

        actors = self._churn(rng, builder, active, inactive)
        if actors.size == 0:
            return builder.build()

        active_mask = np.zeros(scenario.num_units, dtype=bool)
        active_mask[actors] = True

        team = cells[actors, Column.TEAM]
        unit_type = cells[actors, Column.UNIT_TYPE]
        pos_x = cells[actors, Column.POS_X]
        pos_y = cells[actors, Column.POS_Y]
        cooldown = cells[actors, Column.COOLDOWN]

        target = self._acquire_targets(
            rng, builder, cells, actors, active_mask, team, unit_type,
            pos_x, pos_y,
        )

        attack_mask, damage_by_victim = self._combat(
            builder, cells, actors, target, unit_type, pos_x, pos_y, cooldown
        )
        heal_by_unit, heal_moves = self._heal(
            rng, builder, cells, actors, team, unit_type, pos_x, pos_y
        )
        died = self._apply_health(
            rng, builder, cells, actors, target, attack_mask,
            damage_by_victim, heal_by_unit,
        )
        self._movement(
            rng, builder, cells, actors, target, unit_type, team,
            pos_x, pos_y, attack_mask, heal_moves, died,
        )
        return builder.build()

    # ------------------------------------------------------------------
    # Decision-tree stages
    # ------------------------------------------------------------------

    def _churn(
        self,
        rng: np.random.Generator,
        builder: _UpdateBuilder,
        active: np.ndarray,
        inactive: np.ndarray,
    ) -> np.ndarray:
        """Swap a slice of the active set; returns this tick's actors."""
        scenario = self._scenario
        swap_count = min(
            rng.binomial(active.size, scenario.swap_fraction), inactive.size
        )
        if swap_count == 0:
            return active
        leave_slots = rng.choice(active.size, size=swap_count, replace=False)
        join_slots = rng.choice(inactive.size, size=swap_count, replace=False)
        leavers = active[leave_slots]
        joiners = inactive[join_slots]
        builder.emit(leavers, Column.STATE, 0.0)
        builder.emit(joiners, Column.STATE, 1.0)
        # Joiners act from the next tick; leavers are gone immediately.
        return np.delete(active, leave_slots)

    def _acquire_targets(
        self,
        rng: np.random.Generator,
        builder: _UpdateBuilder,
        cells: np.ndarray,
        actors: np.ndarray,
        active_mask: np.ndarray,
        team: np.ndarray,
        unit_type: np.ndarray,
        pos_x: np.ndarray,
        pos_y: np.ndarray,
    ) -> np.ndarray:
        """Validate persisted targets; sample new ones for fighters."""
        scenario = self._scenario
        target = cells[actors, Column.TARGET].astype(np.int64)

        clipped = np.clip(target, 0, None)
        valid = (
            (target >= 0)
            & active_mask[clipped]
            & (cells[clipped, Column.TEAM] != team)
        )
        fighters = unit_type != float(UnitType.HEALER)
        needs_target = fighters & ~valid

        new_target = np.where(valid & fighters, target, _NO_TARGET).astype(np.int64)

        for team_id in (0, 1):
            seekers = np.flatnonzero(needs_target & (team == team_id))
            if seekers.size == 0:
                continue
            enemy_pool = actors[team != team_id]
            if enemy_pool.size == 0:
                continue
            samples = rng.integers(
                0, enemy_pool.size,
                size=(seekers.size, scenario.candidate_samples),
            )
            candidates = enemy_pool[samples]
            dx = cells[candidates, Column.POS_X] - pos_x[seekers, None]
            dy = cells[candidates, Column.POS_Y] - pos_y[seekers, None]
            distance_sq = dx * dx + dy * dy
            best = np.argmin(distance_sq, axis=1)
            chosen = candidates[np.arange(seekers.size), best]
            best_distance_sq = distance_sq[np.arange(seekers.size), best]
            in_range = best_distance_sq <= scenario.aggro_range**2
            new_target[seekers[in_range]] = chosen[in_range]

        changed = new_target != target
        builder.emit(
            actors[changed], Column.TARGET, new_target[changed].astype(np.float32)
        )
        return new_target

    def _combat(
        self,
        builder: _UpdateBuilder,
        cells: np.ndarray,
        actors: np.ndarray,
        target: np.ndarray,
        unit_type: np.ndarray,
        pos_x: np.ndarray,
        pos_y: np.ndarray,
        cooldown: np.ndarray,
    ):
        """Attacks, cooldowns, and damage accounting."""
        scenario = self._scenario
        has_target = target >= 0
        clipped = np.clip(target, 0, None)
        dx = cells[clipped, Column.POS_X] - pos_x
        dy = cells[clipped, Column.POS_Y] - pos_y
        distance = np.hypot(dx, dy)

        is_knight = unit_type == float(UnitType.KNIGHT)
        is_archer = unit_type == float(UnitType.ARCHER)
        ready = cooldown <= 0.0
        knight_attacks = is_knight & has_target & ready & (
            distance <= scenario.melee_range
        )
        archer_attacks = is_archer & has_target & ready & (
            distance <= scenario.arrow_range
        )
        attack_mask = knight_attacks | archer_attacks

        damage_by_victim = np.zeros(scenario.num_units, dtype=np.float64)
        damage_dealt = np.zeros(actors.size, dtype=np.float64)
        if attack_mask.any():
            knight_victims = target[knight_attacks]
            np.add.at(damage_by_victim, knight_victims, scenario.knight_damage)
            damage_dealt[knight_attacks] = scenario.knight_damage
            archer_victims = target[archer_attacks]
            np.add.at(damage_by_victim, archer_victims, scenario.archer_damage)
            damage_dealt[archer_attacks] = scenario.archer_damage

            attackers = np.flatnonzero(attack_mask)
            builder.emit(
                actors[attackers],
                Column.COOLDOWN,
                float(scenario.attack_cooldown_ticks),
            )
            builder.emit(
                actors[attackers],
                Column.DAMAGE_DEALT,
                (
                    cells[actors[attackers], Column.DAMAGE_DEALT]
                    + damage_dealt[attackers]
                ).astype(np.float32),
            )

        cooling = np.flatnonzero(cooldown > 0.0)
        if cooling.size:
            builder.emit(
                actors[cooling],
                Column.COOLDOWN,
                (cooldown[cooling] - 1.0).astype(np.float32),
            )
        return attack_mask, damage_by_victim

    def _heal(
        self,
        rng: np.random.Generator,
        builder: _UpdateBuilder,
        cells: np.ndarray,
        actors: np.ndarray,
        team: np.ndarray,
        unit_type: np.ndarray,
        pos_x: np.ndarray,
        pos_y: np.ndarray,
    ):
        """Healers pick their weakest sampled ally; returns heal amounts and
        each healer's movement destination."""
        scenario = self._scenario
        heal_by_unit = np.zeros(scenario.num_units, dtype=np.float64)
        mover_slots: List[np.ndarray] = []
        mover_wards: List[np.ndarray] = []
        is_healer = unit_type == float(UnitType.HEALER)
        for team_id in (0, 1):
            healers = np.flatnonzero(is_healer & (team == team_id))
            if healers.size == 0:
                continue
            ally_pool = actors[(team == team_id)]
            if ally_pool.size <= 1:
                continue
            samples = rng.integers(
                0, ally_pool.size,
                size=(healers.size, scenario.candidate_samples),
            )
            candidates = ally_pool[samples]
            weakest_slot = np.argmin(cells[candidates, Column.HEALTH], axis=1)
            weakest = candidates[np.arange(healers.size), weakest_slot]
            hurt = cells[weakest, Column.HEALTH] < scenario.max_health
            dx = cells[weakest, Column.POS_X] - pos_x[healers]
            dy = cells[weakest, Column.POS_Y] - pos_y[healers]
            in_range = np.hypot(dx, dy) <= scenario.heal_range
            healing = hurt & in_range
            np.add.at(heal_by_unit, weakest[healing], scenario.heal_amount)
            casters = actors[healers[healing]]
            builder.emit(
                casters,
                Column.HEALING_DONE,
                (
                    cells[casters, Column.HEALING_DONE] + scenario.heal_amount
                ).astype(np.float32),
            )
            mover_slots.append(healers[hurt])
            mover_wards.append(weakest[hurt])
        if mover_slots:
            heal_moves = (
                np.concatenate(mover_slots), np.concatenate(mover_wards)
            )
        else:
            empty = np.empty(0, dtype=np.int64)
            heal_moves = (empty, empty)
        return heal_by_unit, heal_moves

    def _apply_health(
        self,
        rng: np.random.Generator,
        builder: _UpdateBuilder,
        cells: np.ndarray,
        actors: np.ndarray,
        target: np.ndarray,
        attack_mask: np.ndarray,
        damage_by_victim: np.ndarray,
        heal_by_unit: np.ndarray,
    ) -> np.ndarray:
        """Net health changes, deaths, kill credit, and respawns at base."""
        scenario = self._scenario
        delta = heal_by_unit - damage_by_victim
        changed = np.flatnonzero(delta != 0.0)
        if changed.size == 0:
            return np.empty(0, dtype=np.int64)
        new_health = np.minimum(
            cells[changed, Column.HEALTH] + delta[changed], scenario.max_health
        ).astype(np.float32)
        builder.emit(changed, Column.HEALTH, new_health)

        died = changed[new_health <= 0.0]
        if died.size == 0:
            return died

        # Kill credit and target reset for attackers whose victim fell.
        died_mask = np.zeros(scenario.num_units, dtype=bool)
        died_mask[died] = True
        killer_slots = np.flatnonzero(
            attack_mask & (target >= 0) & died_mask[np.clip(target, 0, None)]
        )
        if killer_slots.size:
            killers = actors[killer_slots]
            builder.emit(
                killers,
                Column.KILLS,
                (cells[killers, Column.KILLS] + 1.0).astype(np.float32),
            )
            builder.emit(killers, Column.TARGET, _NO_TARGET)
            builder.emit(
                killers,
                Column.MORALE,
                np.minimum(
                    cells[killers, Column.MORALE] + 2.0, 100.0
                ).astype(np.float32),
            )

        # Respawn the fallen at their home base with full health.
        size = scenario.arena_size
        for team_id in (0, 1):
            fallen = died[cells[died, Column.TEAM] == team_id]
            if fallen.size == 0:
                continue
            base_x, base_y = scenario.base_position(team_id)
            jitter = 0.02 * size
            builder.emit(
                fallen,
                Column.POS_X,
                np.clip(
                    base_x + rng.normal(0.0, jitter, fallen.size), 0.0, size
                ).astype(np.float32),
            )
            builder.emit(
                fallen,
                Column.POS_Y,
                np.clip(
                    base_y + rng.normal(0.0, jitter, fallen.size), 0.0, size
                ).astype(np.float32),
            )
        builder.emit(died, Column.HEALTH, float(scenario.max_health))
        builder.emit(
            died,
            Column.MORALE,
            np.maximum(cells[died, Column.MORALE] - 5.0, 0.0).astype(np.float32),
        )
        builder.emit(died, Column.TARGET, _NO_TARGET)
        return died

    def _movement(
        self,
        rng: np.random.Generator,
        builder: _UpdateBuilder,
        cells: np.ndarray,
        actors: np.ndarray,
        target: np.ndarray,
        unit_type: np.ndarray,
        team: np.ndarray,
        pos_x: np.ndarray,
        pos_y: np.ndarray,
        attack_mask: np.ndarray,
        heal_moves: dict,
        died: np.ndarray,
    ) -> None:
        """Axis-aligned grid steps toward each unit's destination.

        Movement "possibly only in one dimension" per tick keeps the update
        stream shaped like the paper's trace: one position cell per mover.
        """
        scenario = self._scenario
        size = scenario.arena_size

        destination_x = np.full(actors.size, np.nan)
        destination_y = np.full(actors.size, np.nan)

        has_target = target >= 0
        clipped = np.clip(target, 0, None)
        destination_x[has_target] = cells[clipped[has_target], Column.POS_X]
        destination_y[has_target] = cells[clipped[has_target], Column.POS_Y]

        # Fighters without a target drift toward the enemy base to find one.
        fighters = unit_type != float(UnitType.HEALER)
        wanderers = fighters & ~has_target
        for team_id in (0, 1):
            group = wanderers & (team == team_id)
            if not group.any():
                continue
            base_x, base_y = scenario.base_position(1 - team_id)
            destination_x[group] = base_x
            destination_y[group] = base_y

        # Broken units rout: low morale overrides everything and sends the
        # unit back to its own base to regroup.
        routing = cells[actors, Column.MORALE] < 30.0
        for team_id in (0, 1):
            group = routing & (team == team_id)
            if not group.any():
                continue
            base_x, base_y = scenario.base_position(team_id)
            destination_x[group] = base_x
            destination_y[group] = base_y

        # Healers walk toward their chosen ward.
        healer_slots, wards = heal_moves
        if healer_slots.size:
            destination_x[healer_slots] = cells[wards, Column.POS_X]
            destination_y[healer_slots] = cells[wards, Column.POS_Y]

        # Squad cohesion: blend each unit's destination toward the position
        # of a random sampled ally.
        has_destination = ~np.isnan(destination_x)
        cohesive = np.flatnonzero(has_destination)
        if cohesive.size:
            ally_samples = actors[
                rng.integers(0, actors.size, size=cohesive.size)
            ]
            same_team = cells[ally_samples, Column.TEAM] == team[cohesive]
            blend = scenario.squad_cohesion * same_team
            destination_x[cohesive] += blend * (
                cells[ally_samples, Column.POS_X] - destination_x[cohesive]
            )
            destination_y[cohesive] += blend * (
                cells[ally_samples, Column.POS_Y] - destination_y[cohesive]
            )

        dx = destination_x - pos_x
        dy = destination_y - pos_y
        distance = np.hypot(dx, dy)

        speed = np.where(
            unit_type == float(UnitType.KNIGHT),
            scenario.knight_speed,
            np.where(
                unit_type == float(UnitType.ARCHER),
                scenario.archer_speed,
                scenario.healer_speed,
            ),
        )

        # Archers kite: if the target is inside the kite ring, step away.
        is_archer = unit_type == float(UnitType.ARCHER)
        kiting = is_archer & has_target & (distance < scenario.kite_range)
        # Archers hold position inside their firing band.
        holding = (
            is_archer
            & has_target
            & (distance >= scenario.kite_range)
            & (distance <= scenario.arrow_range)
        )

        moving = (
            has_destination
            & ~attack_mask
            & ~holding
            & (distance > scenario.melee_range * 0.5)
        )
        died_mask = np.zeros(scenario.num_units, dtype=bool)
        died_mask[died] = True
        moving &= ~died_mask[actors]  # the fallen respawned this tick
        if not moving.any():
            return

        direction = np.where(kiting, -1.0, 1.0)
        move_slots = np.flatnonzero(moving)
        # Grid step: advance along the dominant axis only.
        dominant_x = np.abs(dx[move_slots]) >= np.abs(dy[move_slots])
        x_movers = move_slots[dominant_x]
        y_movers = move_slots[~dominant_x]
        if x_movers.size:
            new_x = np.clip(
                pos_x[x_movers]
                + np.sign(dx[x_movers])
                * speed[x_movers]
                * direction[x_movers],
                0.0,
                size,
            ).astype(np.float32)
            builder.emit(actors[x_movers], Column.POS_X, new_x)
        if y_movers.size:
            new_y = np.clip(
                pos_y[y_movers]
                + np.sign(dy[y_movers])
                * speed[y_movers]
                * direction[y_movers],
                0.0,
                size,
            ).astype(np.float32)
            builder.emit(actors[y_movers], Column.POS_Y, new_y)

        # Routed units that make it home regroup: morale climbs back until
        # they rejoin the fight.
        if routing.any():
            for team_id in (0, 1):
                base_x, base_y = scenario.base_position(team_id)
                home = routing & (team == team_id) & (
                    np.hypot(pos_x - base_x, pos_y - base_y) < 12.0
                )
                recovering = np.flatnonzero(home)
                if recovering.size:
                    builder.emit(
                        actors[recovering],
                        Column.MORALE,
                        np.minimum(
                            cells[actors[recovering], Column.MORALE] + 2.0,
                            50.0,
                        ).astype(np.float32),
                    )

        # Stamina drains for sprinters (kiting archers), recovers for the
        # idle -- sparse updates so health-like attributes stay "relatively
        # stable" as in the paper's trace.
        sprinters = np.flatnonzero(kiting & moving)
        if sprinters.size:
            builder.emit(
                actors[sprinters],
                Column.STAMINA,
                np.maximum(
                    cells[actors[sprinters], Column.STAMINA] - 1.0, 0.0
                ).astype(np.float32),
            )
        resting = np.flatnonzero(
            ~moving
            & ~attack_mask
            & (cells[actors, Column.STAMINA] < 100.0)
        )
        if resting.size:
            builder.emit(
                actors[resting],
                Column.STAMINA,
                np.minimum(
                    cells[actors[resting], Column.STAMINA] + 0.5, 100.0
                ).astype(np.float32),
            )
