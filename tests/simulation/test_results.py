"""Tests for simulation result aggregation."""

import numpy as np
import pytest

from repro.config import PAPER_HARDWARE, SimulationConfig, StateGeometry
from repro.core.plan import DiskLayout
from repro.errors import SimulationError
from repro.simulation.recovery import RecoveryEstimate
from repro.simulation.results import CheckpointRecord, SimulationResult


def make_result(num_ticks=10, warmup=0, overheads=None, checkpoints=None):
    geometry = StateGeometry(rows=10, columns=10)
    config = SimulationConfig(
        hardware=PAPER_HARDWARE, geometry=geometry, warmup_ticks=warmup
    )
    if overheads is None:
        overheads = np.zeros(num_ticks)
    overheads = np.asarray(overheads, dtype=float)
    zeros = np.zeros_like(overheads)
    return SimulationResult(
        algorithm_key="copy-on-update",
        algorithm_name="Copy-on-Update",
        config=config,
        base_tick_length=PAPER_HARDWARE.tick_duration,
        tick_updates=np.full(overheads.size, 5, dtype=np.int64),
        tick_overhead=overheads,
        tick_length=PAPER_HARDWARE.tick_duration + overheads,
        bit_time=zeros,
        lock_time=zeros,
        copy_time=zeros,
        pause_time=zeros,
        checkpoints=checkpoints or [],
        recovery=RecoveryEstimate(restore_time=1.0, replay_time=0.5),
    )


def record(index, start_tick, duration=0.1, write_count=10, finished_tick=None,
           is_full_dump=False):
    return CheckpointRecord(
        index=index,
        start_tick=start_tick,
        start_time=start_tick / 30,
        sync_pause=0.0,
        write_count=write_count,
        async_duration=duration,
        layout=DiskLayout.DOUBLE_BACKUP,
        is_full_dump=is_full_dump,
        finished_tick=finished_tick,
    )


class TestAggregates:
    def test_avg_overhead_excludes_warmup(self):
        overheads = [1.0] * 5 + [0.1] * 5
        result = make_result(overheads=overheads, warmup=5)
        assert result.avg_overhead == pytest.approx(0.1)

    def test_avg_overhead_all_ticks_without_warmup(self):
        result = make_result(overheads=[0.1, 0.3])
        assert result.avg_overhead == pytest.approx(0.2)

    def test_max_overhead(self):
        result = make_result(overheads=[0.1, 0.5, 0.2])
        assert result.max_overhead == pytest.approx(0.5)

    def test_latency_limit_detection(self):
        limit = PAPER_HARDWARE.latency_limit
        quiet = make_result(overheads=[limit * 0.9] * 3)
        loud = make_result(overheads=[limit * 1.1] * 3)
        assert not quiet.exceeds_latency_limit()
        assert loud.exceeds_latency_limit()

    def test_checkpoint_time_average(self):
        records = [
            record(0, 0, duration=0.2, finished_tick=3),
            record(1, 3, duration=0.4, finished_tick=6),
        ]
        result = make_result(checkpoints=records)
        assert result.avg_checkpoint_time == pytest.approx(0.3)

    def test_measured_checkpoints_prefer_post_warmup(self):
        records = [
            record(0, 0, duration=1.0, finished_tick=3),
            record(1, 8, duration=0.2, finished_tick=9),
        ]
        result = make_result(warmup=5, checkpoints=records)
        assert result.avg_checkpoint_time == pytest.approx(0.2)

    def test_measured_checkpoints_fallback_to_completed(self):
        records = [record(0, 0, duration=0.7, finished_tick=3)]
        result = make_result(warmup=5, checkpoints=records)
        assert result.avg_checkpoint_time == pytest.approx(0.7)

    def test_avg_objects_written(self):
        records = [
            record(0, 0, write_count=10, finished_tick=1),
            record(1, 1, write_count=30, finished_tick=2),
        ]
        result = make_result(checkpoints=records)
        assert result.avg_objects_written == pytest.approx(20)

    def test_checkpoint_period(self):
        records = [record(0, 0, finished_tick=3), record(1, 6, finished_tick=9)]
        result = make_result(checkpoints=records)
        assert result.avg_checkpoint_period == pytest.approx(6 / 30)

    def test_recovery_time(self):
        result = make_result()
        assert result.recovery_time == pytest.approx(1.5)

    def test_overhead_percentiles(self):
        result = make_result(overheads=[0.0, 0.1, 0.2, 0.3, 0.4])
        assert result.overhead_percentile(0) == pytest.approx(0.0)
        assert result.overhead_percentile(50) == pytest.approx(0.2)
        assert result.overhead_percentile(100) == pytest.approx(0.4)

    def test_overhead_percentile_validation(self):
        result = make_result()
        with pytest.raises(SimulationError):
            result.overhead_percentile(101)

    def test_concentration_distinguishes_spiky_from_flat(self):
        flat = make_result(overheads=[0.1] * 10)
        spiky = make_result(overheads=[0.001] * 9 + [0.5])
        assert flat.overhead_concentration() == pytest.approx(1.0)
        assert spiky.overhead_concentration() > 100

    def test_concentration_zero_overhead(self):
        assert make_result(overheads=[0.0] * 5).overhead_concentration() == 1.0

    def test_recovery_missing_raises(self):
        result = make_result()
        result.recovery = None
        with pytest.raises(SimulationError):
            _ = result.recovery_time

    def test_summary_keys(self):
        result = make_result(checkpoints=[record(0, 0, finished_tick=1)])
        summary = result.summary()
        for key in (
            "algorithm", "avg_overhead_s", "avg_checkpoint_s", "recovery_s",
            "checkpoints_completed", "exceeds_latency_limit",
        ):
            assert key in summary

    def test_mismatched_series_rejected(self):
        with pytest.raises(SimulationError):
            geometry = StateGeometry(rows=10, columns=10)
            config = SimulationConfig(
                hardware=PAPER_HARDWARE, geometry=geometry
            )
            SimulationResult(
                algorithm_key="x",
                algorithm_name="x",
                config=config,
                base_tick_length=0.03,
                tick_updates=np.zeros(3, dtype=np.int64),
                tick_overhead=np.zeros(2),
                tick_length=np.zeros(3),
                bit_time=np.zeros(3),
                lock_time=np.zeros(3),
                copy_time=np.zeros(3),
                pause_time=np.zeros(3),
            )


class TestCheckpointRecord:
    def test_duration_includes_pause(self):
        rec = CheckpointRecord(
            index=0, start_tick=0, start_time=0.0, sync_pause=0.017,
            write_count=5, async_duration=0.6,
            layout=DiskLayout.DOUBLE_BACKUP,
        )
        assert rec.duration == pytest.approx(0.617)
        assert not rec.completed
        rec.finished_tick = 20
        assert rec.completed
