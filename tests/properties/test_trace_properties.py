"""Property tests on traces (invariant 6: lossless round-trips)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import StateGeometry
from repro.workloads.base import MaterializedTrace
from repro.workloads.trace_file import load_trace, save_trace
from repro.workloads.zipf import ZipfDistribution, ZipfTrace

GEOMETRY = StateGeometry(rows=30, columns=5)

tick_lists = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=GEOMETRY.num_cells - 1),
        min_size=0,
        max_size=20,
    ).map(lambda values: np.array(values, dtype=np.int64)),
    min_size=0,
    max_size=10,
)


class TestTraceFileRoundTrip:
    @given(ticks=tick_lists)
    @settings(max_examples=50, deadline=None)
    def test_save_load_preserves_every_tick(self, ticks, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "trace.npz"
        trace = MaterializedTrace(GEOMETRY, ticks)
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.num_ticks == trace.num_ticks
        assert loaded.geometry == GEOMETRY
        for original, restored in zip(trace.ticks(), loaded.ticks()):
            assert np.array_equal(original, restored)


class TestZipfProperties:
    @given(
        n=st.integers(min_value=1, max_value=10_000),
        theta=st.floats(min_value=0.0, max_value=0.99),
        size=st.integers(min_value=0, max_value=2_000),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_samples_always_in_domain(self, n, theta, size, seed):
        dist = ZipfDistribution(n, theta)
        samples = dist.sample(size, np.random.default_rng(seed))
        assert samples.shape == (size,)
        if size:
            assert samples.min() >= 0
            assert samples.max() < n

    @given(
        updates=st.integers(min_value=0, max_value=500),
        theta=st.floats(min_value=0.0, max_value=0.99),
        seed=st.integers(min_value=0, max_value=2**16),
        scramble=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_trace_cells_valid_and_deterministic(
        self, updates, theta, seed, scramble
    ):
        trace = ZipfTrace(
            GEOMETRY, updates_per_tick=updates, skew=theta, num_ticks=3,
            seed=seed, scramble=scramble,
        )
        first = [cells.copy() for cells in trace.ticks()]
        second = list(trace.ticks())
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
            assert a.size == updates
            if a.size:
                assert a.min() >= 0
                assert a.max() < GEOMETRY.num_cells
