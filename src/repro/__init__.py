"""repro: checkpoint recovery for massively multiplayer online games.

A production-quality Python reproduction of "An Evaluation of Checkpoint
Recovery for Massively Multiplayer Online Games" (Vaz Salles et al., VLDB
2009): the six consistent-checkpointing algorithms, the analytic simulation
model, synthetic and game-derived workloads, a real durable game server with
crash recovery, and the full experiment suite.

Quickstart::

    from repro import CheckpointSimulator, PAPER_CONFIG, ZipfTrace

    trace = ZipfTrace(PAPER_CONFIG.geometry, updates_per_tick=64_000,
                      skew=0.8, num_ticks=200)
    simulator = CheckpointSimulator(PAPER_CONFIG)
    for result in simulator.run_all(trace):
        print(result.algorithm_name, result.avg_overhead,
              result.avg_checkpoint_time, result.recovery_time)
"""

from repro.advisor import AlgorithmAssessment, Recommendation, recommend
from repro.config import (
    GAME_CONFIG,
    GAME_GEOMETRY,
    PAPER_CONFIG,
    PAPER_GEOMETRY,
    PAPER_HARDWARE,
    SMALL_GEOMETRY,
    HardwareParameters,
    SimulationConfig,
    StateGeometry,
    small_config,
)
from repro.core import (
    ALGORITHM_KEYS,
    CheckpointFramework,
    CheckpointPlan,
    CheckpointPolicy,
    DiskLayout,
    UpdateEffects,
    algorithm_class,
    all_algorithm_classes,
    make_policy,
)
from repro.errors import ReproError
from repro.simulation import (
    CheckpointSimulator,
    CostModel,
    PrecomputedObjectTrace,
    RecoveryEstimate,
    SimulationResult,
    SweepEngine,
    SweepTask,
)
from repro.state import GameStateTable
from repro.workloads import (
    GameLikeTrace,
    MaterializedTrace,
    TraceCache,
    TraceSpec,
    TraceStatistics,
    UniformTrace,
    UpdateTrace,
    ZipfTrace,
    load_trace,
    save_trace,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHM_KEYS",
    "AlgorithmAssessment",
    "Recommendation",
    "recommend",
    "CheckpointFramework",
    "CheckpointPlan",
    "CheckpointPolicy",
    "CheckpointSimulator",
    "CostModel",
    "DiskLayout",
    "GAME_CONFIG",
    "GAME_GEOMETRY",
    "GameLikeTrace",
    "GameStateTable",
    "HardwareParameters",
    "MaterializedTrace",
    "PAPER_CONFIG",
    "PAPER_GEOMETRY",
    "PAPER_HARDWARE",
    "PrecomputedObjectTrace",
    "RecoveryEstimate",
    "ReproError",
    "SMALL_GEOMETRY",
    "SimulationConfig",
    "SimulationResult",
    "StateGeometry",
    "SweepEngine",
    "SweepTask",
    "TraceCache",
    "TraceSpec",
    "TraceStatistics",
    "UniformTrace",
    "UpdateEffects",
    "UpdateTrace",
    "ZipfTrace",
    "algorithm_class",
    "all_algorithm_classes",
    "load_trace",
    "make_policy",
    "save_trace",
    "small_config",
    "__version__",
]
